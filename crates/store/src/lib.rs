#![warn(missing_docs)]

//! # milr-store
//!
//! The sharded, incrementally-updatable snapshot store — format v5.
//!
//! The monolithic format v2 (one `MILR` file, see `milr_core::storage`)
//! rewrites the whole database on every change and reloads it whole: a
//! dead end for growing corpora. Formats v3/v4/v5 are a *directory*:
//!
//! * `manifest.milr` — kind 3: feature dimension, generation counter,
//!   shard capacity, then per-shard `{id, bag count, instance count,
//!   payload digest}`, then the tombstone list, with the usual trailing
//!   FNV-1a checksum. The manifest records each shard file's own
//!   trailing digest, so a stale or swapped shard is detected without a
//!   second read.
//! * `shard-NNNNNN.milr` — kind 4: the shard id, dimension and bag
//!   count, then per-bag `{label, instance count, instances}` as flat
//!   little-endian `f32`s — exactly the [`FlatBags`] ranking layout, so
//!   a shard loads straight into scoring position with no per-bag
//!   re-normalisation. Format v4 appends the shard's quantized tier
//!   (per-instance `i8` codes plus affine `{bias, scale, radius}`
//!   parameters — see `milr_mil::kernel`) after the bag payload, so the
//!   screen is ready without re-quantizing at load. Format v5 appends
//!   the shard's coarse cell index (k-means centroids, conservative
//!   radii, per-instance assignments — see `milr_mil::index`) after the
//!   tier, so cell skipping is ready without re-clustering at load.
//!
//! Writers emit v5; readers accept v3, v4 and v5 side by side (a
//! directory may mix them after an incremental flush — sealed old-format
//! shards are never rewritten). A v3 shard rebuilds its quantized tier
//! at load, and v3/v4 shards rebuild their coarse index at load; both
//! rebuilds are deterministic, so they match a persisted section byte
//! for byte. [`ShardedDatabase::compact`] repacks through the same path
//! and therefore refreshes every tier and index, migrating old shards
//! to v5 at the next flush.
//!
//! [`ShardedDatabase::push_bag`]/[`ShardedDatabase::push_image`] append
//! to the open tail shard and seal it at the capacity threshold;
//! [`ShardedDatabase::delete`] tombstones through the manifest without
//! touching any shard file; [`ShardedDatabase::flush`] rewrites only
//! unsealed/new shards plus the (small) manifest, bumping the
//! generation. [`ShardedDatabase::rank`] is scatter-gather: each shard
//! runs the same pruned top-k scan as the monolithic
//! `RetrievalDatabase::rank` on the pooled executor — with two hot-path
//! accelerations layered on top:
//!
//! * **A shared scatter threshold.** Top-k scans publish each shard's
//!   running k-th-worst distance into one shared atomic bound;
//!   every shard prunes against the *global* running
//!   threshold instead of re-deriving its own from scratch. Any bag the
//!   shared bound prunes is provably outside the global top-k, so the
//!   merged result never changes — only the wasted arithmetic does.
//! * **The quantized screen.** Each shard's `i8` tier gives a provable
//!   lower bound on every instance's exact distance; instances whose
//!   bound already exceeds the current threshold skip the exact `f64`
//!   kernel entirely. [`ShardedDatabase::rank_exact`] bypasses the
//!   screen — it exists so tests and benchmarks can compare the two
//!   paths, which are bit-identical by construction.
//! * **Coarse cell skipping.** Each sealed shard carries a coarse
//!   k-means index (`milr_mil::index`); before a top-k scan enters a
//!   bag, the triangle-inequality bound of its instances' cells is
//!   checked against the running threshold, and a bag whose minimum
//!   cell bound already meets it is skipped whole — the exact scan
//!   would provably have rejected every instance. Disable per request
//!   with `RankRequest::index(false)`; rankings are bit-identical
//!   either way.
//!
//! An index-ordered k-way merge combines the per-shard rankings.
//! Because every surfaced distance flows through the identical kernel
//! ([`Concept::instance_distance_sq_below`]) and ties break by global
//! index at every stage, the sharded ranking is **bit-identical** to
//! the monolithic one — asserted by this crate's property tests.

use std::collections::BTreeSet;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use milr_core::database::{RankRequest, RankScope, Ranking};
use milr_core::error::CoreError;
use milr_core::storage::{storage_err, OsFs, StorageIo, Store, Stream};
use milr_core::{BackendTag, RetrievalConfig, RetrievalDatabase};
use milr_imgproc::GrayImage;
use milr_mil::{Bag, BagAggregator, CoarseIndex, Concept, FlatBags, QuantParams, ScreenStats};
use milr_optim::pool;

/// Format version of sharded manifests and shard files written by this
/// crate: v4 = v3 plus the persisted per-shard quantized tier; v5 = v4
/// plus the persisted per-shard coarse cell index; v6 = v5 plus the
/// feature-backend tag in the manifest (shard files are unchanged from
/// v5).
pub const STORE_VERSION: u32 = 6;
/// First format version whose shard files carry the quantized tier.
const QUANT_TIER_VERSION: u32 = 4;
/// First format version whose shard files carry the coarse cell index.
const COARSE_INDEX_VERSION: u32 = 5;
/// First format version whose manifest carries the feature-backend tag.
const BACKEND_TAG_VERSION: u32 = 6;
/// Oldest sharded format version still readable. v3 shards carry no
/// quantized tier, v3/v4 shards no coarse index; the missing sections
/// are rebuilt (deterministically) at load. Pre-v6 manifests carry no
/// backend tag and open as the default gray-block backend.
pub const MIN_STORE_VERSION: u32 = 3;

/// Every sharded format version this crate still reads.
const READABLE_VERSIONS: [u32; 4] = [
    MIN_STORE_VERSION,
    QUANT_TIER_VERSION,
    COARSE_INDEX_VERSION,
    STORE_VERSION,
];
/// Payload kind of a sharded-store manifest file.
pub const MANIFEST_KIND: u8 = 3;
/// Payload kind of a sharded-store shard file.
pub const SHARD_KIND: u8 = 4;
/// File name of the manifest inside a sharded snapshot directory.
pub const MANIFEST_FILE: &str = "manifest.milr";

/// Default number of bags per shard before the tail seals.
pub const DEFAULT_SHARD_CAPACITY: usize = 512;

/// The file name of one shard inside a sharded snapshot directory.
///
/// Public so out-of-crate consumers (the cluster's shard-streaming
/// endpoints, tooling) can map a manifest shard id to its file without
/// re-deriving the naming scheme.
pub fn shard_file_name(id: u64) -> String {
    format!("shard-{id:06}.milr")
}

/// One shard: a contiguous run of bags in the flat ranking layout.
#[derive(Debug, Clone)]
struct Shard {
    id: u64,
    /// Global index of this shard's first bag.
    base: usize,
    labels: Vec<usize>,
    bags: FlatBags,
    /// Sealed shards are immutable; only the unsealed tail accepts
    /// appends.
    sealed: bool,
    /// Whether the on-disk file matches this in-memory state.
    persisted: bool,
    /// Trailing digest of the persisted file (valid when `persisted`).
    digest: u64,
}

impl Shard {
    fn len(&self) -> usize {
        self.labels.len()
    }
}

/// A sharded retrieval database: N independent shard files plus a
/// checksummed manifest, rankable in place via scatter-gather.
///
/// Global bag indices run over shards in order (shard 0's bags first),
/// and are *stable* across pushes and deletes — a tombstoned index stays
/// allocated until [`Self::compact`] repacks the store.
#[derive(Debug, Clone)]
pub struct ShardedDatabase {
    dir: PathBuf,
    feature_dim: usize,
    generation: u64,
    shard_capacity: usize,
    shards: Vec<Shard>,
    tombstones: BTreeSet<usize>,
    next_shard_id: u64,
    /// The feature backend that produced the stored bags, stamped into
    /// the manifest on every flush.
    backend: BackendTag,
}

/// The running global top-k distance threshold shared across the
/// scatter phase: each shard publishes its local k-th-worst distance as
/// its heap fills and tightens, and every shard prunes against the
/// minimum of all published values.
///
/// Distances are non-negative finite `f64`s, whose IEEE-754 bit
/// patterns order exactly like the unsigned integers they are — so a
/// `fetch_min` on the bits is an exact atomic fetch-min on the
/// distances, with no compare-exchange loop.
///
/// Soundness: a value is only published while its heap holds `k` real
/// candidates, so every published worst is ≥ the true global k-th-best
/// distance, and so is the shared minimum. A bag pruned by the shared
/// bound therefore scores strictly worse than the global k-th best —
/// it could never appear in the merged top-k, which is why the shared
/// threshold cannot change any ranking no matter how shard scans
/// interleave.
///
/// Public because the same argument distributes: a cluster coordinator
/// may seed a worker's scan with the k-th-best distance gathered from
/// *other* workers (see [`ShardSubset::rank_top_k`]) — as long as the
/// seed is backed by `k` real candidates that are themselves part of
/// the final merge, pruning against it stays ranking-neutral.
#[derive(Debug)]
pub struct SharedBound(AtomicU64);

impl Default for SharedBound {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedBound {
    /// An unseeded bound: nothing prunes until a scan publishes.
    pub fn new() -> Self {
        Self(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// A bound pre-seeded with an externally-derived threshold (use
    /// [`f64::INFINITY`] for "no seed"). The seed must be backed by `k`
    /// real candidates that will be part of the final merge, or pruning
    /// against it is not ranking-neutral.
    pub fn with_initial(bound: f64) -> Self {
        Self(AtomicU64::new(bound.max(0.0).to_bits()))
    }

    /// The current threshold.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Publishes a candidate threshold; returns whether it tightened
    /// the shared bound.
    pub fn tighten(&self, candidate: f64) -> bool {
        let bits = candidate.to_bits();
        self.0.fetch_min(bits, Ordering::Relaxed) > bits
    }
}

/// Per-shard scan result: the local ranking plus the counters the
/// gather phase folds into the observability registry.
struct ShardScan {
    ranking: Ranking,
    stats: ScreenStats,
    tightenings: u64,
    /// Cell runs whose bags the scan actually entered (an indexed top-k
    /// scan only; run = maximal stretch of consecutive same-cell
    /// instances within one bag).
    cells_scanned: u64,
    /// Cell runs skipped outright because their provable lower bound
    /// already met the scan's rejection threshold.
    cells_skipped: u64,
    /// Whether an indexed scan was requested but the shard carried no
    /// index (an unsealed in-memory tail) and fell back to the plain
    /// screened scan.
    index_fallback: bool,
}

/// Max-heap entry for the per-shard bounded scan: lexicographically
/// largest `(distance, global index)` on top — the same tie-break as the
/// monolithic ranking.
#[derive(PartialEq)]
struct WorstCandidate(f64, usize);

impl Eq for WorstCandidate {}

impl PartialOrd for WorstCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorstCandidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

impl ShardedDatabase {
    /// An empty store rooted at `dir` (nothing touches the disk until
    /// the first [`Self::flush`]).
    ///
    /// # Errors
    /// [`CoreError::Storage`] for a zero feature dimension or shard
    /// capacity.
    pub fn create(
        dir: impl Into<PathBuf>,
        feature_dim: usize,
        shard_capacity: usize,
    ) -> Result<Self, CoreError> {
        let dir = dir.into();
        if feature_dim == 0 {
            return Err(storage_err(&dir, "feature dimension must be non-zero"));
        }
        if shard_capacity == 0 {
            return Err(storage_err(&dir, "shard capacity must be non-zero"));
        }
        Ok(Self {
            dir,
            feature_dim,
            generation: 0,
            shard_capacity,
            shards: Vec::new(),
            tombstones: BTreeSet::new(),
            next_shard_id: 0,
            backend: BackendTag::default(),
        })
    }

    /// The feature backend recorded for the stored bags (the default
    /// gray-block tag for stores created without an explicit one, and
    /// for snapshots written before manifests carried tags).
    pub fn backend(&self) -> &BackendTag {
        &self.backend
    }

    /// Records the feature backend that produced the stored bags; the
    /// tag lands in the manifest on the next [`Self::flush`]. The
    /// preprocessing pipeline stamps this once at build time — changing
    /// it on a populated store does not (cannot) reinterpret the bags.
    pub fn set_backend(&mut self, backend: BackendTag) {
        self.backend = backend;
    }

    /// Shards an existing monolithic database into a new store rooted at
    /// `dir` (call [`Self::flush`] to persist it).
    ///
    /// # Errors
    /// Same as [`Self::create`]; the database's bags are assumed valid.
    pub fn from_database(
        db: &RetrievalDatabase,
        dir: impl Into<PathBuf>,
        shard_capacity: usize,
    ) -> Result<Self, CoreError> {
        let mut store = Self::create(dir, db.feature_dim(), shard_capacity)?;
        for i in 0..db.len() {
            let bag = db.bag(i).expect("index in range");
            let label = db.label(i).expect("index in range");
            store.push_bag(bag.clone(), label)?;
        }
        Ok(store)
    }

    /// Opens a v3 snapshot directory via the real filesystem.
    ///
    /// # Errors
    /// [`CoreError::Storage`] on a missing/corrupt manifest, a shard
    /// whose digest disagrees with the manifest, or any format
    /// violation.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CoreError> {
        Self::open_with(&OsFs, dir)
    }

    /// [`Self::open`] over an explicit [`StorageIo`] seam.
    ///
    /// # Errors
    /// Same as [`Self::open`].
    pub fn open_with(fs: &dyn StorageIo, dir: impl Into<PathBuf>) -> Result<Self, CoreError> {
        let dir = dir.into();
        let summary = read_manifest_with(fs, &dir)?;
        let mut shards = Vec::with_capacity(summary.shards.len());
        let mut next_shard_id = 0u64;
        for entry in &summary.shards {
            let shard = load_manifest_shard(fs, &dir, entry, summary.feature_dim)?;
            next_shard_id = next_shard_id.max(entry.id + 1);
            shards.push(Shard {
                // A reopened shard at capacity is sealed; a short tail
                // stays open for appends.
                sealed: entry.bag_count >= summary.shard_capacity,
                ..shard
            });
        }
        // All shards but the last must be sealed-size or the global
        // indexing the manifest implies could shift on append.
        let store = Self {
            dir,
            feature_dim: summary.feature_dim,
            generation: summary.generation,
            shard_capacity: summary.shard_capacity,
            shards,
            tombstones: summary.tombstones,
            next_shard_id,
            backend: summary.backend,
        };
        store.update_gauges();
        Ok(store)
    }

    /// [`Self::open`], additionally requiring the snapshot's recorded
    /// feature backend to be `expected_backend`. A mismatch is a format
    /// error at open — a snapshot preprocessed in one feature space must
    /// never be silently ranked against concepts trained in another.
    ///
    /// # Errors
    /// [`CoreError::Storage`] naming both backend ids on a mismatch, or
    /// any [`Self::open`] failure.
    pub fn open_expecting_backend(
        dir: impl Into<PathBuf>,
        expected_backend: &str,
    ) -> Result<Self, CoreError> {
        let store = Self::open(dir)?;
        if store.backend.id != expected_backend {
            return Err(storage_err(
                &store.dir,
                format!(
                    "snapshot was preprocessed with feature backend '{}' but '{expected_backend}' was expected",
                    store.backend.id
                ),
            ));
        }
        Ok(store)
    }

    /// Total bag count, tombstoned included (global indices run
    /// `0..len()`).
    pub fn len(&self) -> usize {
        self.shards.last().map_or(0, |s| s.base + s.len())
    }

    /// Whether the store holds no bags at all.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Number of live (non-tombstoned) bags.
    pub fn live_len(&self) -> usize {
        self.len() - self.tombstones.len()
    }

    /// Feature dimension of the stored bags.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// The manifest generation, bumped by every [`Self::flush`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The coarse instance index of shard `shard`, if one is built.
    ///
    /// Sealed and flushed shards always carry one; an open in-memory
    /// tail has none until it seals (ranking falls back to the plain
    /// scan there). Out-of-range shard ids return `None`.
    #[must_use]
    pub fn shard_index(&self, shard: usize) -> Option<&CoarseIndex> {
        self.shards.get(shard).and_then(|s| s.bags.index())
    }

    /// Number of tombstoned bags awaiting [`Self::compact`].
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Bags per shard before the tail seals.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// The snapshot directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Category label of one bag (tombstoned bags keep their label).
    ///
    /// # Errors
    /// [`CoreError::IndexOutOfBounds`] for bad indices.
    pub fn label(&self, index: usize) -> Result<usize, CoreError> {
        let (shard, local) = self.locate(index)?;
        Ok(self.shards[shard].labels[local])
    }

    /// Whether `index` has been tombstoned.
    ///
    /// # Errors
    /// [`CoreError::IndexOutOfBounds`] for bad indices.
    pub fn is_deleted(&self, index: usize) -> Result<bool, CoreError> {
        self.locate(index)?;
        Ok(self.tombstones.contains(&index))
    }

    /// All live global indices, ascending.
    pub fn live_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|i| !self.tombstones.contains(i))
            .collect()
    }

    /// Maps a global index to `(shard, local)` coordinates.
    fn locate(&self, index: usize) -> Result<(usize, usize), CoreError> {
        let len = self.len();
        if index >= len {
            return Err(CoreError::IndexOutOfBounds { index, len });
        }
        // Shards hold `shard_capacity` bags except the tail, so the
        // partition point is found by binary search on the bases.
        let shard = self
            .shards
            .partition_point(|s| s.base <= index)
            .saturating_sub(1);
        Ok((shard, index - self.shards[shard].base))
    }

    /// Appends one bag to the open tail shard, sealing it at the
    /// capacity threshold. Returns the bag's global index.
    ///
    /// # Errors
    /// [`CoreError::Mil`] on a feature-dimension mismatch.
    pub fn push_bag(&mut self, bag: Bag, label: usize) -> Result<usize, CoreError> {
        if bag.dim() != self.feature_dim {
            return Err(CoreError::Mil(milr_mil::MilError::DimensionMismatch {
                expected: self.feature_dim,
                actual: bag.dim(),
            }));
        }
        let needs_new_tail = self.shards.last().is_none_or(|s| s.sealed);
        if needs_new_tail {
            let base = self.len();
            self.shards.push(Shard {
                id: self.next_shard_id,
                base,
                labels: Vec::new(),
                bags: FlatBags::new(self.feature_dim),
                sealed: false,
                persisted: false,
                digest: 0,
            });
            self.next_shard_id += 1;
        }
        let capacity = self.shard_capacity;
        let tail = self.shards.last_mut().expect("tail exists");
        tail.bags.push_bag(&bag);
        tail.labels.push(label);
        tail.persisted = false;
        if tail.len() >= capacity {
            tail.sealed = true;
            // Sealing freezes the instance stream — the moment the
            // coarse index becomes valid, so build it here and every
            // sealed shard ranks indexed without any lazy work.
            tail.bags.ensure_index();
        }
        Ok(self.len() - 1)
    }

    /// Preprocesses one image under `config` and appends the resulting
    /// bag. Returns the global index.
    ///
    /// # Errors
    /// * [`CoreError::BlankImage`] for contrast-free images.
    /// * [`CoreError::Mil`] if `config` produces a different feature
    ///   dimension than the store's.
    pub fn push_image(
        &mut self,
        image: &GrayImage,
        label: usize,
        config: &RetrievalConfig,
    ) -> Result<usize, CoreError> {
        let bag = milr_core::features::image_to_bag(image, config).map_err(|e| match e {
            CoreError::BlankImage { .. } => CoreError::BlankImage {
                index: Some(self.len()),
            },
            other => other,
        })?;
        self.push_bag(bag, label)
    }

    /// Tombstones one bag through the manifest — no shard file is
    /// touched; the space is reclaimed by [`Self::compact`]. Idempotent:
    /// returns whether the mark is new.
    ///
    /// # Errors
    /// [`CoreError::IndexOutOfBounds`] for bad indices.
    pub fn delete(&mut self, index: usize) -> Result<bool, CoreError> {
        self.locate(index)?;
        Ok(self.tombstones.insert(index))
    }

    /// Repacks the live bags into fresh dense shards, dropping
    /// tombstones and renumbering shard ids from zero. Each repacked
    /// shard re-derives its quantized tier as bags stream through, so
    /// the next [`Self::flush`] — which rewrites everything and removes
    /// stale shard files — persists every shard in the current (v4)
    /// format with a fresh tier, migrating any v3 remnants. Returns how
    /// many tombstoned bags were dropped.
    pub fn compact(&mut self) -> usize {
        let dropped = self.tombstones.len();
        let old = std::mem::take(&mut self.shards);
        self.next_shard_id = 0;
        let tombstones = std::mem::take(&mut self.tombstones);
        for shard in &old {
            for local in 0..shard.len() {
                if tombstones.contains(&(shard.base + local)) {
                    continue;
                }
                let needs_new_tail = self.shards.last().is_none_or(|s| s.sealed);
                if needs_new_tail {
                    let base = self.len();
                    self.shards.push(Shard {
                        id: self.next_shard_id,
                        base,
                        labels: Vec::new(),
                        bags: FlatBags::new(self.feature_dim),
                        sealed: false,
                        persisted: false,
                        digest: 0,
                    });
                    self.next_shard_id += 1;
                }
                let capacity = self.shard_capacity;
                let tail = self.shards.last_mut().expect("tail exists");
                tail.bags.push_flat(shard.bags.bag_instances(local));
                tail.labels.push(shard.labels[local]);
                if tail.len() >= capacity {
                    tail.sealed = true;
                    tail.bags.ensure_index();
                }
            }
        }
        self.update_gauges();
        dropped
    }

    /// Rebuilds every shard's coarse cell index with an explicit cell
    /// count — the tuning and testing hook behind the indexed-vs-exact
    /// property suite (cell geometry must never change a ranking).
    /// Ranking correctness is independent of the partition, so this
    /// never dirties persistence: already-persisted files keep their
    /// own (equally valid) index section.
    pub fn rebuild_indexes(&mut self, cells: usize) {
        for shard in &mut self.shards {
            shard.bags.build_index(cells);
        }
    }

    /// Persists the store via the real filesystem: writes every
    /// not-yet-persisted shard, then the manifest, and bumps the
    /// generation. Sealed, already-persisted shards are skipped — the
    /// incremental write path.
    ///
    /// # Errors
    /// [`CoreError::Storage`] naming the offending file on any failure.
    pub fn flush(&mut self) -> Result<(), CoreError> {
        // Only best-effort on the real filesystem; a custom seam routes
        // paths wherever it wants.
        std::fs::create_dir_all(&self.dir).ok();
        self.flush_with(&OsFs)
    }

    /// [`Self::flush`] over an explicit [`StorageIo`] seam.
    ///
    /// # Errors
    /// Same as [`Self::flush`].
    pub fn flush_with(&mut self, fs: &dyn StorageIo) -> Result<(), CoreError> {
        for shard in &mut self.shards {
            if shard.persisted {
                continue;
            }
            // Every persisted v5 file carries an index — even an
            // unsealed tail's (its index is rebuilt on the next append
            // anyway, and persisting it makes reopened tails rank
            // indexed immediately).
            shard.bags.ensure_index();
            shard.digest = write_shard(fs, &self.dir, shard)?;
            shard.persisted = true;
        }
        let next_generation = self.generation + 1;
        self.write_manifest(fs, next_generation)?;
        self.generation = next_generation;
        self.remove_stale_shard_files();
        self.update_gauges();
        milr_obs::counter!("milr_store_flushes_total").inc();
        Ok(())
    }

    fn write_manifest(&self, fs: &dyn StorageIo, generation: u64) -> Result<(), CoreError> {
        let path = self.dir.join(MANIFEST_FILE);
        let file = fs
            .writer(&path)
            .map_err(|e| storage_err(&path, e.to_string()))?;
        let mut w = Stream::new(BufWriter::new(file), &path);
        w.write_header(MANIFEST_KIND, STORE_VERSION)?;
        w.write_u64(self.feature_dim as u64)?;
        w.write_u64(generation)?;
        w.write_u64(self.shard_capacity as u64)?;
        w.write_u64(self.shards.len() as u64)?;
        for shard in &self.shards {
            w.write_u64(shard.id)?;
            w.write_u64(shard.len() as u64)?;
            w.write_u64(shard.bags.instance_count() as u64)?;
            w.write_u64(shard.digest)?;
        }
        w.write_u64(self.tombstones.len() as u64)?;
        for &index in &self.tombstones {
            w.write_u64(index as u64)?;
        }
        // The v6 backend tag: id and parameters, length-prefixed. All
        // bytes land before `finish`, so the trailing FNV checksum
        // covers them — a bit flip anywhere in the tag fails the open.
        w.write_u64(self.backend.id.len() as u64)?;
        w.write_all(self.backend.id.as_bytes())?;
        w.write_u64(self.backend.params.len() as u64)?;
        for (name, value) in &self.backend.params {
            w.write_u64(name.len() as u64)?;
            w.write_all(name.as_bytes())?;
            w.write_u64(value.to_bits())?;
        }
        w.finish()
    }

    /// Best-effort removal of shard files that no longer back a live
    /// shard (after [`Self::compact`] renumbered them).
    fn remove_stale_shard_files(&self) {
        let live: BTreeSet<String> = self.shards.iter().map(|s| shard_file_name(s.id)).collect();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("shard-") && name.ends_with(".milr") && !live.contains(&name) {
                std::fs::remove_file(entry.path()).ok();
            }
        }
    }

    fn update_gauges(&self) {
        milr_obs::gauge!("milr_store_shards").set(self.shards.len() as f64);
        milr_obs::gauge!("milr_store_generation").set(self.generation as f64);
        milr_obs::gauge!("milr_store_tombstones").set(self.tombstones.len() as f64);
    }

    /// Rebuilds the live bags as a monolithic [`RetrievalDatabase`], in
    /// global-index order (tombstoned bags are skipped, so indices
    /// compress when any exist).
    ///
    /// # Errors
    /// [`CoreError::Mil`] when no live bags remain.
    pub fn to_database(&self) -> Result<RetrievalDatabase, CoreError> {
        let mut bags = Vec::with_capacity(self.live_len());
        let mut labels = Vec::with_capacity(self.live_len());
        for shard in &self.shards {
            for local in 0..shard.len() {
                if self.tombstones.contains(&(shard.base + local)) {
                    continue;
                }
                bags.push(shard.bags.to_bag(local));
                labels.push(shard.labels[local]);
            }
        }
        RetrievalDatabase::from_bags(bags, labels)
    }

    /// Ranks the request's candidates by ascending bag distance —
    /// scatter-gather over the shards: each shard runs the same pruned
    /// scan as the monolithic path (per-shard span `store.rank_shard`,
    /// fanned out on the pooled executor), then an index-ordered k-way
    /// merge combines the per-shard rankings. Bit-identical to ranking
    /// the equivalent monolithic database.
    ///
    /// Top-k scans run with both hot-path accelerations: the shared
    /// scatter threshold and the per-shard quantized screen (see the
    /// crate docs). Both are provably ranking-neutral; use
    /// [`Self::rank_exact`] to bypass the screen when measuring or
    /// cross-checking the exact path.
    ///
    /// # Errors
    /// * [`CoreError::IndexOutOfBounds`] for out-of-range *or
    ///   tombstoned* explicit candidates.
    /// * [`CoreError::InvalidScope`] for the session-only scopes
    ///   (`Pool`/`Test`).
    /// * [`CoreError::Mil`] on a concept dimension mismatch.
    pub fn rank(&self, concept: &Concept, request: &RankRequest) -> Result<Ranking, CoreError> {
        self.rank_impl(concept, request, true)
    }

    /// [`Self::rank`] without the quantized screen: every candidate
    /// instance runs the exact `f64` kernel (still with the shared
    /// scatter threshold). Returns bit-identical rankings to
    /// [`Self::rank`] — this is the measurement and regression-test
    /// baseline that makes the claim checkable.
    ///
    /// # Errors
    /// Same as [`Self::rank`].
    pub fn rank_exact(
        &self,
        concept: &Concept,
        request: &RankRequest,
    ) -> Result<Ranking, CoreError> {
        self.rank_impl(concept, request, false)
    }

    fn rank_impl(
        &self,
        concept: &Concept,
        request: &RankRequest,
        screen: bool,
    ) -> Result<Ranking, CoreError> {
        if concept.dim() != self.feature_dim {
            return Err(CoreError::Mil(milr_mil::MilError::DimensionMismatch {
                expected: self.feature_dim,
                actual: concept.dim(),
            }));
        }
        let all: Vec<usize>;
        let candidates: &[usize] = match &request.scope {
            RankScope::All => {
                all = self.live_indices();
                &all
            }
            RankScope::Indices(indices) => {
                for &index in indices {
                    // A tombstoned bag is gone as far as callers are
                    // concerned: naming it is the same error as naming
                    // an index past the end.
                    if self.is_deleted(index)? {
                        return Err(CoreError::IndexOutOfBounds {
                            index,
                            len: self.len(),
                        });
                    }
                }
                indices
            }
            RankScope::Pool => return Err(CoreError::InvalidScope { scope: "pool" }),
            RankScope::Test => return Err(CoreError::InvalidScope { scope: "test" }),
        };
        let _span = milr_obs::span!("store.rank");
        let started = std::time::Instant::now();

        // Scatter: group the candidates per shard, preserving ascending
        // global order inside each group (candidates within one shard
        // are scanned in the given order, like the monolithic scan).
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for &index in candidates {
            let (shard, local) = self.locate(index)?;
            groups[shard].push(local);
        }
        let occupied: Vec<usize> = (0..groups.len())
            .filter(|&s| !groups[s].is_empty())
            .collect();
        let shared = SharedBound::new();
        let scans = pool::run_indexed(occupied.len(), request.threads, |i| {
            let shard_index = occupied[i];
            let _span = milr_obs::span!("store.rank_shard");
            rank_one_shard(
                &self.shards[shard_index],
                concept,
                &groups[shard_index],
                request.top_k,
                &shared,
                screen,
                screen && request.use_index,
                request.aggregator,
            )
        });
        milr_obs::counter!("milr_store_rank_shards_total").add(occupied.len() as u64);
        let (per_shard, _tightenings) = fold_scan_counters(scans);

        // Gather: k-way merge of the sorted per-shard rankings by
        // (distance, global index), truncated to k — exactly the global
        // ranking's head. The shared bound may leave a shard's local
        // ranking *shorter* than k (bags provably outside the global
        // top-k are dropped mid-fill), but every global top-k entry is
        // always admitted to its shard's local ranking, so the merge of
        // the survivors is still exact.
        let merged = merge_rankings(per_shard, request.top_k);
        milr_obs::histogram!("milr_store_rank_latency_us")
            .record(started.elapsed().as_micros() as u64);
        Ok(merged)
    }
}

/// Folds every per-shard scan's counters into the observability
/// registry — screen, threshold, and coarse-index accounting alike —
/// and hands back the rankings plus the total tightenings (which
/// [`ShardSubset::rank_top_k`] also reports to its caller).
fn fold_scan_counters(scans: Vec<ShardScan>) -> (Vec<Ranking>, u64) {
    let mut stats = ScreenStats::default();
    let mut tightenings = 0u64;
    let mut cells_scanned = 0u64;
    let mut cells_skipped = 0u64;
    let mut fallbacks = 0u64;
    let rankings: Vec<Ranking> = scans
        .into_iter()
        .map(|scan| {
            stats.merge(scan.stats);
            tightenings += scan.tightenings;
            cells_scanned += scan.cells_scanned;
            cells_skipped += scan.cells_skipped;
            fallbacks += u64::from(scan.index_fallback);
            scan.ranking
        })
        .collect();
    milr_obs::counter!("milr_rank_quant_screened_total").add(stats.screened);
    milr_obs::counter!("milr_rank_quant_rescored_total").add(stats.rescored);
    milr_obs::counter!("milr_rank_threshold_tightenings_total").add(tightenings);
    milr_obs::counter!("milr_rank_cells_scanned_total").add(cells_scanned);
    milr_obs::counter!("milr_rank_cells_skipped_total").add(cells_skipped);
    milr_obs::counter!("milr_rank_index_fallbacks_total").add(fallbacks);
    (rankings, tightenings)
}

/// Ranks one shard's candidate list (local indices): the same algorithm
/// as the monolithic `RetrievalDatabase` paths — a full scored sort, or
/// the pruned bounded scan with a `(distance, global index)` max-heap —
/// run over the flat shard layout.
///
/// Top-k scans prune against the tighter of the local heap's worst and
/// the shared global bound, publish every tightening of the local worst
/// back into the shared bound, and (when `screen` is set) gate each
/// instance behind the shard's quantized tier before the exact kernel.
///
/// When `use_index` is set, top-k scans additionally consult the
/// shard's coarse cell index before entering each bag: if the minimum
/// provable cell bound over the bag's instances is already at or above
/// the scan's rejection threshold, the bag is skipped whole — the exact
/// scan would have returned `None` for it anyway (every instance
/// distance is at least its cell's bound), so the heap, the published
/// thresholds, and therefore the merged ranking are unchanged by
/// construction. Full (unbounded) rankings never skip: they need every
/// distance.
///
/// A non-min `aggregator` disables all three accelerations for the
/// whole scan: the quantized screen, the coarse index, and the partial
/// abandon all bound the bag's *minimum* instance distance, which says
/// nothing about a logsumexp/mean/noisy-or key — every bag takes the
/// exact [`FlatBags::aggregate_distance`] fold instead, and a requested
/// indexed scan is counted as a fallback (the pinned-counter contract:
/// non-min ⇒ `quant_screened == 0` and one `index_fallback` per bounded
/// shard scan).
#[allow(clippy::too_many_arguments)]
fn rank_one_shard(
    shard: &Shard,
    concept: &Concept,
    locals: &[usize],
    top_k: Option<usize>,
    shared: &SharedBound,
    screen: bool,
    use_index: bool,
    aggregator: BagAggregator,
) -> ShardScan {
    let mut stats = ScreenStats::default();
    let mut scratch = milr_mil::ScreenScratch::default();
    let mut agg_scratch: Vec<f64> = Vec::new();
    let mut tightenings = 0u64;
    let mut cells_scanned = 0u64;
    let mut cells_skipped = 0u64;
    let mut index_fallback = false;
    let exact_fold = !aggregator.is_min();
    let query = (screen && !exact_fold).then(|| shard.bags.quant_query(concept));
    // The index only matters where a rejection threshold exists — the
    // bounded arm. An unsealed tail has none; note the fallback so the
    // counters expose how much of the corpus ranks unindexed. The exact
    // fold can never use the index, so a requested indexed scan counts
    // as a fallback there too.
    let coarse = match top_k {
        Some(k) if k > 0 && use_index => {
            if exact_fold {
                index_fallback = true;
                None
            } else {
                let coarse = shard.bags.index();
                index_fallback = coarse.is_none();
                coarse
            }
        }
        _ => None,
    };
    let cell_bounds = coarse.map(|ix| ix.query_bounds(concept));
    // One scan bound, two kernels: the screened scan and the exact scan
    // return bit-identical values for every (bag, bound) pair. The
    // scratch lives for the whole shard scan so its buffers allocate
    // once. The exact-fold arm ignores the bound entirely — non-min
    // keys cannot be partially abandoned — and always returns `Some`.
    let mut scan = |local: usize, bound: f64, stats: &mut ScreenStats| {
        if exact_fold {
            return Some(shard.bags.aggregate_distance(
                concept,
                local,
                aggregator,
                &mut agg_scratch,
            ));
        }
        match &query {
            Some(q) => shard.bags.min_distance_sq_below_screened(
                concept,
                q,
                local,
                bound,
                stats,
                &mut scratch,
            ),
            None => shard.bags.min_distance_sq_below(concept, local, bound),
        }
    };
    let ranking = match top_k {
        None => {
            // A full ranking needs every exact distance, so neither the
            // shared bound nor a top-k threshold applies; the screen
            // still skips instances beaten by their own bag's running
            // best.
            let mut scored: Ranking = locals
                .iter()
                .map(|&local| {
                    (
                        shard.base + local,
                        scan(local, f64::INFINITY, &mut stats).unwrap_or(f64::INFINITY),
                    )
                })
                .collect();
            scored.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("bag distances are finite")
                    .then_with(|| a.0.cmp(&b.0))
            });
            scored
        }
        Some(0) => Vec::new(),
        Some(k) => {
            let mut heap: std::collections::BinaryHeap<WorstCandidate> =
                std::collections::BinaryHeap::with_capacity(k + 1);
            for &local in locals {
                let index = shard.base + local;
                let local_worst = (heap.len() >= k).then(|| {
                    let worst = heap.peek().expect("heap is non-empty");
                    (worst.0, worst.1)
                });
                // The scan bound is the tighter of the local worst and
                // the shared global threshold; `next_up` admits exact
                // distance ties so the index tie-break sees them —
                // identical to the monolithic bounded scan. Pruning
                // against the shared bound may drop bags even while the
                // heap is filling: any such bag scores strictly worse
                // than the global k-th best and cannot appear in the
                // merged top-k.
                let bound = local_worst
                    .map_or(f64::INFINITY, |(d, _)| d)
                    .min(shared.get());
                let scan_bound = bound.next_up();
                // Cell skipping: the minimum provable cell bound over
                // the bag's instances is a lower bound on every one of
                // its exact distances; at or above the scan bound, the
                // exact scan below would reject them all — skip it.
                if let (Some(ix), Some(bounds)) = (coarse, &cell_bounds) {
                    let span = shard.bags.span(local);
                    let (lb, runs) = ix.range_lower_bound(bounds, span.offset, span.len);
                    if lb >= scan_bound {
                        cells_skipped += runs;
                        continue;
                    }
                    cells_scanned += runs;
                }
                let Some(d) = scan(local, scan_bound, &mut stats) else {
                    continue;
                };
                match local_worst {
                    None => heap.push(WorstCandidate(d, index)),
                    Some((worst_d, worst_i)) => {
                        if d < worst_d || (d == worst_d && index < worst_i) {
                            heap.pop();
                            heap.push(WorstCandidate(d, index));
                        }
                    }
                }
                // Publish the local k-th-worst whenever the heap is
                // full — the shared bound only ever sees thresholds
                // backed by k real candidates. The exact fold never
                // prunes against the bound, so it never publishes
                // either (tightenings stay pinned at zero for non-min).
                if !exact_fold && heap.len() >= k {
                    let worst = heap.peek().expect("heap is non-empty");
                    if shared.tighten(worst.0) {
                        tightenings += 1;
                    }
                }
            }
            let mut top: Ranking = heap
                .into_iter()
                .map(|WorstCandidate(d, i)| (i, d))
                .collect();
            top.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("bag distances are finite")
                    .then_with(|| a.0.cmp(&b.0))
            });
            top
        }
    };
    ShardScan {
        ranking,
        stats,
        tightenings,
        cells_scanned,
        cells_skipped,
        index_fallback,
    }
}

/// Index-ordered k-way merge of sorted rankings: repeatedly takes the
/// head with the smallest `(distance, global index)`, stopping at
/// `limit` entries when one is set.
///
/// Public because it is the gather half of every scatter in the system:
/// the single-node scatter merges per-shard rankings with it, and the
/// cluster coordinator merges per-worker [`SubsetRanking`]s with the
/// same call — which is why the two are bit-identical by construction.
pub fn merge_rankings(lists: Vec<Ranking>, limit: Option<usize>) -> Ranking {
    let total: usize = lists.iter().map(Vec::len).sum();
    let cap = limit.map_or(total, |k| k.min(total));
    let mut heads = vec![0usize; lists.len()];
    let mut out = Vec::with_capacity(cap);
    while out.len() < cap {
        let mut best: Option<usize> = None;
        for (s, list) in lists.iter().enumerate() {
            let Some(&candidate) = list.get(heads[s]) else {
                continue;
            };
            best = match best {
                None => Some(s),
                Some(b) => {
                    let current = lists[b][heads[b]];
                    let smaller = candidate
                        .1
                        .total_cmp(&current.1)
                        .then_with(|| candidate.0.cmp(&current.0))
                        .is_lt();
                    Some(if smaller { s } else { b })
                }
            };
        }
        let Some(b) = best else { break };
        out.push(lists[b][heads[b]]);
        heads[b] += 1;
    }
    out
}

/// Writes one shard file (format v5: bag payload, then the quantized
/// tier, then the coarse index); returns its trailing digest for the
/// manifest.
fn write_shard(fs: &dyn StorageIo, dir: &Path, shard: &Shard) -> Result<u64, CoreError> {
    let path = dir.join(shard_file_name(shard.id));
    let file = fs
        .writer(&path)
        .map_err(|e| storage_err(&path, e.to_string()))?;
    let mut w = Stream::new(BufWriter::new(file), &path);
    w.write_header(SHARD_KIND, STORE_VERSION)?;
    w.write_u64(shard.id)?;
    w.write_u64(shard.bags.dim() as u64)?;
    w.write_u64(shard.len() as u64)?;
    for local in 0..shard.len() {
        w.write_u64(shard.labels[local] as u64)?;
        let span = shard.bags.span(local);
        w.write_u64(span.len as u64)?;
        for &v in shard.bags.bag_instances(local) {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    // The v4 quantized-tier section: a presence flag, then per-instance
    // affine parameters, then the i8 codes. Covered by the same trailing
    // checksum (and manifest digest) as the bag payload.
    w.write_u64(1)?;
    for p in shard.bags.quant_params() {
        w.write_all(&p.bias.to_le_bytes())?;
        w.write_all(&p.scale.to_le_bytes())?;
        w.write_all(&p.radius.to_le_bytes())?;
    }
    let codes: Vec<u8> = shard.bags.quant_codes().iter().map(|&c| c as u8).collect();
    w.write_all(&codes)?;
    // The v5 coarse-index section: a presence flag, the cell count, the
    // row-major f32 centroid block, per-cell f64 radii, then per-instance
    // u32 assignments — all little-endian, all under the same trailing
    // checksum. Callers ensure the index before writing, so the flag is
    // 0 only for a shard that has no instances to index.
    match shard.bags.index() {
        Some(index) => {
            w.write_u64(1)?;
            w.write_u64(index.cell_count() as u64)?;
            for &c in index.centroids() {
                w.write_all(&c.to_le_bytes())?;
            }
            for &r in index.radii() {
                w.write_all(&r.to_le_bytes())?;
            }
            for &a in index.assignments() {
                w.write_all(&a.to_le_bytes())?;
            }
        }
        None => w.write_u64(0)?,
    }
    // The digest covers header + payload — exactly what `finish` writes
    // as the trailing checksum, so the manifest can cross-check the
    // shard without re-reading it.
    let digest = w.digest();
    w.finish()?;
    Ok(digest)
}

/// Reads one shard file, v3, v4 or v5 (digest cross-check against the
/// manifest happens in the caller). A v3 shard — or a newer shard whose
/// tier flag says "absent" — rebuilds its quantized tier from the bag
/// payload, and a pre-v5 shard (or a v5 shard with an absent index
/// flag) rebuilds its coarse index; both rebuilds are deterministic, so
/// every path ends in the same in-memory state.
fn read_shard(
    fs: &dyn StorageIo,
    dir: &Path,
    id: u64,
    expected_dim: usize,
) -> Result<Shard, CoreError> {
    let path = dir.join(shard_file_name(id));
    let file = fs
        .reader(&path)
        .map_err(|e| storage_err(&path, e.to_string()))?;
    let mut r = Stream::new(BufReader::new(file), &path);
    let version = r.read_header_any(SHARD_KIND, &READABLE_VERSIONS)?;
    let stored_id = r.read_u64()?;
    if stored_id != id {
        return Err(r.fail(format!(
            "shard id {stored_id} does not match file name ({id})"
        )));
    }
    let dim = r.read_u64()? as usize;
    if dim != expected_dim {
        return Err(r.fail(format!(
            "shard dimension {dim} does not match the manifest ({expected_dim})"
        )));
    }
    let bag_count = r.read_u64()? as usize;
    if bag_count == 0 || bag_count > 100_000_000 {
        return Err(r.fail(format!("implausible shard bag count {bag_count}")));
    }
    let mut labels = Vec::with_capacity(bag_count);
    let mut data: Vec<f32> = Vec::new();
    let mut bag_lens = Vec::with_capacity(bag_count);
    for _ in 0..bag_count {
        let label = r.read_u64()? as usize;
        let n_instances = r.read_u64()? as usize;
        if n_instances == 0 || n_instances > 1_000_000 {
            return Err(r.fail(format!("implausible instance count {n_instances}")));
        }
        let mut buf = vec![0u8; n_instances * dim * 4];
        r.read_exact(&mut buf)?;
        data.extend(
            buf.chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        bag_lens.push(n_instances);
        labels.push(label);
    }
    let persisted_tier = if version >= QUANT_TIER_VERSION {
        let flag = r.read_u64()?;
        if flag > 1 {
            return Err(r.fail(format!("implausible quantized-tier flag {flag}")));
        }
        if flag == 1 {
            let instance_count = data.len() / dim;
            let mut params = Vec::with_capacity(instance_count);
            for _ in 0..instance_count {
                let mut b4 = [0u8; 4];
                r.read_exact(&mut b4)?;
                let bias = f32::from_le_bytes(b4);
                r.read_exact(&mut b4)?;
                let scale = f32::from_le_bytes(b4);
                let mut b8 = [0u8; 8];
                r.read_exact(&mut b8)?;
                let radius = f64::from_le_bytes(b8);
                params.push(QuantParams {
                    scale,
                    bias,
                    radius,
                });
            }
            let mut code_bytes = vec![0u8; data.len()];
            r.read_exact(&mut code_bytes)?;
            let codes: Vec<i8> = code_bytes.iter().map(|&b| b as i8).collect();
            Some((codes, params))
        } else {
            None
        }
    } else {
        None
    };
    // The v5 coarse-index section. Length plausibility is checked
    // before any allocation; structural invariants are re-validated by
    // `CoarseIndex::from_persisted` after the checksum clears.
    let persisted_index = if version >= COARSE_INDEX_VERSION {
        let flag = r.read_u64()?;
        if flag > 1 {
            return Err(r.fail(format!("implausible coarse-index flag {flag}")));
        }
        if flag == 1 {
            let instance_count = data.len() / dim;
            let cells = r.read_u64()? as usize;
            if cells == 0 || cells > instance_count {
                return Err(r.fail(format!(
                    "implausible coarse-index cell count {cells} ({instance_count} instances)"
                )));
            }
            let mut centroid_bytes = vec![0u8; cells * dim * 4];
            r.read_exact(&mut centroid_bytes)?;
            let centroids: Vec<f32> = centroid_bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            let mut radii = Vec::with_capacity(cells);
            for _ in 0..cells {
                let mut b8 = [0u8; 8];
                r.read_exact(&mut b8)?;
                radii.push(f64::from_le_bytes(b8));
            }
            let mut assignment_bytes = vec![0u8; instance_count * 4];
            r.read_exact(&mut assignment_bytes)?;
            let assignments: Vec<u32> = assignment_bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            Some((centroids, radii, assignments))
        } else {
            None
        }
    } else {
        None
    };
    let digest = r.digest();
    r.verify_checksum()?;
    let mut bags = match persisted_tier {
        Some((codes, params)) => FlatBags::from_persisted(dim, data, &bag_lens, codes, params)
            .map_err(|e| storage_err(&path, format!("inconsistent quantized tier: {e}")))?,
        None => {
            let mut bags = FlatBags::new(dim);
            let mut offset = 0;
            for &len in &bag_lens {
                bags.push_flat(&data[offset * dim..(offset + len) * dim]);
                offset += len;
            }
            bags
        }
    };
    match persisted_index {
        Some((centroids, radii, assignments)) => {
            let index = CoarseIndex::from_persisted(dim, centroids, radii, assignments)
                .map_err(|e| storage_err(&path, format!("inconsistent coarse index: {e}")))?;
            bags.attach_index(index)
                .map_err(|e| storage_err(&path, format!("inconsistent coarse index: {e}")))?;
        }
        None => {
            // Pre-v5 file (or an index-less v5 one): rebuild at load.
            // The build is deterministic, so the rebuilt index is
            // byte-identical to what a v5 rewrite would persist.
            bags.ensure_index();
            milr_obs::counter!("milr_store_index_rebuilds_total").inc();
        }
    }
    Ok(Shard {
        id,
        base: 0,
        labels,
        bags,
        sealed: false,
        persisted: true,
        digest,
    })
}

/// One shard's manifest entry, as read by [`read_manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestShard {
    /// The shard id (maps to its file via [`shard_file_name`]).
    pub id: u64,
    /// Global index of the shard's first bag.
    pub base: usize,
    /// Number of bags in the shard.
    pub bag_count: usize,
    /// Total instances across the shard's bags.
    pub instance_count: usize,
    /// The shard file's trailing FNV-1a digest, recorded so a stale or
    /// swapped shard is detected without a second read.
    pub digest: u64,
}

/// The decoded, checksum-verified manifest of a sharded snapshot —
/// everything needed to plan a shard-subset open or a cluster shard
/// assignment without touching any shard file.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestSummary {
    /// Feature dimension of the stored bags.
    pub feature_dim: usize,
    /// The manifest generation, bumped by every flush.
    pub generation: u64,
    /// Bags per shard before the tail seals.
    pub shard_capacity: usize,
    /// Per-shard entries in global-index order (bases ascending).
    pub shards: Vec<ManifestShard>,
    /// Tombstoned global indices.
    pub tombstones: BTreeSet<usize>,
    /// The feature backend that preprocessed the stored bags. Pre-v6
    /// manifests carry no tag and decode as the default gray-block tag.
    pub backend: BackendTag,
}

impl ManifestSummary {
    /// Total bag count, tombstoned included.
    pub fn total_bags(&self) -> usize {
        self.shards.last().map_or(0, |s| s.base + s.bag_count)
    }

    /// Number of live (non-tombstoned) bags.
    pub fn live_len(&self) -> usize {
        self.total_bags() - self.tombstones.len()
    }

    /// Maps a global index to its rank among live indices — the index
    /// the same bag carries in the compacted [`Snapshot::database`]
    /// view. Returns `None` for tombstoned indices.
    pub fn live_rank(&self, index: usize) -> Option<usize> {
        if self.tombstones.contains(&index) {
            return None;
        }
        Some(index - self.tombstones.range(..index).count())
    }
}

/// Reads and verifies `manifest.milr` under `dir` via the real
/// filesystem — the planning half of [`ShardedDatabase::open`], split
/// out so cluster nodes can compute shard assignments (and stream shard
/// files) without loading any bag payload.
///
/// # Errors
/// [`CoreError::Storage`] on a missing/corrupt manifest or any format
/// violation.
pub fn read_manifest(dir: impl AsRef<Path>) -> Result<ManifestSummary, CoreError> {
    read_manifest_with(&OsFs, dir.as_ref())
}

/// [`read_manifest`] over an explicit [`StorageIo`] seam.
///
/// # Errors
/// Same as [`read_manifest`].
pub fn read_manifest_with(fs: &dyn StorageIo, dir: &Path) -> Result<ManifestSummary, CoreError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let file = fs
        .reader(&manifest_path)
        .map_err(|e| storage_err(&manifest_path, e.to_string()))?;
    let mut r = Stream::new(BufReader::new(file), &manifest_path);
    // v3, v4 and v5 manifests carry an identical payload; only the
    // shard files differ (v4 appends the quantized tier, v5 the coarse
    // index). v6 appends the feature-backend tag to the manifest.
    let version = r.read_header_any(MANIFEST_KIND, &READABLE_VERSIONS)?;
    let feature_dim = r.read_u64()? as usize;
    if feature_dim == 0 || feature_dim > 100_000_000 {
        return Err(r.fail("implausible feature dimension"));
    }
    let generation = r.read_u64()?;
    let shard_capacity = r.read_u64()? as usize;
    if shard_capacity == 0 {
        return Err(r.fail("zero shard capacity"));
    }
    let shard_count = r.read_u64()? as usize;
    if shard_count > 1_000_000 {
        return Err(r.fail("implausible shard count"));
    }
    let mut shards = Vec::with_capacity(shard_count);
    let mut base = 0usize;
    for _ in 0..shard_count {
        let id = r.read_u64()?;
        let bag_count = r.read_u64()? as usize;
        let instance_count = r.read_u64()? as usize;
        let digest = r.read_u64()?;
        if bag_count == 0 || bag_count > 100_000_000 {
            return Err(r.fail(format!("implausible shard bag count {bag_count}")));
        }
        shards.push(ManifestShard {
            id,
            base,
            bag_count,
            instance_count,
            digest,
        });
        base += bag_count;
    }
    let total = base;
    let tombstone_count = r.read_u64()? as usize;
    if tombstone_count > total {
        return Err(r.fail("more tombstones than bags"));
    }
    let mut tombstones = BTreeSet::new();
    let mut previous: Option<usize> = None;
    for _ in 0..tombstone_count {
        let index = r.read_u64()? as usize;
        if index >= total {
            return Err(r.fail(format!("tombstone {index} out of range ({total} bags)")));
        }
        if previous.is_some_and(|p| p >= index) {
            return Err(r.fail("tombstones must be strictly ascending"));
        }
        previous = Some(index);
        tombstones.insert(index);
    }
    // The v6 backend tag. Older manifests predate the tag: those
    // snapshots were all produced by the paper's gray-block pipeline,
    // so they decode as the default gray-block tag (byte-identically —
    // no payload bytes are consumed).
    let backend = if version >= BACKEND_TAG_VERSION {
        let id = read_tag_string(&mut r, "backend id")?;
        let param_count = r.read_u64()? as usize;
        if param_count > 64 {
            return Err(r.fail(format!("implausible backend parameter count {param_count}")));
        }
        let mut params = Vec::with_capacity(param_count);
        for _ in 0..param_count {
            let name = read_tag_string(&mut r, "backend parameter name")?;
            let value = f64::from_bits(r.read_u64()?);
            params.push((name, value));
        }
        BackendTag { id, params }
    } else {
        BackendTag::default()
    };
    r.verify_checksum()?;
    Ok(ManifestSummary {
        feature_dim,
        generation,
        shard_capacity,
        shards,
        tombstones,
        backend,
    })
}

/// Reads one length-prefixed UTF-8 string of the manifest's backend-tag
/// section (backend ids and parameter names are short ASCII labels, so
/// anything past 256 bytes is corruption, not a long name).
fn read_tag_string<R: std::io::Read>(
    r: &mut Stream<'_, R>,
    what: &str,
) -> Result<String, CoreError> {
    let len = r.read_u64()? as usize;
    if len == 0 || len > 256 {
        return Err(r.fail(format!("implausible {what} length {len}")));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|_| r.fail(format!("{what} is not UTF-8")))
}

/// Loads one manifest-listed shard and cross-checks it against its
/// entry: digest, bag count, instance count. The returned shard carries
/// the entry's global base.
fn load_manifest_shard(
    fs: &dyn StorageIo,
    dir: &Path,
    entry: &ManifestShard,
    feature_dim: usize,
) -> Result<Shard, CoreError> {
    let shard = read_shard(fs, dir, entry.id, feature_dim)?;
    if shard.digest != entry.digest {
        let path = dir.join(shard_file_name(entry.id));
        return Err(storage_err(
            &path,
            format!(
                "shard digest {:#018x} disagrees with the manifest ({:#018x}) — stale or swapped shard",
                shard.digest, entry.digest
            ),
        ));
    }
    if shard.labels.len() != entry.bag_count || shard.bags.instance_count() != entry.instance_count
    {
        let path = dir.join(shard_file_name(entry.id));
        return Err(storage_err(
            &path,
            "shard bag/instance counts disagree with the manifest",
        ));
    }
    Ok(Shard {
        base: entry.base,
        ..shard
    })
}

/// A top-k ranking produced by [`ShardSubset::rank_top_k`], plus the
/// counters the caller folds into its own accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetRanking {
    /// The subset's top-k by ascending `(distance, global index)`,
    /// indexed in the *global* (tombstone-inclusive) index space.
    pub ranking: Ranking,
    /// How often a shard scan tightened the shared threshold (including
    /// tightenings of an externally-seeded initial bound).
    pub tightenings: u64,
}

/// A read-only view over a *subset* of a sharded snapshot's shards —
/// the worker half of distributed scatter-gather. The subset opens only
/// its assigned shard files (digest-verified against the manifest) but
/// keeps the manifest's *global* index space: rankings it produces
/// merge with other subsets' rankings by `(distance, global index)`
/// exactly as the single-node scatter merges its per-shard scans.
#[derive(Debug)]
pub struct ShardSubset {
    feature_dim: usize,
    generation: u64,
    total_bags: usize,
    total_shards: usize,
    shards: Vec<Shard>,
    /// Live (non-tombstoned) local indices per loaded shard.
    locals: Vec<Vec<usize>>,
}

impl ShardSubset {
    /// Opens the shards named by `ids` from the snapshot under `dir`.
    /// Every id must appear in the manifest; each loaded shard is
    /// digest-verified against its manifest entry. `ids` may be empty
    /// (a worker with no assignment ranks nothing).
    ///
    /// # Errors
    /// [`CoreError::Storage`] on a missing/corrupt manifest, an id the
    /// manifest does not list, a duplicate id, or any shard-file
    /// verification failure.
    pub fn open(dir: impl AsRef<Path>, ids: &[u64]) -> Result<Self, CoreError> {
        Self::open_with(&OsFs, dir.as_ref(), ids)
    }

    /// [`Self::open`] over an explicit [`StorageIo`] seam.
    ///
    /// # Errors
    /// Same as [`Self::open`].
    pub fn open_with(fs: &dyn StorageIo, dir: &Path, ids: &[u64]) -> Result<Self, CoreError> {
        let summary = read_manifest_with(fs, dir)?;
        Self::from_manifest_with(fs, dir, &summary, ids)
    }

    /// [`Self::open_with`] against an already-read manifest (callers
    /// that just fetched or planned over the summary skip re-reading
    /// it).
    ///
    /// # Errors
    /// Same as [`Self::open`].
    pub fn from_manifest_with(
        fs: &dyn StorageIo,
        dir: &Path,
        summary: &ManifestSummary,
        ids: &[u64],
    ) -> Result<Self, CoreError> {
        let mut shards = Vec::with_capacity(ids.len());
        let mut locals = Vec::with_capacity(ids.len());
        let mut seen = BTreeSet::new();
        for &id in ids {
            if !seen.insert(id) {
                return Err(storage_err(
                    dir,
                    format!("shard {id} assigned to the subset twice"),
                ));
            }
            let Some(entry) = summary.shards.iter().find(|e| e.id == id) else {
                return Err(storage_err(
                    dir,
                    format!("shard {id} is not listed in the manifest"),
                ));
            };
            let shard = load_manifest_shard(fs, dir, entry, summary.feature_dim)?;
            locals.push(
                (0..entry.bag_count)
                    .filter(|local| !summary.tombstones.contains(&(entry.base + local)))
                    .collect(),
            );
            shards.push(shard);
        }
        Ok(Self {
            feature_dim: summary.feature_dim,
            generation: summary.generation,
            total_bags: summary.total_bags(),
            total_shards: summary.shards.len(),
            shards,
            locals,
        })
    }

    /// Feature dimension of the snapshot the subset was opened from.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// The manifest generation the subset was opened at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Ids of the loaded shards, in open order.
    pub fn shard_ids(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.id).collect()
    }

    /// Total bag count of the *whole* snapshot (the global index
    /// space), tombstoned included.
    pub fn total_bags(&self) -> usize {
        self.total_bags
    }

    /// Shard count of the whole snapshot (not just this subset).
    pub fn total_shards(&self) -> usize {
        self.total_shards
    }

    /// Number of live bags held by this subset.
    pub fn live_len(&self) -> usize {
        self.locals.iter().map(Vec::len).sum()
    }

    /// Ranks the subset's live bags and returns its top-k by ascending
    /// `(distance, global index)` — the same pruned, quantized-screened
    /// scan as [`ShardedDatabase::rank`], fanned over the loaded shards
    /// on the pooled executor.
    ///
    /// `initial_bound` seeds the shared scatter threshold (pass
    /// [`f64::INFINITY`] for none): a cluster coordinator forwards its
    /// current k-th-best distance so workers prune against results
    /// gathered elsewhere. Soundness is inherited from [`SharedBound`]:
    /// as long as the seed is backed by `k` real candidates that are
    /// part of the final merge, every pruned bag is provably outside
    /// the merged top-k.
    ///
    /// # Errors
    /// [`CoreError::Mil`] on a concept dimension mismatch.
    #[deprecated(note = "use `rank_top_k_with` with an explicit `BagAggregator`")]
    pub fn rank_top_k(
        &self,
        concept: &Concept,
        k: usize,
        initial_bound: f64,
        threads: usize,
    ) -> Result<SubsetRanking, CoreError> {
        self.rank_top_k_with(
            concept,
            k,
            initial_bound,
            threads,
            BagAggregator::MinDistance,
        )
    }

    /// [`Self::rank_top_k`] under an explicit [`BagAggregator`]. The
    /// default min-distance aggregator runs the pruned, screened,
    /// indexed scan; any other aggregator takes the exact per-bag fold
    /// (no screen, no index, no shared-bound pruning — see
    /// [`BagAggregator::fold`]), so a coordinator-seeded `initial_bound`
    /// is simply ignored there.
    ///
    /// # Errors
    /// [`CoreError::Mil`] on a concept dimension mismatch.
    pub fn rank_top_k_with(
        &self,
        concept: &Concept,
        k: usize,
        initial_bound: f64,
        threads: usize,
        aggregator: BagAggregator,
    ) -> Result<SubsetRanking, CoreError> {
        if concept.dim() != self.feature_dim {
            return Err(CoreError::Mil(milr_mil::MilError::DimensionMismatch {
                expected: self.feature_dim,
                actual: concept.dim(),
            }));
        }
        let _span = milr_obs::span!("store.rank_subset");
        let started = std::time::Instant::now();
        let occupied: Vec<usize> = (0..self.shards.len())
            .filter(|&s| !self.locals[s].is_empty())
            .collect();
        let shared = SharedBound::with_initial(initial_bound);
        let scans = pool::run_indexed(occupied.len(), threads, |i| {
            let shard_index = occupied[i];
            let _span = milr_obs::span!("store.rank_shard");
            rank_one_shard(
                &self.shards[shard_index],
                concept,
                &self.locals[shard_index],
                Some(k),
                &shared,
                true,
                true,
                aggregator,
            )
        });
        milr_obs::counter!("milr_store_rank_shards_total").add(occupied.len() as u64);
        let (per_shard, tightenings) = fold_scan_counters(scans);
        let ranking = merge_rankings(per_shard, Some(k));
        milr_obs::histogram!("milr_store_rank_latency_us")
            .record(started.elapsed().as_micros() as u64);
        Ok(SubsetRanking {
            ranking,
            tightenings,
        })
    }
}

/// A loaded snapshot of either format, ready to serve.
#[derive(Debug)]
pub struct Snapshot {
    /// The live bags as a monolithic database (global-index order).
    pub database: RetrievalDatabase,
    /// The manifest generation (0 for monolithic v2 snapshots).
    pub generation: u64,
    /// How many shards backed the snapshot (1 for v2 files).
    pub shards: usize,
    /// The feature backend recorded for the snapshot's bags (the
    /// default gray-block tag for monolithic v2 files and pre-v6
    /// sharded snapshots).
    pub backend: BackendTag,
}

/// Loads a snapshot, auto-detecting the format: a directory (or a path
/// whose `manifest.milr` exists) is a sharded v3 store; anything else is
/// a monolithic v2 file.
///
/// # Errors
/// [`CoreError::Storage`] with the usual diagnostics for either format.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Snapshot, CoreError> {
    let path = path.as_ref();
    if path.is_dir() || path.join(MANIFEST_FILE).is_file() {
        let mut store = ShardedDatabase::open(path)?;
        let backend = std::mem::take(&mut store.backend);
        Ok(Snapshot {
            database: store.to_database()?,
            generation: store.generation(),
            shards: store.shard_count(),
            backend,
        })
    } else {
        // Monolithic v2 files predate backend tags; they were all
        // produced by the gray-block pipeline.
        let database: RetrievalDatabase = Store::default().open(path)?;
        Ok(Snapshot {
            database,
            generation: 0,
            shards: 1,
            backend: BackendTag::default(),
        })
    }
}

/// [`load_snapshot`], additionally requiring the snapshot's recorded
/// feature backend id to be `expected_backend` — the serving-side guard
/// that keeps a daemon configured for one feature space from answering
/// queries out of a snapshot preprocessed in another.
///
/// # Errors
/// [`CoreError::Storage`] naming both backend ids on a mismatch, or any
/// [`load_snapshot`] failure.
pub fn load_snapshot_expecting(
    path: impl AsRef<Path>,
    expected_backend: &str,
) -> Result<Snapshot, CoreError> {
    let path = path.as_ref();
    let snapshot = load_snapshot(path)?;
    if snapshot.backend.id != expected_backend {
        return Err(storage_err(
            path,
            format!(
                "snapshot was preprocessed with feature backend '{}' but '{expected_backend}' was expected",
                snapshot.backend.id
            ),
        ));
    }
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(values: &[&[f32]]) -> Bag {
        Bag::new(values.iter().map(|v| v.to_vec()).collect()).unwrap()
    }

    /// A deterministic little database: 4-dimensional bags with 1..=3
    /// instances, labels cycling over three categories. The raw data
    /// comes from the shared corpus helper so the sharding and indexing
    /// integration tests exercise byte-identical inputs.
    fn sample_db(count: usize) -> RetrievalDatabase {
        let bags: Vec<Bag> = milr_synth::corpus::lattice_bags(count, 4)
            .into_iter()
            .map(|instances| Bag::new(instances).unwrap())
            .collect();
        RetrievalDatabase::from_bags(bags, milr_synth::corpus::lattice_labels(count)).unwrap()
    }

    fn sample_concept() -> Concept {
        Concept::new(vec![1.0, 2.5, 0.5, 3.0], vec![1.0, 0.5, 2.0, 0.25])
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("milr_store_tests")
            .join(format!("{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn pushes_seal_shards_at_capacity() {
        let mut store = ShardedDatabase::create(temp_dir("seal"), 4, 3).unwrap();
        assert!(store.is_empty());
        let db = sample_db(8);
        for i in 0..db.len() {
            let index = store
                .push_bag(db.bag(i).unwrap().clone(), db.label(i).unwrap())
                .unwrap();
            assert_eq!(index, i, "global indices are append-ordered");
        }
        assert_eq!(store.len(), 8);
        assert_eq!(store.live_len(), 8);
        // 8 bags at capacity 3: shards of 3 + 3 + 2.
        assert_eq!(store.shard_count(), 3);
        for i in 0..8 {
            assert_eq!(store.label(i).unwrap(), i % 3);
            assert!(!store.is_deleted(i).unwrap());
        }
        assert!(matches!(
            store.label(8),
            Err(CoreError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut store = ShardedDatabase::create(temp_dir("dim"), 4, 3).unwrap();
        assert!(matches!(
            store.push_bag(bag(&[&[1.0, 2.0]]), 0),
            Err(CoreError::Mil(milr_mil::MilError::DimensionMismatch { .. }))
        ));
        assert!(ShardedDatabase::create(temp_dir("dim0"), 0, 3).is_err());
        assert!(ShardedDatabase::create(temp_dir("cap0"), 4, 0).is_err());
    }

    #[test]
    fn sharded_rank_is_bit_identical_to_monolithic() {
        let db = sample_db(23);
        let concept = sample_concept();
        let monolithic = db.rank(&concept, &RankRequest::all()).unwrap();
        for capacity in [1, 2, 5, 23, 100] {
            let store = ShardedDatabase::from_database(&db, temp_dir("rank"), capacity).unwrap();
            let sharded = store.rank(&concept, &RankRequest::all()).unwrap();
            assert_eq!(sharded, monolithic, "capacity {capacity}");
            for k in [0, 1, 3, 7, 23, 40] {
                let top = store.rank(&concept, &RankRequest::all().top(k)).unwrap();
                assert_eq!(
                    top,
                    monolithic[..k.min(monolithic.len())],
                    "capacity {capacity}, k {k}"
                );
            }
            // Explicit candidate subsets agree too.
            let subset = vec![20, 3, 11, 7, 0];
            assert_eq!(
                store
                    .rank(&concept, &RankRequest::over(subset.clone()))
                    .unwrap(),
                db.rank(&concept, &RankRequest::over(subset)).unwrap(),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn non_min_aggregators_rank_identically_to_monolithic() {
        // Every non-min aggregator takes the exact per-bag fold on both
        // sides, so sharded (screened or not, indexed or not, with
        // tombstones) must match the monolithic ranking bit for bit.
        let db = sample_db(23);
        let concept = sample_concept();
        for aggregator in BagAggregator::ALL {
            let request = RankRequest::all().aggregator(aggregator);
            let monolithic = db.rank(&concept, &request).unwrap();
            for capacity in [1, 4, 23] {
                let store =
                    ShardedDatabase::from_database(&db, temp_dir("agg_rank"), capacity).unwrap();
                assert_eq!(
                    store.rank(&concept, &request).unwrap(),
                    monolithic,
                    "{aggregator} capacity {capacity}"
                );
                assert_eq!(
                    store.rank_exact(&concept, &request).unwrap(),
                    monolithic,
                    "{aggregator} capacity {capacity} (exact)"
                );
                for k in [1, 3, 23] {
                    assert_eq!(
                        store
                            .rank(&concept, &RankRequest::all().top(k).aggregator(aggregator))
                            .unwrap(),
                        monolithic[..k.min(monolithic.len())],
                        "{aggregator} capacity {capacity} k {k}"
                    );
                }
            }
        }
        // Tombstones restrict non-min rankings exactly like min ones.
        let mut store = ShardedDatabase::from_database(&db, temp_dir("agg_tomb"), 5).unwrap();
        store.delete(3).unwrap();
        store.delete(19).unwrap();
        let live: Vec<usize> = (0..23).filter(|&i| i != 3 && i != 19).collect();
        for aggregator in BagAggregator::ALL {
            let request = RankRequest::all().aggregator(aggregator);
            assert_eq!(
                store.rank(&concept, &request).unwrap(),
                db.rank(
                    &concept,
                    &RankRequest::over(live.clone()).aggregator(aggregator)
                )
                .unwrap(),
                "{aggregator} under tombstones"
            );
        }
    }

    #[test]
    fn subset_non_min_ranking_matches_sharded_store() {
        let db = sample_db(19);
        let concept = sample_concept();
        let dir = temp_dir("agg_subset");
        let mut store = ShardedDatabase::from_database(&db, &dir, 4).unwrap();
        store.flush().unwrap();
        let ids: Vec<u64> = read_manifest(&dir)
            .unwrap()
            .shards
            .iter()
            .map(|s| s.id)
            .collect();
        let subset = ShardSubset::open(&dir, &ids).unwrap();
        for aggregator in BagAggregator::ALL {
            for k in [1, 5, 19] {
                let scan = subset
                    .rank_top_k_with(&concept, k, f64::INFINITY, 1, aggregator)
                    .unwrap();
                let expected = store
                    .rank(&concept, &RankRequest::all().top(k).aggregator(aggregator))
                    .unwrap();
                assert_eq!(scan.ranking, expected, "{aggregator} k {k}");
                if !aggregator.is_min() {
                    assert_eq!(scan.tightenings, 0, "{aggregator} never publishes bounds");
                }
            }
        }
    }

    #[test]
    fn manifest_backend_tag_round_trips() {
        let dir = temp_dir("backend_tag");
        let mut store = ShardedDatabase::from_database(&sample_db(7), &dir, 3).unwrap();
        let tag = BackendTag {
            id: "sbn".to_string(),
            params: vec![("grid".to_string(), 8.0), ("blob".to_string(), 2.0)],
        };
        store.set_backend(tag.clone());
        store.flush().unwrap();
        assert_eq!(read_manifest(&dir).unwrap().backend, tag);
        let reopened = ShardedDatabase::open(&dir).unwrap();
        assert_eq!(reopened.backend(), &tag);
        // The snapshot front door surfaces the tag and the expecting
        // variant enforces it.
        let snapshot = load_snapshot(&dir).unwrap();
        assert_eq!(snapshot.backend, tag);
        assert!(load_snapshot_expecting(&dir, "sbn").is_ok());
        assert!(matches!(
            load_snapshot_expecting(&dir, "gray-block"),
            Err(CoreError::Storage { .. })
        ));
        assert!(ShardedDatabase::open_expecting_backend(&dir, "sbn").is_ok());
        assert!(matches!(
            ShardedDatabase::open_expecting_backend(&dir, "gray-block"),
            Err(CoreError::Storage { .. })
        ));
    }

    #[test]
    fn pre_v6_manifests_open_as_gray_block() {
        // Rewrite a freshly-flushed manifest as v5 — the exact payload a
        // pre-tag writer produced — and check the store opens with the
        // default gray-block tag and byte-identical content.
        let dir = temp_dir("backend_v5");
        let mut store = ShardedDatabase::from_database(&sample_db(9), &dir, 4).unwrap();
        store.set_backend(BackendTag {
            id: "sbn".to_string(),
            params: Vec::new(),
        });
        store.flush().unwrap();
        let summary = read_manifest(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE);
        {
            let file = std::fs::File::create(&path).unwrap();
            let mut w = Stream::new(BufWriter::new(file), &path);
            w.write_header(MANIFEST_KIND, COARSE_INDEX_VERSION).unwrap();
            w.write_u64(summary.feature_dim as u64).unwrap();
            w.write_u64(summary.generation).unwrap();
            w.write_u64(summary.shard_capacity as u64).unwrap();
            w.write_u64(summary.shards.len() as u64).unwrap();
            for shard in &summary.shards {
                w.write_u64(shard.id).unwrap();
                w.write_u64(shard.bag_count as u64).unwrap();
                w.write_u64(shard.instance_count as u64).unwrap();
                w.write_u64(shard.digest).unwrap();
            }
            w.write_u64(0).unwrap(); // no tombstones
            w.finish().unwrap();
        }
        let reopened = ShardedDatabase::open(&dir).unwrap();
        assert_eq!(reopened.backend(), &BackendTag::default());
        assert_eq!(reopened.backend().id, "gray-block");
        let concept = sample_concept();
        assert_eq!(
            reopened.rank(&concept, &RankRequest::all()).unwrap(),
            store.rank(&concept, &RankRequest::all()).unwrap(),
            "pre-v6 manifests must open byte-identically"
        );
    }

    #[test]
    fn corrupt_backend_tags_fail_the_open() {
        let dir = temp_dir("backend_corrupt");
        let mut store = ShardedDatabase::from_database(&sample_db(5), &dir, 3).unwrap();
        store.set_backend(BackendTag {
            id: "gray-block".to_string(),
            params: vec![("resolution".to_string(), 10.0)],
        });
        store.flush().unwrap();
        let path = dir.join(MANIFEST_FILE);
        let clean = std::fs::read(&path).unwrap();
        // Sweep a bit flip across every byte of the v6 tag section and
        // the trailing checksum. Walking back from the end: checksum
        // (8), param value (8), param name (10), param name length (8),
        // param count (8), id ("gray-block", 10), id length (8). Length
        // fields are guarded by plausibility caps, so even a flipped
        // high length byte surfaces as a storage error, never a huge
        // allocation or a panic.
        let tag_len = 8 + "gray-block".len() + 8 + 8 + "resolution".len() + 8;
        let tag_start = clean.len() - 8 - tag_len;
        for offset in tag_start..clean.len() {
            let mut bytes = clean.clone();
            bytes[offset] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            let err = ShardedDatabase::open(&dir).unwrap_err();
            assert!(
                matches!(err, CoreError::Storage { .. }),
                "tag corruption at byte {offset}: expected Storage, got {err:?}"
            );
        }
        std::fs::write(&path, &clean).unwrap();
        ShardedDatabase::open(&dir).expect("restored store opens again");
    }

    #[test]
    fn rank_is_thread_invariant() {
        let db = sample_db(17);
        let concept = sample_concept();
        let store = ShardedDatabase::from_database(&db, temp_dir("threads"), 4).unwrap();
        let reference = store
            .rank(&concept, &RankRequest::all().threads(1))
            .unwrap();
        for threads in [0, 2, 3, 8] {
            assert_eq!(
                store
                    .rank(&concept, &RankRequest::all().threads(threads))
                    .unwrap(),
                reference
            );
        }
    }

    #[test]
    fn rank_validates_scope_and_candidates() {
        let db = sample_db(6);
        let concept = sample_concept();
        let mut store = ShardedDatabase::from_database(&db, temp_dir("scope"), 2).unwrap();
        assert!(matches!(
            store.rank(&concept, &RankRequest::pool()),
            Err(CoreError::InvalidScope { scope: "pool" })
        ));
        assert!(matches!(
            store.rank(&concept, &RankRequest::over(vec![99])),
            Err(CoreError::IndexOutOfBounds { .. })
        ));
        // Tombstoned candidates are gone.
        store.delete(2).unwrap();
        assert!(matches!(
            store.rank(&concept, &RankRequest::over(vec![2])),
            Err(CoreError::IndexOutOfBounds { index: 2, .. })
        ));
        // Wrong concept dimension.
        let alien = Concept::new(vec![0.0; 2], vec![1.0; 2]);
        assert!(matches!(
            store.rank(&alien, &RankRequest::all()),
            Err(CoreError::Mil(milr_mil::MilError::DimensionMismatch { .. }))
        ));
    }

    #[test]
    fn tombstones_hide_bags_from_ranking() {
        let db = sample_db(10);
        let concept = sample_concept();
        let mut store = ShardedDatabase::from_database(&db, temp_dir("tomb"), 3).unwrap();
        assert!(store.delete(4).unwrap());
        assert!(!store.delete(4).unwrap(), "second delete is a no-op");
        store.delete(7).unwrap();
        assert_eq!(store.live_len(), 8);
        assert_eq!(store.tombstone_count(), 2);
        assert!(store.is_deleted(4).unwrap());
        let ranking = store.rank(&concept, &RankRequest::all()).unwrap();
        assert_eq!(ranking.len(), 8);
        assert!(ranking.iter().all(|&(i, _)| i != 4 && i != 7));
        // The live ranking equals the monolithic ranking restricted to
        // the live candidates.
        let live: Vec<usize> = (0..10).filter(|&i| i != 4 && i != 7).collect();
        assert_eq!(
            ranking,
            db.rank(&concept, &RankRequest::over(live)).unwrap()
        );
    }

    #[test]
    fn flush_open_round_trips_everything() {
        let dir = temp_dir("roundtrip");
        let db = sample_db(11);
        let mut store = ShardedDatabase::from_database(&db, &dir, 4).unwrap();
        store.delete(3).unwrap();
        store.flush().unwrap();
        assert_eq!(store.generation(), 1);

        let back = ShardedDatabase::open(&dir).unwrap();
        assert_eq!(back.len(), 11);
        assert_eq!(back.live_len(), 10);
        assert_eq!(back.generation(), 1);
        assert_eq!(back.shard_count(), 3);
        assert_eq!(back.shard_capacity(), 4);
        assert!(back.is_deleted(3).unwrap());
        for i in 0..11 {
            assert_eq!(back.label(i).unwrap(), store.label(i).unwrap());
        }
        let concept = sample_concept();
        assert_eq!(
            back.rank(&concept, &RankRequest::all()).unwrap(),
            store.rank(&concept, &RankRequest::all()).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_flush_rewrites_only_the_tail() {
        let dir = temp_dir("incremental");
        let db = sample_db(8);
        let mut store = ShardedDatabase::from_database(&db, &dir, 3).unwrap();
        store.flush().unwrap();
        let sealed_path = dir.join(shard_file_name(0));
        let sealed_before = std::fs::metadata(&sealed_path).unwrap().modified().unwrap();
        let tail_path = dir.join(shard_file_name(2));
        let tail_bytes_before = std::fs::read(&tail_path).unwrap();

        // Append one bag: lands in the open tail (2 of 3 slots used).
        store.push_bag(db.bag(0).unwrap().clone(), 0).unwrap();
        store.flush().unwrap();
        assert_eq!(store.generation(), 2);
        let sealed_after = std::fs::metadata(&sealed_path).unwrap().modified().unwrap();
        assert_eq!(
            sealed_before, sealed_after,
            "sealed shards must not be rewritten"
        );
        assert_ne!(
            tail_bytes_before,
            std::fs::read(&tail_path).unwrap(),
            "the tail shard must grow"
        );

        // And the reopened store sees the appended bag.
        let back = ShardedDatabase::open(&dir).unwrap();
        assert_eq!(back.len(), 9);
        assert_eq!(back.generation(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_drops_tombstones_and_renumbers() {
        let dir = temp_dir("compact");
        let db = sample_db(10);
        let concept = sample_concept();
        let mut store = ShardedDatabase::from_database(&db, &dir, 3).unwrap();
        store.flush().unwrap();
        store.delete(0).unwrap();
        store.delete(5).unwrap();
        store.delete(9).unwrap();
        let live_ranking = store.rank(&concept, &RankRequest::all()).unwrap();

        assert_eq!(store.compact(), 3);
        assert_eq!(store.len(), 7);
        assert_eq!(store.tombstone_count(), 0);
        assert_eq!(store.shard_count(), 3); // 3 + 3 + 1
        store.flush().unwrap();

        // Stale shard files from the pre-compact generation are gone.
        let shard_files: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("shard-"))
            .collect();
        assert_eq!(
            shard_files.len(),
            3,
            "stale shards removed: {shard_files:?}"
        );

        // Compaction renumbers global indices densely but preserves the
        // ranking *order* and distances of the live bags.
        let back = ShardedDatabase::open(&dir).unwrap();
        let compacted_ranking = back.rank(&concept, &RankRequest::all()).unwrap();
        let distances: Vec<f64> = compacted_ranking.iter().map(|&(_, d)| d).collect();
        let expected: Vec<f64> = live_ranking.iter().map(|&(_, d)| d).collect();
        assert_eq!(distances, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_and_shards_are_rejected() {
        let dir = temp_dir("corrupt");
        let db = sample_db(6);
        let mut store = ShardedDatabase::from_database(&db, &dir, 2).unwrap();
        store.flush().unwrap();

        // Flip a payload bit in a shard: its own checksum catches it.
        let shard_path = dir.join(shard_file_name(1));
        let mut bytes = std::fs::read(&shard_path).unwrap();
        bytes[40] ^= 0x20;
        std::fs::write(&shard_path, &bytes).unwrap();
        let err = ShardedDatabase::open(&dir).unwrap_err();
        assert!(matches!(err, CoreError::Storage { .. }), "got {err:?}");
        bytes[40] ^= 0x20;
        std::fs::write(&shard_path, &bytes).unwrap();
        ShardedDatabase::open(&dir).expect("restored store opens again");

        // Replace a shard with a self-consistent but *different* shard
        // file: only the manifest digest cross-check can catch that.
        let other_dir = temp_dir("corrupt_other");
        let other_bags: Vec<Bag> = (0..6)
            .map(|n| bag(&[&[n as f32 + 0.25, 0.5, 0.75, 1.0]]))
            .collect();
        let other_db = RetrievalDatabase::from_bags(other_bags, vec![0; 6]).unwrap();
        let mut other = ShardedDatabase::from_database(&other_db, &other_dir, 2).unwrap();
        other.flush().unwrap();
        std::fs::copy(other_dir.join(shard_file_name(1)), &shard_path).unwrap();
        let err = ShardedDatabase::open(&dir).unwrap_err();
        match err {
            CoreError::Storage { reason, .. } => {
                assert!(reason.contains("manifest"), "reason: {reason}");
            }
            other => panic!("expected Storage, got {other:?}"),
        }

        // A truncated manifest is caught by its checksum.
        let manifest_path = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&manifest_path).unwrap();
        std::fs::write(&manifest_path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(ShardedDatabase::open(&dir).is_err());

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&other_dir).ok();
    }

    #[test]
    fn to_database_round_trips_live_bags() {
        let db = sample_db(9);
        let mut store = ShardedDatabase::from_database(&db, temp_dir("todb"), 4).unwrap();
        let back = store.to_database().unwrap();
        assert_eq!(back.len(), db.len());
        assert_eq!(back.labels(), db.labels());
        for i in 0..db.len() {
            assert_eq!(back.bag(i).unwrap(), db.bag(i).unwrap());
        }
        // With tombstones the live bags compress in order.
        store.delete(1).unwrap();
        let live = store.to_database().unwrap();
        assert_eq!(live.len(), 8);
        assert_eq!(live.bag(0).unwrap(), db.bag(0).unwrap());
        assert_eq!(live.bag(1).unwrap(), db.bag(2).unwrap());
    }

    #[test]
    fn load_snapshot_detects_both_formats() {
        // v2: a monolithic file.
        let db = sample_db(7);
        let v2_path = std::env::temp_dir()
            .join("milr_store_tests")
            .join(format!("snap_v2_{}.milr", std::process::id()));
        std::fs::create_dir_all(v2_path.parent().unwrap()).unwrap();
        Store::default().save(&db, &v2_path).unwrap();
        let v2 = load_snapshot(&v2_path).unwrap();
        assert_eq!(v2.generation, 0);
        assert_eq!(v2.shards, 1);
        assert_eq!(v2.database.labels(), db.labels());

        // v3: a sharded directory.
        let dir = temp_dir("snap_v3");
        let mut store = ShardedDatabase::from_database(&db, &dir, 3).unwrap();
        store.flush().unwrap();
        let v3 = load_snapshot(&dir).unwrap();
        assert_eq!(v3.generation, 1);
        assert_eq!(v3.shards, 3);
        assert_eq!(v3.database.labels(), db.labels());
        for i in 0..db.len() {
            assert_eq!(v3.database.bag(i).unwrap(), db.bag(i).unwrap());
        }

        std::fs::remove_file(&v2_path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn push_image_preprocesses_into_the_tail() {
        let config = RetrievalConfig {
            threads: 1,
            ..RetrievalConfig::default()
        };
        let image = GrayImage::from_fn(64, 48, |x, y| ((x * 7 + y * 13) % 223) as f32).unwrap();
        let probe = milr_core::features::image_to_bag(&image, &config).unwrap();
        let mut store = ShardedDatabase::create(temp_dir("img"), probe.dim(), 4).unwrap();
        let index = store.push_image(&image, 2, &config).unwrap();
        assert_eq!(index, 0);
        assert_eq!(store.label(0).unwrap(), 2);
        // A blank image fails with the would-be index.
        let flat = GrayImage::filled(64, 48, 3.0).unwrap();
        match store.push_image(&flat, 0, &config) {
            Err(CoreError::BlankImage { index: Some(1) }) => {}
            other => panic!("expected BlankImage at 1, got {other:?}"),
        }
    }

    #[test]
    fn screened_rank_is_bit_identical_to_exact_rank() {
        let db = sample_db(30);
        let concept = sample_concept();
        let mut store = ShardedDatabase::from_database(&db, temp_dir("screened"), 5).unwrap();
        store.delete(3).unwrap();
        store.delete(17).unwrap();
        for k in [0, 1, 2, 5, 13, 30, 50] {
            let request = RankRequest::all().top(k);
            assert_eq!(
                store.rank(&concept, &request).unwrap(),
                store.rank_exact(&concept, &request).unwrap(),
                "k {k}"
            );
        }
        assert_eq!(
            store.rank(&concept, &RankRequest::all()).unwrap(),
            store.rank_exact(&concept, &RankRequest::all()).unwrap()
        );
    }

    #[test]
    fn shared_bound_is_an_exact_fetch_min() {
        let bound = SharedBound::new();
        assert_eq!(bound.get(), f64::INFINITY);
        assert!(bound.tighten(2.5));
        assert_eq!(bound.get(), 2.5);
        assert!(!bound.tighten(3.0), "looser values must not tighten");
        assert_eq!(bound.get(), 2.5);
        assert!(bound.tighten(0.0));
        assert_eq!(bound.get(), 0.0);
        assert!(!bound.tighten(0.0), "equal values are not a tightening");
    }

    /// Writes `store`'s current state in the legacy v3 format: the same
    /// manifest payload under a v3 header, and shard files without the
    /// quantized-tier section.
    fn write_v3_store(dir: &Path, store: &ShardedDatabase) {
        std::fs::create_dir_all(dir).unwrap();
        let mut digests = Vec::new();
        for shard in &store.shards {
            let path = dir.join(shard_file_name(shard.id));
            let file = OsFs.writer(&path).unwrap();
            let mut w = Stream::new(BufWriter::new(file), &path);
            w.write_header(SHARD_KIND, MIN_STORE_VERSION).unwrap();
            w.write_u64(shard.id).unwrap();
            w.write_u64(shard.bags.dim() as u64).unwrap();
            w.write_u64(shard.len() as u64).unwrap();
            for local in 0..shard.len() {
                w.write_u64(shard.labels[local] as u64).unwrap();
                w.write_u64(shard.bags.span(local).len as u64).unwrap();
                for &v in shard.bags.bag_instances(local) {
                    w.write_all(&v.to_le_bytes()).unwrap();
                }
            }
            digests.push(w.digest());
            w.finish().unwrap();
        }
        let path = dir.join(MANIFEST_FILE);
        let file = OsFs.writer(&path).unwrap();
        let mut w = Stream::new(BufWriter::new(file), &path);
        w.write_header(MANIFEST_KIND, MIN_STORE_VERSION).unwrap();
        w.write_u64(store.feature_dim as u64).unwrap();
        w.write_u64(store.generation.max(1)).unwrap();
        w.write_u64(store.shard_capacity as u64).unwrap();
        w.write_u64(store.shards.len() as u64).unwrap();
        for (shard, digest) in store.shards.iter().zip(&digests) {
            w.write_u64(shard.id).unwrap();
            w.write_u64(shard.len() as u64).unwrap();
            w.write_u64(shard.bags.instance_count() as u64).unwrap();
            w.write_u64(*digest).unwrap();
        }
        w.write_u64(store.tombstones.len() as u64).unwrap();
        for &index in &store.tombstones {
            w.write_u64(index as u64).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn v3_snapshots_still_open_and_quantize_lazily() {
        let db = sample_db(13);
        let concept = sample_concept();
        let v4_dir = temp_dir("v3compat_v4");
        let mut v4 = ShardedDatabase::from_database(&db, &v4_dir, 4).unwrap();
        v4.delete(6).unwrap();
        v4.flush().unwrap();

        let v3_dir = temp_dir("v3compat_v3");
        write_v3_store(&v3_dir, &v4);
        let rebuilds_before = milr_obs::global()
            .counter("milr_store_index_rebuilds_total")
            .get();
        let opened = ShardedDatabase::open(&v3_dir).unwrap();
        assert_eq!(opened.len(), v4.len());
        assert_eq!(opened.tombstone_count(), 1);
        // Every pre-v5 shard rebuilds its coarse index at load and says
        // so (`>=` because the counter is process-global and other
        // tests may open pre-v5 stores concurrently).
        let rebuilds = milr_obs::global()
            .counter("milr_store_index_rebuilds_total")
            .get()
            - rebuilds_before;
        assert!(
            rebuilds >= opened.shard_count() as u64,
            "expected >= {} index rebuilds, saw {rebuilds}",
            opened.shard_count()
        );
        // The lazily rebuilt tier matches the persisted one byte for
        // byte (quantization is deterministic)…
        for (a, b) in opened.shards.iter().zip(&v4.shards) {
            assert_eq!(a.bags.quant_codes(), b.bags.quant_codes());
            assert_eq!(a.bags.quant_params(), b.bags.quant_params());
            // …and so does the lazily rebuilt coarse index (k-means
            // seeding and iteration order are fully deterministic).
            assert_eq!(
                a.bags.index().unwrap().centroids(),
                b.bags.index().unwrap().centroids()
            );
            assert_eq!(
                a.bags.index().unwrap().assignments(),
                b.bags.index().unwrap().assignments()
            );
        }
        // …so screened rankings agree across formats, bit for bit.
        for k in [1, 4, 13] {
            let request = RankRequest::all().top(k);
            assert_eq!(
                opened.rank(&concept, &request).unwrap(),
                v4.rank(&concept, &request).unwrap(),
                "k {k}"
            );
        }
    }

    #[test]
    fn incremental_flush_leaves_sealed_v3_shards_untouched() {
        // A v3-era directory that gains bags: the sealed v3 shard files
        // stay as they are (mixed-version directory), only the tail and
        // manifest move to v4 — and the mix reopens cleanly.
        let db = sample_db(7);
        let v4_dir = temp_dir("mixed_src");
        let mut seed = ShardedDatabase::from_database(&db, &v4_dir, 3).unwrap();
        seed.flush().unwrap();
        let dir = temp_dir("mixed");
        write_v3_store(&dir, &seed);

        let mut store = ShardedDatabase::open(&dir).unwrap();
        let sealed_path = dir.join(shard_file_name(0));
        let sealed_before = std::fs::read(&sealed_path).unwrap();
        store.push_bag(db.bag(0).unwrap().clone(), 0).unwrap();
        store.flush().unwrap();
        assert_eq!(
            sealed_before,
            std::fs::read(&sealed_path).unwrap(),
            "sealed v3 shards must not be rewritten"
        );
        // The rewritten tail is v4 now (version lives at bytes 4..8).
        let tail = std::fs::read(dir.join(shard_file_name(2))).unwrap();
        assert_eq!(
            u32::from_le_bytes([tail[4], tail[5], tail[6], tail[7]]),
            STORE_VERSION
        );
        let back = ShardedDatabase::open(&dir).unwrap();
        assert_eq!(back.len(), 8);
        // Compact + flush migrates everything to v4.
        let mut migrated = back.clone();
        migrated.compact();
        migrated.flush().unwrap();
        for shard in &migrated.shards {
            let bytes = std::fs::read(dir.join(shard_file_name(shard.id))).unwrap();
            assert_eq!(
                u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
                STORE_VERSION
            );
        }
        ShardedDatabase::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&v4_dir).ok();
    }

    /// On-disk length of a shard's v5 coarse-index section (flag + cell
    /// count + centroids + radii + assignments).
    fn index_section_len(shard: &Shard) -> usize {
        let index = shard.bags.index().expect("persisted shards carry an index");
        8 + 8
            + index.centroids().len() * 4
            + index.radii().len() * 8
            + index.assignments().len() * 4
    }

    #[test]
    fn corrupt_quantized_tier_is_rejected() {
        // Flip bits inside the v4 quantized-tier section specifically:
        // the shard checksum must catch every one.
        let dir = temp_dir("corrupt_tier");
        let db = sample_db(4);
        let mut store = ShardedDatabase::from_database(&db, &dir, 4).unwrap();
        store.flush().unwrap();
        let shard_path = dir.join(shard_file_name(0));
        let clean = std::fs::read(&shard_path).unwrap();
        let shard = &store.shards[0];
        // The tier section spans from the flag to the end of the codes,
        // followed by the coarse-index section and the trailing 8-byte
        // checksum.
        let tier_len = 8 + shard.bags.quant_params().len() * 16 + shard.bags.quant_codes().len();
        let tier_start = clean.len() - 8 - index_section_len(shard) - tier_len;
        for offset in (tier_start..tier_start + tier_len).step_by(3) {
            let mut bytes = clean.clone();
            bytes[offset] ^= 0x40;
            std::fs::write(&shard_path, &bytes).unwrap();
            assert!(
                ShardedDatabase::open(&dir).is_err(),
                "tier corruption at byte {offset} loaded silently"
            );
        }
        std::fs::write(&shard_path, &clean).unwrap();
        ShardedDatabase::open(&dir).expect("restored store opens again");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_index_section_is_rejected() {
        // Same sweep over the v5 coarse-index section: every flipped
        // byte must surface as a storage error (the trailing checksum
        // covers the section), never a panic or a silent load.
        let dir = temp_dir("corrupt_index");
        let db = sample_db(4);
        let mut store = ShardedDatabase::from_database(&db, &dir, 4).unwrap();
        store.flush().unwrap();
        let shard_path = dir.join(shard_file_name(0));
        let clean = std::fs::read(&shard_path).unwrap();
        let index_len = index_section_len(&store.shards[0]);
        let index_start = clean.len() - 8 - index_len;
        for offset in index_start..clean.len() - 8 {
            let mut bytes = clean.clone();
            bytes[offset] ^= 0x40;
            std::fs::write(&shard_path, &bytes).unwrap();
            let err = ShardedDatabase::open(&dir).unwrap_err();
            assert!(
                matches!(err, CoreError::Storage { .. }),
                "index corruption at byte {offset}: expected Storage, got {err:?}"
            );
        }
        std::fs::write(&shard_path, &clean).unwrap();
        ShardedDatabase::open(&dir).expect("restored store opens again");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn indexed_rank_is_bit_identical_to_unindexed_rank() {
        let db = sample_db(30);
        let concept = sample_concept();
        let mut store = ShardedDatabase::from_database(&db, temp_dir("indexed"), 5).unwrap();
        store.delete(3).unwrap();
        store.delete(17).unwrap();
        store.flush().unwrap(); // every shard carries an index now
        for cells in [1, 2, 4, 16] {
            store.rebuild_indexes(cells);
            for k in [0, 1, 2, 5, 13, 30, 50] {
                let request = RankRequest::all().top(k);
                let indexed = store.rank(&concept, &request).unwrap();
                let unindexed = store.rank(&concept, &request.clone().index(false)).unwrap();
                let exact = store.rank_exact(&concept, &request).unwrap();
                assert_eq!(indexed, unindexed, "cells {cells}, k {k}");
                assert_eq!(indexed, exact, "cells {cells}, k {k}");
            }
        }
    }

    #[test]
    fn sealing_builds_the_index_and_pushes_invalidate_it() {
        let db = sample_db(7);
        let mut store = ShardedDatabase::create(temp_dir("seal_index"), 4, 3).unwrap();
        for i in 0..db.len() {
            store
                .push_bag(db.bag(i).unwrap().clone(), db.label(i).unwrap())
                .unwrap();
        }
        // 7 bags at capacity 3: two sealed shards (indexed at seal) and
        // an open tail (unindexed until flush or seal).
        assert!(store.shards[0].bags.index().is_some());
        assert!(store.shards[1].bags.index().is_some());
        assert!(store.shards[2].bags.index().is_none());
        store.flush().unwrap();
        assert!(
            store.shards[2].bags.index().is_some(),
            "flush ensures an index on the persisted tail"
        );
        store.push_bag(db.bag(0).unwrap().clone(), 0).unwrap();
        assert!(
            store.shards[2].bags.index().is_none(),
            "appending to the tail invalidates its index"
        );
    }

    #[test]
    fn merge_rankings_is_an_ordered_merge() {
        let merged = merge_rankings(
            vec![
                vec![(0, 0.5), (3, 2.0)],
                vec![(1, 0.5), (2, 1.0)],
                Vec::new(),
            ],
            None,
        );
        // Equal distances break by index: 0 before 1.
        assert_eq!(merged, vec![(0, 0.5), (1, 0.5), (2, 1.0), (3, 2.0)]);
        let truncated = merge_rankings(vec![vec![(0, 0.5)], vec![(1, 0.25)]], Some(1));
        assert_eq!(truncated, vec![(1, 0.25)]);
    }
}
