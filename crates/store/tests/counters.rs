//! Regression pins for the coarse-index observability counters:
//! `milr_rank_index_fallbacks_total` fires exactly once per unindexed
//! shard scan in a bounded ranking, and the cell skip/scan tallies
//! actually move on data where skipping is provably possible.
//!
//! These live in their own integration binary so no unrelated test
//! bumps the same process-global counters concurrently and the deltas
//! stay exact.

use milr_core::{RankRequest, RetrievalDatabase};
use milr_mil::{Bag, BagAggregator, Concept};
use milr_store::ShardedDatabase;
use milr_synth::corpus;

fn counter(name: &str) -> u64 {
    milr_obs::global().counter(name).get()
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("milr_counter_tests")
        .join(format!("{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn unindexed_tail_scans_are_counted_as_fallbacks() {
    let bags: Vec<Bag> = corpus::lattice_bags(10, 4)
        .into_iter()
        .map(|instances| Bag::new(instances).unwrap())
        .collect();
    let db = RetrievalDatabase::from_bags(bags, corpus::lattice_labels(10)).unwrap();
    let dir = scratch("fallbacks");
    let mut store = ShardedDatabase::from_database(&db, &dir, 4).unwrap();
    // 10 bags at capacity 4: two sealed shards (indexed at seal) plus
    // an open in-memory tail of 2 with no index yet.
    assert!(store.shard_index(0).is_some());
    assert!(store.shard_index(1).is_some());
    assert!(store.shard_index(2).is_none());
    let concept = Concept::new(vec![1.0, 2.5, 0.5, 3.0], vec![1.0, 0.5, 2.0, 0.25]);

    let before = counter("milr_rank_index_fallbacks_total");
    for _ in 0..3 {
        store.rank(&concept, &RankRequest::all().top(2)).unwrap();
    }
    assert_eq!(
        counter("milr_rank_index_fallbacks_total") - before,
        3,
        "exactly one fallback per bounded scan of the unindexed tail"
    );

    // Full rankings and k = 0 never consult the index, and an explicit
    // opt-out is not a fallback either.
    store.rank(&concept, &RankRequest::all()).unwrap();
    store.rank(&concept, &RankRequest::all().top(0)).unwrap();
    store
        .rank(&concept, &RankRequest::all().top(2).index(false))
        .unwrap();
    assert_eq!(counter("milr_rank_index_fallbacks_total") - before, 3);

    // Flushing seals an index onto the tail: no more fallbacks.
    store.flush().unwrap();
    assert!(store.shard_index(2).is_some());
    store.rank(&concept, &RankRequest::all().top(2)).unwrap();
    assert_eq!(counter("milr_rank_index_fallbacks_total") - before, 3);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn non_min_aggregators_pin_the_fallback_counters() {
    // The pinned-counter contract (see `rank_one_shard`): a non-min
    // aggregator takes the exact fold, so the i8 screen never fires
    // (`quant_screened == 0`), no shard ever publishes a tightened
    // bound, and a *bounded* scan that asked for the index counts one
    // fallback per sealed-or-not shard — the counters are how operators
    // see that a workload opted out of the provable pruning tiers.
    let bags: Vec<Bag> = corpus::lattice_bags(12, 4)
        .into_iter()
        .map(|instances| Bag::new(instances).unwrap())
        .collect();
    let db = RetrievalDatabase::from_bags(bags, corpus::lattice_labels(12)).unwrap();
    let dir = scratch("non_min_pins");
    let mut store = ShardedDatabase::from_database(&db, &dir, 4).unwrap();
    store.flush().unwrap();
    let shards = 3; // 12 bags at capacity 4, all sealed and indexed.
    assert!(store.shard_index(shards - 1).is_some());
    let concept = Concept::new(vec![1.0, 2.5, 0.5, 3.0], vec![1.0, 0.5, 2.0, 0.25]);

    for aggregator in BagAggregator::ALL.into_iter().filter(|a| !a.is_min()) {
        let screened_before = counter("milr_rank_quant_screened_total");
        let tightened_before = counter("milr_rank_threshold_tightenings_total");
        let fallbacks_before = counter("milr_rank_index_fallbacks_total");

        let bounded = RankRequest::all().top(2).aggregator(aggregator);
        let paged = store.rank(&concept, &bounded).unwrap();
        assert_eq!(
            counter("milr_rank_index_fallbacks_total") - fallbacks_before,
            shards as u64,
            "{aggregator}: one fallback per shard on a bounded indexed scan"
        );

        // Unbounded scans and explicit index opt-outs are not fallbacks
        // even under the exact fold — same rule as min-distance.
        let full = store
            .rank(&concept, &RankRequest::all().aggregator(aggregator))
            .unwrap();
        store.rank(&concept, &bounded.clone().index(false)).unwrap();
        assert_eq!(
            counter("milr_rank_index_fallbacks_total") - fallbacks_before,
            shards as u64,
            "{aggregator}: only the bounded indexed scan falls back"
        );

        assert_eq!(
            counter("milr_rank_quant_screened_total") - screened_before,
            0,
            "{aggregator}: the i8 screen must never fire on the exact fold"
        );
        assert_eq!(
            counter("milr_rank_threshold_tightenings_total") - tightened_before,
            0,
            "{aggregator}: the exact fold never publishes bounds"
        );
        assert_eq!(paged[..], full[..2], "{aggregator}: page is a prefix");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cell_skips_fire_on_clustered_data_without_changing_the_ranking() {
    // One sealed shard, 16 single-instance bags: bag 0 sits exactly on
    // the query, the rest far away. The top-1 bound collapses to ~0
    // after the first bag, so every far cell is provably skippable.
    let bags: Vec<Bag> = (0..16)
        .map(|i| {
            let offset = if i == 0 { 0.0f32 } else { 500.0 + i as f32 };
            Bag::new(vec![vec![offset, offset + 1.0, offset + 2.0, offset + 3.0]]).unwrap()
        })
        .collect();
    let db = RetrievalDatabase::from_bags(bags, vec![0; 16]).unwrap();
    let dir = scratch("skips");
    let store = ShardedDatabase::from_database(&db, &dir, 16).unwrap();
    assert!(store.shard_index(0).is_some(), "shard seals at capacity");
    let concept = Concept::new(vec![0.0, 1.0, 2.0, 3.0], vec![1.0; 4]);

    let scanned_before = counter("milr_rank_cells_scanned_total");
    let skipped_before = counter("milr_rank_cells_skipped_total");
    let request = RankRequest::all().top(1);
    let indexed = store.rank(&concept, &request).unwrap();
    let scanned = counter("milr_rank_cells_scanned_total") - scanned_before;
    let skipped = counter("milr_rank_cells_skipped_total") - skipped_before;
    assert!(scanned >= 1, "the winning bag's cell is always scanned");
    assert!(skipped >= 1, "far cells must be skipped, got {skipped}");

    let unindexed = store.rank(&concept, &request.clone().index(false)).unwrap();
    let exact = store.rank_exact(&concept, &request).unwrap();
    assert_eq!(indexed, unindexed, "skipping must not change the ranking");
    assert_eq!(indexed, exact);
    assert_eq!(indexed[0].0, 0, "bag 0 sits on the query point");

    std::fs::remove_dir_all(&dir).ok();
}
