//! Property and regression tests of the sharded store's core contract:
//! scatter-gather ranking over any shard layout is bit-identical to the
//! monolithic ranking, and both snapshot formats round-trip.

use proptest::prelude::*;

use milr_core::storage::Store;
use milr_core::{RankRequest, RetrievalDatabase};
use milr_mil::{Bag, Concept};
use milr_store::{load_snapshot, ShardedDatabase};
use milr_synth::corpus;

const DIM: usize = 5;

/// Strategy: a database of 1..=40 bags, each with 1..=4 instances of
/// dimension [`DIM`], labels over three categories.
fn db_strategy() -> impl Strategy<Value = RetrievalDatabase> {
    proptest::collection::vec(
        (
            proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, DIM), 1..5),
            0usize..3,
        ),
        1..41,
    )
    .prop_map(|raw| {
        let mut bags = Vec::with_capacity(raw.len());
        let mut labels = Vec::with_capacity(raw.len());
        for (instances, label) in raw {
            bags.push(Bag::new(instances).unwrap());
            labels.push(label);
        }
        RetrievalDatabase::from_bags(bags, labels).unwrap()
    })
}

/// Strategy: a concept point and strictly positive weights.
fn concept_strategy() -> impl Strategy<Value = Concept> {
    (
        proptest::collection::vec(-10.0f64..10.0, DIM),
        proptest::collection::vec(0.05f64..3.0, DIM),
    )
        .prop_map(|(point, weights)| Concept::new(point, weights))
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("milr_store_proptests")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// THE contract: for any bag distribution across 1..=8 shards, the
    /// scatter-gather top-k ranking is bit-identical — index for index,
    /// bit for bit on every distance — to the monolithic ranking.
    #[test]
    fn scatter_gather_is_bit_identical_to_monolithic(
        db in db_strategy(),
        concept in concept_strategy(),
        shards in 1usize..9,
        k in 0usize..12,
    ) {
        // Capacity chosen so the bags spread over (up to) `shards`
        // shards — fewer when the database is small.
        let capacity = db.len().div_ceil(shards);
        let store =
            ShardedDatabase::from_database(&db, scratch_dir("prop"), capacity).unwrap();
        prop_assert!(store.shard_count() <= shards);

        let full = db.rank(&concept, &RankRequest::all()).unwrap();
        let sharded_full = store.rank(&concept, &RankRequest::all()).unwrap();
        prop_assert_eq!(&sharded_full, &full);
        for (a, b) in sharded_full.iter().zip(&full) {
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }

        let top = store.rank(&concept, &RankRequest::all().top(k)).unwrap();
        prop_assert_eq!(&top[..], &full[..k.min(full.len())]);

        // The exact (unscreened) path must agree with the screened one
        // on every request shape.
        let exact_full = store.rank_exact(&concept, &RankRequest::all()).unwrap();
        prop_assert_eq!(&exact_full, &full);
        let exact_top = store.rank_exact(&concept, &RankRequest::all().top(k)).unwrap();
        prop_assert_eq!(&exact_top[..], &top[..]);
    }

    /// Tombstoning any subset leaves the sharded ranking identical to
    /// the monolithic ranking restricted to the surviving candidates.
    #[test]
    fn tombstoned_rank_matches_restricted_monolithic(
        db in db_strategy(),
        concept in concept_strategy(),
        shards in 1usize..9,
        seed in 0u64..1000,
    ) {
        let capacity = db.len().div_ceil(shards);
        let mut store =
            ShardedDatabase::from_database(&db, scratch_dir("tomb"), capacity).unwrap();
        // Deterministic pseudo-random subset, never everything.
        let mut live = Vec::new();
        for i in 0..db.len() {
            if corpus::tombstone_pattern(i, seed, 3) && live.len() + 1 < db.len() {
                store.delete(i).unwrap();
            } else {
                live.push(i);
            }
        }
        let sharded = store.rank(&concept, &RankRequest::all()).unwrap();
        let monolithic = db.rank(&concept, &RankRequest::over(live)).unwrap();
        prop_assert_eq!(&sharded, &monolithic);
        let exact = store.rank_exact(&concept, &RankRequest::all()).unwrap();
        prop_assert_eq!(&exact, &monolithic);
    }

    /// The quantized-screened scatter ranking is bit-identical to a
    /// naive serial scan — min instance distance per bag, sorted by
    /// `(distance, index)` — across random shard layouts, tombstones,
    /// every k, and a flush/reopen of the persisted quantized tier.
    #[test]
    fn screened_rank_is_bit_identical_to_naive_scan(
        db in db_strategy(),
        concept in concept_strategy(),
        shards in 1usize..9,
        k in 0usize..12,
        seed in 0u64..1000,
    ) {
        let dir = scratch_dir("naive");
        let capacity = db.len().div_ceil(shards);
        let mut store = ShardedDatabase::from_database(&db, &dir, capacity).unwrap();
        let mut live = Vec::new();
        for i in 0..db.len() {
            if corpus::tombstone_pattern(i, seed, 4) && live.len() + 1 < db.len() {
                store.delete(i).unwrap();
            } else {
                live.push(i);
            }
        }

        // The reference nobody can argue with: a serial fold over the
        // canonical instance kernel, then a lexicographic sort.
        let mut naive: Vec<(usize, f64)> = live
            .iter()
            .map(|&i| {
                let bag = db.bag(i).unwrap();
                let d = bag
                    .instances()
                    .map(|inst| concept.instance_distance_sq(inst))
                    .fold(f64::INFINITY, f64::min)
;
                (i, d)
            })
            .collect();
        naive.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

        for request in [RankRequest::all(), RankRequest::all().top(k)] {
            let want = &naive[..request.top_k.map_or(naive.len(), |k| k.min(naive.len()))];
            let got = store.rank(&concept, &request).unwrap();
            prop_assert_eq!(&got[..], want);
            for (a, b) in got.iter().zip(want) {
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }

        // Round-trip: the persisted quantized tier must screen the same.
        store.flush().unwrap();
        let reopened = ShardedDatabase::open(&dir).unwrap();
        let got = reopened.rank(&concept, &RankRequest::all().top(k)).unwrap();
        prop_assert_eq!(&got[..], &naive[..k.min(naive.len())]);

        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn v2_snapshot_still_loads() {
    // Back-compat: a monolithic v2 file written through the redesigned
    // `Store` front door loads via `load_snapshot` with generation 0.
    let bags: Vec<Bag> = (0..9)
        .map(|n| Bag::new(vec![vec![n as f32, 1.0, 2.0, 3.0, 4.0]]).unwrap())
        .collect();
    let db = RetrievalDatabase::from_bags(bags, (0..9).map(|n| n % 2).collect()).unwrap();
    let path = scratch_dir("v2").join("db.milr");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    Store::default().save(&db, &path).unwrap();

    let snapshot = load_snapshot(&path).unwrap();
    assert_eq!(snapshot.generation, 0);
    assert_eq!(snapshot.shards, 1);
    assert_eq!(snapshot.database.labels(), db.labels());
    for i in 0..db.len() {
        assert_eq!(snapshot.database.bag(i).unwrap(), db.bag(i).unwrap());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn v2_to_v3_migration_preserves_rankings() {
    // The `milr compact` migration path in library form: load a v2
    // file, shard it, flush, reopen — rankings must match bit for bit.
    let bags: Vec<Bag> = (0..17)
        .map(|n| {
            Bag::new(
                (0..=(n % 2))
                    .map(|m| {
                        (0..DIM)
                            .map(|i| ((n * 13 + m * 5 + i) % 11) as f32)
                            .collect()
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect();
    let db = RetrievalDatabase::from_bags(bags, (0..17).map(|n| n % 3).collect()).unwrap();
    let concept = Concept::new(vec![2.0; DIM], vec![0.5, 1.0, 1.5, 0.75, 0.25]);

    let v2_path = scratch_dir("migrate_v2").join("db.milr");
    std::fs::create_dir_all(v2_path.parent().unwrap()).unwrap();
    Store::default().save(&db, &v2_path).unwrap();

    let v3_dir = scratch_dir("migrate_v3");
    let loaded = load_snapshot(&v2_path).unwrap();
    let mut store = ShardedDatabase::from_database(&loaded.database, &v3_dir, 4).unwrap();
    store.flush().unwrap();
    assert!(store.shard_count() >= 4, "migration must actually shard");

    let reopened = ShardedDatabase::open(&v3_dir).unwrap();
    let expected = db.rank(&concept, &RankRequest::all()).unwrap();
    assert_eq!(
        reopened.rank(&concept, &RankRequest::all()).unwrap(),
        expected
    );
    assert_eq!(
        reopened.rank(&concept, &RankRequest::all().top(5)).unwrap(),
        expected[..5]
    );

    std::fs::remove_file(&v2_path).ok();
    std::fs::remove_dir_all(&v3_dir).ok();
}

#[test]
fn k_beyond_live_count_returns_exactly_the_live_set() {
    // Edge case: `k` far larger than the post-tombstone bag count must
    // return every live bag — once in ranked order, no padding, no
    // tombstoned stragglers — through the indexed, quantized-only, and
    // exact paths alike.
    let bags: Vec<Bag> = corpus::lattice_bags(23, DIM)
        .into_iter()
        .map(|instances| Bag::new(instances).unwrap())
        .collect();
    let db = RetrievalDatabase::from_bags(bags, corpus::lattice_labels(23)).unwrap();
    let concept = Concept::new(vec![2.0; DIM], vec![0.5, 1.0, 1.5, 0.75, 0.25]);

    let dir = scratch_dir("k_beyond");
    let mut store = ShardedDatabase::from_database(&db, &dir, 4).unwrap();
    let mut live = Vec::new();
    for i in 0..db.len() {
        if corpus::tombstone_pattern(i, 11, 3) && live.len() + 1 < db.len() {
            store.delete(i).unwrap();
        } else {
            live.push(i);
        }
    }
    assert!(
        live.len() < db.len(),
        "the pattern must tombstone something"
    );
    // Seal every shard so the coarse index is actually in play.
    store.flush().unwrap();

    let expected = db.rank(&concept, &RankRequest::over(live.clone())).unwrap();
    for k in [live.len(), live.len() + 1, db.len(), 10 * db.len()] {
        let request = RankRequest::all().top(k);
        let indexed = store.rank(&concept, &request).unwrap();
        assert_eq!(indexed.len(), live.len(), "k = {k}");
        assert_eq!(indexed, expected, "k = {k}");
        let unindexed = store.rank(&concept, &request.clone().index(false)).unwrap();
        assert_eq!(unindexed, expected, "k = {k}");
        let exact = store.rank_exact(&concept, &request).unwrap();
        assert_eq!(exact, expected, "k = {k}");
    }

    std::fs::remove_dir_all(&dir).ok();
}
