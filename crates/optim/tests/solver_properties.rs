//! Property-based tests of the solvers on random convex quadratics:
//! descent, convergence to the analytic optimum, and agreement across
//! methods.

use milr_optim::{
    conjugate_gradient, gradient_descent, lbfgs, penalty_method, projected_gradient,
    BoxSumProjection, ConjugateGradientOptions, GradientDescentOptions, LbfgsOptions, Objective,
    PenaltyOptions, ProjectedGradientOptions, SubsliceProjection,
};
use proptest::prelude::*;

/// `½ Σ sᵢ (xᵢ − cᵢ)²` — strictly convex when every `sᵢ > 0`.
#[derive(Debug)]
struct Quadratic {
    center: Vec<f64>,
    scales: Vec<f64>,
}

impl Objective for Quadratic {
    fn dim(&self) -> usize {
        self.center.len()
    }
    fn value(&self, x: &[f64]) -> f64 {
        x.iter()
            .zip(&self.center)
            .zip(&self.scales)
            .map(|((&xi, &ci), &si)| 0.5 * si * (xi - ci) * (xi - ci))
            .sum()
    }
    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        for ((g, (&xi, &ci)), &si) in grad
            .iter_mut()
            .zip(x.iter().zip(&self.center))
            .zip(&self.scales)
        {
            *g = si * (xi - ci);
        }
    }
}

fn quadratic(n: usize) -> impl Strategy<Value = Quadratic> {
    (
        proptest::collection::vec(-5.0f64..5.0, n),
        proptest::collection::vec(0.1f64..20.0, n),
    )
        .prop_map(|(center, scales)| Quadratic { center, scales })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All three unconstrained solvers find the analytic minimum of a
    /// random convex quadratic.
    #[test]
    fn unconstrained_solvers_reach_the_analytic_optimum(
        q in quadratic(5),
        x0 in proptest::collection::vec(-5.0f64..5.0, 5),
    ) {
        let lb = lbfgs(&q, &x0, &LbfgsOptions::default());
        let cg = conjugate_gradient(&q, &x0, &ConjugateGradientOptions::default());
        let gd = gradient_descent(
            &q,
            &x0,
            &GradientDescentOptions {
                max_iterations: 5000,
                value_tolerance: 1e-14,
                ..Default::default()
            },
        );
        for sol in [&lb, &cg, &gd] {
            for (xi, ci) in sol.x.iter().zip(&q.center) {
                prop_assert!((xi - ci).abs() < 1e-2, "{:?} vs {:?}", sol.x, q.center);
            }
        }
    }

    /// Solver outputs never exceed the starting value (descent methods
    /// descend).
    #[test]
    fn solvers_never_increase_the_objective(
        q in quadratic(4),
        x0 in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        let f0 = q.value(&x0);
        let lb = lbfgs(&q, &x0, &LbfgsOptions::default());
        prop_assert!(lb.value <= f0 + 1e-12);
        let cg = conjugate_gradient(&q, &x0, &ConjugateGradientOptions::default());
        prop_assert!(cg.value <= f0 + 1e-12);
    }

    /// Projected gradient returns a feasible point whose objective is no
    /// worse than the best feasible corner of a sampled grid.
    #[test]
    fn projected_gradient_is_feasible_and_competitive(
        q in quadratic(3),
        beta in 0.1f64..0.9,
    ) {
        let constraint = BoxSumProjection::for_beta(3, beta);
        let projection = SubsliceProjection {
            start: 0,
            end: 3,
            inner: constraint,
        };
        let sol = projected_gradient(
            &q,
            &projection,
            &[0.5; 3],
            &ProjectedGradientOptions {
                max_iterations: 3000,
                step_tolerance: 1e-9,
                ..Default::default()
            },
        );
        prop_assert!(constraint.is_feasible(&sol.x, 1e-6), "infeasible: {:?}", sol.x);
        // Sample feasible grid points; none may beat the solver by a
        // visible margin.
        let steps = 8;
        for i in 0..=steps {
            for j in 0..=steps {
                for k in 0..=steps {
                    let cand = [
                        i as f64 / steps as f64,
                        j as f64 / steps as f64,
                        k as f64 / steps as f64,
                    ];
                    if constraint.is_feasible(&cand, 0.0) {
                        prop_assert!(
                            q.value(&cand) >= sol.value - 1e-6,
                            "grid point {cand:?} beats the solver ({} < {})",
                            q.value(&cand),
                            sol.value
                        );
                    }
                }
            }
        }
    }

    /// The penalty method lands on (essentially) the same constrained
    /// optimum as projected gradient.
    #[test]
    fn penalty_agrees_with_projected_gradient(
        q in quadratic(3),
        beta in 0.2f64..0.9,
    ) {
        let constraint = BoxSumProjection::for_beta(3, beta);
        let pg = projected_gradient(
            &q,
            &SubsliceProjection {
                start: 0,
                end: 3,
                inner: constraint,
            },
            &[0.5; 3],
            &ProjectedGradientOptions {
                max_iterations: 5000,
                step_tolerance: 1e-10,
                value_tolerance: 0.0,
                ..Default::default()
            },
        );
        let pen = penalty_method(&q, constraint, 0, 3, &[0.5; 3], &PenaltyOptions::default());
        prop_assert!(
            (pg.value - pen.value).abs() < 1e-2,
            "projected {} vs penalty {}",
            pg.value,
            pen.value
        );
    }
}
