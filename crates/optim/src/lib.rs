#![warn(missing_docs)]

//! # milr-optim
//!
//! Optimisation substrate for the Diverse Density trainer.
//!
//! The paper maximises Diverse Density by minimising `−log DD`:
//!
//! * unconstrained, with plain gradient descent multi-started from every
//!   positive instance (original DD, §2.2.2) — [`gradient_descent()`] and
//!   [`lbfgs()`] provide that path (L-BFGS as the faster default,
//!   steepest-descent kept as the reference implementation);
//! * under the §3.6.3 inequality constraint `0 ≤ w_k ≤ 1`,
//!   `Σ w_k ≥ β·h²`. The paper used the proprietary CFSQP package; this
//!   crate substitutes a projected-gradient method ([`projected_gradient()`])
//!   with an **exact** Euclidean projection onto the box ∩ half-space
//!   feasible set ([`projection`]), which converges to the same KKT
//!   points for this smooth problem.
//!
//! Two further solvers exist for ablations: [`conjugate_gradient()`]
//! (Polak–Ribière+, a third unconstrained method) and
//! [`penalty_method()`] (sequential quadratic penalties, a second
//! constrained method) — both are cross-checked against the defaults in
//! tests so that no paper-level conclusion depends on the choice of
//! minimiser.
//!
//! [`multistart()`] runs many starts in parallel over the [`pool`]
//! scoped-thread workers (also used by `milr-core` for ranking and
//! preprocessing fan-out), and [`numdiff`] provides central-difference
//! gradients used by the test suites (here and in `milr-mil`) to
//! validate analytic gradients.

pub mod conjugate_gradient;
pub mod gradient_descent;
pub mod lbfgs;
pub mod line_search;
pub mod multistart;
pub mod numdiff;
pub mod penalty;
pub mod pool;
pub mod problem;
pub mod projected_gradient;
pub mod projection;

pub use conjugate_gradient::{conjugate_gradient, ConjugateGradientOptions};
pub use gradient_descent::{gradient_descent, GradientDescentOptions};
pub use lbfgs::{lbfgs, LbfgsOptions};
pub use line_search::{armijo_search, ArmijoOptions, LineSearchError};
pub use multistart::{multistart, MultistartReport};
pub use penalty::{penalty_method, PenaltyOptions};
pub use problem::{Objective, Solution, Termination};
pub use projected_gradient::{projected_gradient, ProjectedGradientOptions};
pub use projection::{BoxSumProjection, IdentityProjection, Project, SubsliceProjection};
