//! The [`Objective`] trait and solver result types.
//!
//! All solvers in this crate *minimise*; the Diverse Density trainer
//! maximises DD by minimising `−log DD` (paper §3.6.3 footnote: "we
//! maximize DD by minimizing −log(DD)").

/// A smooth objective `f : ℝⁿ → ℝ` with an analytic gradient.
///
/// Implementations must be consistent: `gradient` at `x` is the gradient
/// of `value` at `x`. Solvers never mutate `x` through this trait, and
/// objectives must be `Sync` so multi-start can evaluate them from
/// several threads.
pub trait Objective: Sync {
    /// Number of variables.
    fn dim(&self) -> usize;

    /// Objective value at `x`.
    ///
    /// # Panics
    /// Implementations may panic if `x.len() != self.dim()`.
    fn value(&self, x: &[f64]) -> f64;

    /// Writes the gradient at `x` into `grad`.
    ///
    /// # Panics
    /// Implementations may panic if slice lengths differ from
    /// `self.dim()`.
    fn gradient(&self, x: &[f64], grad: &mut [f64]);

    /// Value and gradient in one call. Override when the two share
    /// expensive intermediates (the DD objective does).
    fn value_and_gradient(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        self.gradient(x, grad);
        self.value(x)
    }
}

/// Every `Objective` reference is itself an objective, so solvers can be
/// handed `&obj` without generic gymnastics.
impl<T: Objective + ?Sized> Objective for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn value(&self, x: &[f64]) -> f64 {
        (**self).value(x)
    }
    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        (**self).gradient(x, grad)
    }
    fn value_and_gradient(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        (**self).value_and_gradient(x, grad)
    }
}

/// Why a solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Gradient (or projected-gradient step) norm fell below tolerance.
    GradientTolerance,
    /// Successive objective values changed less than the tolerance.
    ValueTolerance,
    /// The iteration budget ran out before convergence.
    MaxIterations,
    /// The line search could not find a decreasing step (typically at a
    /// numerically flat point — treated as converged by callers).
    LineSearchFailed,
}

impl Termination {
    /// Whether the stop reason indicates (approximate) convergence rather
    /// than an exhausted budget.
    pub fn converged(self) -> bool {
        matches!(
            self,
            Self::GradientTolerance | Self::ValueTolerance | Self::LineSearchFailed
        )
    }
}

/// Result of one solver run.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Number of objective (value or value+gradient) evaluations.
    pub evaluations: usize,
    /// Why the solver stopped.
    pub termination: Termination,
}

/// A quadratic bowl `½ (x − c)ᵀ diag(s) (x − c)`, used as the reference
/// objective across this crate's solver tests.
#[cfg(test)]
pub(crate) struct Quadratic {
    pub center: Vec<f64>,
    pub scales: Vec<f64>,
}

#[cfg(test)]
impl Quadratic {
    pub fn isotropic(center: Vec<f64>) -> Self {
        let scales = vec![1.0; center.len()];
        Self { center, scales }
    }
}

#[cfg(test)]
impl Objective for Quadratic {
    fn dim(&self) -> usize {
        self.center.len()
    }
    fn value(&self, x: &[f64]) -> f64 {
        x.iter()
            .zip(&self.center)
            .zip(&self.scales)
            .map(|((&xi, &ci), &si)| 0.5 * si * (xi - ci) * (xi - ci))
            .sum()
    }
    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        for ((g, (&xi, &ci)), &si) in grad
            .iter_mut()
            .zip(x.iter().zip(&self.center))
            .zip(&self.scales)
        {
            *g = si * (xi - ci);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn termination_converged_classification() {
        assert!(Termination::GradientTolerance.converged());
        assert!(Termination::ValueTolerance.converged());
        assert!(Termination::LineSearchFailed.converged());
        assert!(!Termination::MaxIterations.converged());
    }

    #[test]
    fn quadratic_value_and_gradient_agree() {
        let q = Quadratic {
            center: vec![1.0, -2.0],
            scales: vec![2.0, 3.0],
        };
        let x = [3.0, 1.0];
        // value = 0.5*2*(2)^2 + 0.5*3*(3)^2 = 4 + 13.5
        assert!((q.value(&x) - 17.5).abs() < 1e-12);
        let mut g = [0.0; 2];
        q.gradient(&x, &mut g);
        assert_eq!(g, [4.0, 9.0]);
    }

    #[test]
    fn default_value_and_gradient_is_consistent() {
        let q = Quadratic::isotropic(vec![0.0; 3]);
        let x = [1.0, 2.0, 3.0];
        let mut g = [0.0; 3];
        let v = q.value_and_gradient(&x, &mut g);
        assert_eq!(v, q.value(&x));
        assert_eq!(g, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn reference_objective_delegates() {
        let q = Quadratic::isotropic(vec![0.0; 2]);
        let r: &dyn Objective = &q;
        assert_eq!(Objective::dim(&r), 2);
        assert_eq!(Objective::value(&r, &[1.0, 1.0]), 1.0);
    }
}
