//! Steepest-descent minimisation with Armijo backtracking.
//!
//! This is the reference solver matching the original Diverse Density
//! implementation's "simple gradient ascent" (§2.2.2). [`crate::lbfgs()`]
//! converges much faster on the same problems and is the production
//! default; this solver stays as the behavioural baseline and as a
//! cross-check in tests.

use crate::line_search::{armijo_search, ArmijoOptions, LineSearchError};
use crate::problem::{Objective, Solution, Termination};

/// Tunables for [`gradient_descent`].
#[derive(Debug, Clone)]
pub struct GradientDescentOptions {
    /// Stop when the Euclidean gradient norm falls below this.
    pub gradient_tolerance: f64,
    /// Stop when `|f_k − f_{k+1}|` falls below this.
    pub value_tolerance: f64,
    /// Outer iteration budget.
    pub max_iterations: usize,
    /// Line-search parameters.
    pub line_search: ArmijoOptions,
}

impl Default for GradientDescentOptions {
    fn default() -> Self {
        Self {
            gradient_tolerance: 1e-6,
            value_tolerance: 1e-10,
            max_iterations: 500,
            line_search: ArmijoOptions::default(),
        }
    }
}

/// Minimises `objective` from `x0` by steepest descent.
///
/// The first line-search trial step is scaled to `1/‖g‖` so the first
/// probe moves a unit distance, which keeps behaviour stable across
/// objectives of very different scale (the DD objective's gradient can
/// span orders of magnitude between starts).
///
/// # Panics
/// Panics if `x0.len() != objective.dim()`.
pub fn gradient_descent<O: Objective + ?Sized>(
    objective: &O,
    x0: &[f64],
    options: &GradientDescentOptions,
) -> Solution {
    assert_eq!(x0.len(), objective.dim(), "start point has wrong dimension");
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut grad = vec![0.0; n];
    let mut value = objective.value_and_gradient(&x, &mut grad);
    let mut evaluations = 1;

    for iteration in 0..options.max_iterations {
        let grad_norm = norm(&grad);
        if grad_norm < options.gradient_tolerance {
            return Solution {
                x,
                value,
                iterations: iteration,
                evaluations,
                termination: Termination::GradientTolerance,
            };
        }
        let direction: Vec<f64> = grad.iter().map(|&g| -g).collect();
        let slope = -grad_norm * grad_norm;
        let ls_opts = ArmijoOptions {
            initial_step: (1.0 / grad_norm).min(1.0),
            ..options.line_search
        };
        match armijo_search(objective, &x, &direction, value, slope, &ls_opts) {
            Ok(result) => {
                evaluations += result.evaluations;
                let decrease = value - result.value;
                x = result.x_new;
                value = objective.value_and_gradient(&x, &mut grad);
                evaluations += 1;
                if decrease.abs() < options.value_tolerance {
                    return Solution {
                        x,
                        value,
                        iterations: iteration + 1,
                        evaluations,
                        termination: Termination::ValueTolerance,
                    };
                }
            }
            Err(LineSearchError::StepUnderflow | LineSearchError::NotADescentDirection { .. }) => {
                return Solution {
                    x,
                    value,
                    iterations: iteration,
                    evaluations,
                    termination: Termination::LineSearchFailed,
                };
            }
        }
    }
    Solution {
        x,
        value,
        iterations: options.max_iterations,
        evaluations,
        termination: Termination::MaxIterations,
    }
}

pub(crate) fn norm(v: &[f64]) -> f64 {
    v.iter().map(|&x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Quadratic;

    #[test]
    fn converges_on_isotropic_quadratic() {
        let q = Quadratic::isotropic(vec![3.0, -1.0, 0.5]);
        let sol = gradient_descent(&q, &[0.0, 0.0, 0.0], &GradientDescentOptions::default());
        assert!(
            sol.termination.converged(),
            "stopped with {:?}",
            sol.termination
        );
        for (xi, ci) in sol.x.iter().zip(&q.center) {
            assert!((xi - ci).abs() < 1e-4, "x = {:?}", sol.x);
        }
    }

    #[test]
    fn converges_on_anisotropic_quadratic() {
        let q = Quadratic {
            center: vec![1.0, 2.0],
            scales: vec![100.0, 1.0],
        };
        let opts = GradientDescentOptions {
            max_iterations: 20_000,
            value_tolerance: 1e-16,
            ..GradientDescentOptions::default()
        };
        let sol = gradient_descent(&q, &[0.0, 0.0], &opts);
        assert!((sol.x[0] - 1.0).abs() < 1e-2);
        assert!((sol.x[1] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn immediate_convergence_at_the_minimum() {
        let q = Quadratic::isotropic(vec![5.0]);
        let sol = gradient_descent(&q, &[5.0], &GradientDescentOptions::default());
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.termination, Termination::GradientTolerance);
    }

    #[test]
    fn iteration_budget_respected() {
        let q = Quadratic {
            center: vec![1.0, 2.0],
            scales: vec![1000.0, 0.001],
        };
        let opts = GradientDescentOptions {
            max_iterations: 3,
            gradient_tolerance: 0.0,
            value_tolerance: 0.0,
            ..GradientDescentOptions::default()
        };
        let sol = gradient_descent(&q, &[-5.0, -5.0], &opts);
        assert_eq!(sol.iterations, 3);
        assert_eq!(sol.termination, Termination::MaxIterations);
    }

    #[test]
    fn monotone_decrease() {
        // Rosenbrock-like quartic valley: descent must still decrease f.
        struct Valley;
        impl Objective for Valley {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, x: &[f64]) -> f64 {
                let a = 1.0 - x[0];
                let b = x[1] - x[0] * x[0];
                a * a + 10.0 * b * b
            }
            fn gradient(&self, x: &[f64], g: &mut [f64]) {
                let a = 1.0 - x[0];
                let b = x[1] - x[0] * x[0];
                g[0] = -2.0 * a - 40.0 * b * x[0];
                g[1] = 20.0 * b;
            }
        }
        let start = [-1.0, 1.0];
        let f0 = Valley.value(&start);
        let opts = GradientDescentOptions {
            max_iterations: 2000,
            ..Default::default()
        };
        let sol = gradient_descent(&Valley, &start, &opts);
        assert!(sol.value < f0);
        assert!(sol.value < 0.1, "final value {}", sol.value);
    }

    #[test]
    fn evaluation_count_is_tracked() {
        let q = Quadratic::isotropic(vec![10.0; 4]);
        let sol = gradient_descent(&q, &[0.0; 4], &GradientDescentOptions::default());
        assert!(sol.evaluations >= sol.iterations);
    }
}
