//! Scoped worker pool with deterministic index-ordered results.
//!
//! One helper serves every parallel fan-out in the workspace: multi-start
//! solves here in `milr-optim`, and database ranking / preprocessing in
//! `milr-core`. Jobs are identified by index; workers pull indices from a
//! shared atomic counter (dynamic load balancing, which matters because
//! DD solves and image preprocessing have very uneven per-job cost) and
//! collect `(index, result)` pairs privately, so there is no lock on the
//! hot path. Results are scattered back into index order afterwards —
//! the output is identical for any thread count, including 1.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a user-facing thread knob (`0` = available parallelism) to a
/// concrete worker count, clamped to the number of jobs.
pub fn resolve_threads(threads: usize, jobs: usize) -> usize {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    threads.min(jobs).max(1)
}

/// Runs `work(i)` for every `i in 0..jobs` across `threads` scoped
/// workers and returns the results in index order.
///
/// `threads = 0` selects the machine's available parallelism. The output
/// is byte-for-byte independent of the thread count: parallelism only
/// changes which worker computes a job, never the merged order.
///
/// # Panics
/// Propagates a panic if any worker job panics.
pub fn run_indexed<T, F>(jobs: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads, jobs);
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(work).collect();
    }

    let next = AtomicUsize::new(0);
    let partials: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        out.push((i, work(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    for partial in partials {
        for (i, value) in partial {
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn identical_for_any_thread_count() {
        let reference = run_indexed(37, 1, |i| (i, i as f64 * 1.5));
        for threads in [0, 2, 3, 8, 64] {
            assert_eq!(run_indexed(37, threads, |i| (i, i as f64 * 1.5)), reference);
        }
    }

    #[test]
    fn zero_jobs_yields_empty() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(8, 3), 3);
        assert_eq!(resolve_threads(2, 100), 2);
        assert!(resolve_threads(0, 100) >= 1);
        assert_eq!(resolve_threads(5, 0), 1);
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn worker_panics_propagate() {
        let _ = run_indexed(8, 2, |i| {
            if i == 5 {
                panic!("job 5 exploded");
            }
            i
        });
    }
}
