//! Central-difference numerical gradients.
//!
//! Used throughout the workspace's test suites to validate analytic
//! gradients — most importantly the Diverse Density gradients in
//! `milr-mil`, whose noisy-or chain rule is easy to get subtly wrong.

use crate::problem::Objective;

/// Central-difference gradient of `objective` at `x` with absolute step
/// `h` (scaled per-coordinate by `max(1, |x_i|)` for balance).
///
/// # Panics
/// Panics if `x.len() != objective.dim()`.
pub fn numerical_gradient<O: Objective + ?Sized>(objective: &O, x: &[f64], h: f64) -> Vec<f64> {
    assert_eq!(x.len(), objective.dim(), "point has wrong dimension");
    let mut grad = vec![0.0; x.len()];
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        let step = h * x[i].abs().max(1.0);
        let original = probe[i];
        probe[i] = original + step;
        let fp = objective.value(&probe);
        probe[i] = original - step;
        let fm = objective.value(&probe);
        probe[i] = original;
        grad[i] = (fp - fm) / (2.0 * step);
    }
    grad
}

/// Maximum relative disagreement between the analytic and numerical
/// gradients at `x`, using `max(1, |analytic_i|)` as the denominator.
///
/// Test suites assert this is below a small threshold.
pub fn gradient_error<O: Objective + ?Sized>(objective: &O, x: &[f64], h: f64) -> f64 {
    let numeric = numerical_gradient(objective, x, h);
    let mut analytic = vec![0.0; x.len()];
    objective.gradient(x, &mut analytic);
    numeric
        .iter()
        .zip(&analytic)
        .map(|(&n, &a)| (n - a).abs() / a.abs().max(1.0))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Cubic;
    impl Objective for Cubic {
        fn dim(&self) -> usize {
            3
        }
        fn value(&self, x: &[f64]) -> f64 {
            x[0].powi(3) + 2.0 * x[1] * x[1] + x[0] * x[2]
        }
        fn gradient(&self, x: &[f64], g: &mut [f64]) {
            g[0] = 3.0 * x[0] * x[0] + x[2];
            g[1] = 4.0 * x[1];
            g[2] = x[0];
        }
    }

    #[test]
    fn numerical_matches_analytic_for_polynomial() {
        let x = [1.5, -0.7, 2.0];
        let err = gradient_error(&Cubic, &x, 1e-6);
        assert!(err < 1e-7, "gradient error {err}");
    }

    #[test]
    fn detects_wrong_gradients() {
        struct Liar;
        impl Objective for Liar {
            fn dim(&self) -> usize {
                1
            }
            fn value(&self, x: &[f64]) -> f64 {
                x[0] * x[0]
            }
            fn gradient(&self, _x: &[f64], g: &mut [f64]) {
                g[0] = 0.0; // wrong on purpose
            }
        }
        let err = gradient_error(&Liar, &[3.0], 1e-6);
        assert!(err > 1.0, "a wrong gradient must be flagged, err = {err}");
    }

    #[test]
    fn step_scales_with_coordinate_magnitude() {
        // At large x the per-coordinate scaled step keeps relative
        // accuracy (an unscaled absolute step would drown in the 1e9
        // function values).
        let x = [1e3, 0.0, 0.0];
        let err = gradient_error(&Cubic, &x, 1e-6);
        assert!(err < 1e-3, "gradient error at large x: {err}");
    }

    #[test]
    fn exponential_objective() {
        struct Exp;
        impl Objective for Exp {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, x: &[f64]) -> f64 {
                (-x[0] * x[0] - 0.5 * x[1] * x[1]).exp()
            }
            fn gradient(&self, x: &[f64], g: &mut [f64]) {
                let v = self.value(x);
                g[0] = -2.0 * x[0] * v;
                g[1] = -x[1] * v;
            }
        }
        let err = gradient_error(&Exp, &[0.3, -0.8], 1e-6);
        assert!(err < 1e-8, "gradient error {err}");
    }
}
