//! Quadratic-penalty method for the weight-constraint set — an
//! *ablation* for the CFSQP substitution.
//!
//! DESIGN.md replaces the paper's CFSQP solver with projected gradient.
//! To substantiate that the choice of constrained solver does not drive
//! the results (the paper makes the same observation about its own
//! minimisers in the §4.2.1 footnote), this module implements a second,
//! entirely different constrained method: sequential unconstrained
//! minimisation of
//!
//! ```text
//! f(x) + (μ/2) · [ Σ max(0, lo − xᵢ)² + Σ max(0, xᵢ − hi)²
//!                  + max(0, min_sum − Σ xᵢ)² ]
//! ```
//!
//! with μ increasing geometrically, each stage solved by L-BFGS. The
//! `ext-solver` experiment and the cross-solver tests check both methods
//! land on the same KKT points.

use crate::lbfgs::{lbfgs, LbfgsOptions};
use crate::problem::{Objective, Solution, Termination};
use crate::projection::BoxSumProjection;

/// Tunables for [`penalty_method`].
#[derive(Debug, Clone)]
pub struct PenaltyOptions {
    /// Initial penalty coefficient μ.
    pub initial_mu: f64,
    /// Multiplier applied to μ between stages.
    pub mu_growth: f64,
    /// Number of penalty stages.
    pub stages: usize,
    /// Inner L-BFGS settings per stage.
    pub inner: LbfgsOptions,
    /// Constraint-violation tolerance for early exit.
    pub feasibility_tolerance: f64,
}

impl Default for PenaltyOptions {
    fn default() -> Self {
        Self {
            initial_mu: 10.0,
            mu_growth: 10.0,
            stages: 6,
            inner: LbfgsOptions {
                max_iterations: 200,
                ..LbfgsOptions::default()
            },
            feasibility_tolerance: 1e-6,
        }
    }
}

/// The penalised objective for one stage.
struct Penalized<'a, O: Objective + ?Sized> {
    objective: &'a O,
    constraint: BoxSumProjection,
    /// Coordinates `[start, end)` the constraint applies to.
    start: usize,
    end: usize,
    mu: f64,
}

impl<O: Objective + ?Sized> Penalized<'_, O> {
    fn violation_terms(&self, x: &[f64]) -> (f64, f64) {
        let mut sq = 0.0f64;
        let mut sum = 0.0f64;
        for &v in &x[self.start..self.end] {
            let below = (self.constraint.lo - v).max(0.0);
            let above = (v - self.constraint.hi).max(0.0);
            sq += below * below + above * above;
            sum += v;
        }
        let deficit = (self.constraint.min_sum - sum).max(0.0);
        (sq + deficit * deficit, deficit)
    }
}

impl<O: Objective + ?Sized> Objective for Penalized<'_, O> {
    fn dim(&self) -> usize {
        self.objective.dim()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let (violation_sq, _) = self.violation_terms(x);
        self.objective.value(x) + 0.5 * self.mu * violation_sq
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        self.objective.gradient(x, grad);
        let (_, deficit) = self.violation_terms(x);
        for i in self.start..self.end {
            let v = x[i];
            let below = (self.constraint.lo - v).max(0.0);
            let above = (v - self.constraint.hi).max(0.0);
            grad[i] += self.mu * (above - below);
            grad[i] -= self.mu * deficit; // d/dv of 0.5·(min_sum − Σv)²
        }
    }
}

/// Minimises `objective` subject to the box∩half-space constraint on the
/// coordinate range `[start, end)` using the quadratic-penalty method.
///
/// The returned point is projected onto the constraint set at the end,
/// so it is exactly feasible.
///
/// # Panics
/// Panics if `x0.len() != objective.dim()` or the range is out of
/// bounds.
pub fn penalty_method<O: Objective + ?Sized>(
    objective: &O,
    constraint: BoxSumProjection,
    start: usize,
    end: usize,
    x0: &[f64],
    options: &PenaltyOptions,
) -> Solution {
    assert_eq!(x0.len(), objective.dim(), "start point has wrong dimension");
    assert!(
        start <= end && end <= x0.len(),
        "constraint range out of bounds"
    );
    let mut x = x0.to_vec();
    let mut mu = options.initial_mu;
    let mut iterations = 0;
    let mut evaluations = 0;
    let mut termination = Termination::MaxIterations;
    for _stage in 0..options.stages {
        let stage_objective = Penalized {
            objective,
            constraint,
            start,
            end,
            mu,
        };
        let sol = lbfgs(&stage_objective, &x, &options.inner);
        x = sol.x;
        iterations += sol.iterations;
        evaluations += sol.evaluations;
        termination = sol.termination;
        let (violation_sq, _) = stage_objective.violation_terms(&x);
        if violation_sq.sqrt() < options.feasibility_tolerance {
            break;
        }
        mu *= options.mu_growth;
    }
    // Exact feasibility for downstream users.
    use crate::projection::Project as _;
    constraint.project(&mut x[start..end]);
    let value = objective.value(&x);
    evaluations += 1;
    Solution {
        x,
        value,
        iterations,
        evaluations,
        termination,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Quadratic;
    use crate::projected_gradient::{projected_gradient, ProjectedGradientOptions};
    use crate::projection::SubsliceProjection;

    #[test]
    fn interior_solution_matches_unconstrained() {
        // Minimum at (0.5, 0.5), constraint inactive.
        let q = Quadratic::isotropic(vec![0.5, 0.5]);
        let c = BoxSumProjection::for_beta(2, 0.2);
        let sol = penalty_method(&q, c, 0, 2, &[0.0, 0.0], &PenaltyOptions::default());
        assert!((sol.x[0] - 0.5).abs() < 1e-4, "x = {:?}", sol.x);
        assert!((sol.x[1] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn active_constraint_matches_kkt_point() {
        // min x² + 4y² s.t. x + y ≥ 1: KKT at (0.8, 0.2).
        let q = Quadratic {
            center: vec![0.0, 0.0],
            scales: vec![2.0, 8.0],
        };
        let c = BoxSumProjection::for_beta(2, 0.5);
        let sol = penalty_method(&q, c, 0, 2, &[0.5, 0.5], &PenaltyOptions::default());
        assert!((sol.x[0] - 0.8).abs() < 1e-2, "x = {:?}", sol.x);
        assert!((sol.x[1] - 0.2).abs() < 1e-2, "x = {:?}", sol.x);
        assert!(
            c.is_feasible(&sol.x, 1e-9),
            "result must be exactly feasible"
        );
    }

    #[test]
    fn agrees_with_projected_gradient() {
        // The ablation claim: two very different constrained solvers land
        // on the same optimum.
        let q = Quadratic {
            center: vec![0.1, -0.3, 0.2],
            scales: vec![1.0, 3.0, 2.0],
        };
        let c = BoxSumProjection::for_beta(3, 0.6); // Σ ≥ 1.8, active
        let pen = penalty_method(&q, c, 0, 3, &[0.5; 3], &PenaltyOptions::default());
        let proj = projected_gradient(
            &q,
            &SubsliceProjection {
                start: 0,
                end: 3,
                inner: c,
            },
            &[0.5; 3],
            &ProjectedGradientOptions {
                max_iterations: 5000,
                step_tolerance: 1e-10,
                value_tolerance: 0.0,
                ..Default::default()
            },
        );
        for (a, b) in pen.x.iter().zip(&proj.x) {
            assert!(
                (a - b).abs() < 1e-2,
                "penalty {:?} vs projected {:?}",
                pen.x,
                proj.x
            );
        }
        assert!((pen.value - proj.value).abs() < 1e-3);
    }

    #[test]
    fn partial_range_leaves_free_coordinates_alone() {
        // Variables [t, w]; constraint only on w (β = 1 pins w at 1).
        let q = Quadratic::isotropic(vec![-2.0, 0.0]);
        let c = BoxSumProjection::for_beta(1, 1.0);
        let sol = penalty_method(&q, c, 1, 2, &[0.0, 0.0], &PenaltyOptions::default());
        assert!(
            (sol.x[0] + 2.0).abs() < 1e-4,
            "free coordinate must reach its optimum"
        );
        assert!(
            (sol.x[1] - 1.0).abs() < 1e-6,
            "constrained coordinate pinned at 1"
        );
    }

    #[test]
    fn box_bounds_are_enforced() {
        // Unconstrained minimum at 3.0, but hi = 1.
        let q = Quadratic::isotropic(vec![3.0]);
        let c = BoxSumProjection::for_beta(1, 0.0);
        let sol = penalty_method(&q, c, 0, 1, &[0.0], &PenaltyOptions::default());
        assert!((sol.x[0] - 1.0).abs() < 1e-6, "x = {:?}", sol.x);
    }

    #[test]
    fn penalized_gradient_is_consistent() {
        use crate::numdiff::gradient_error;
        let q = Quadratic {
            center: vec![0.3, -0.4],
            scales: vec![1.5, 2.5],
        };
        let pen = Penalized {
            objective: &q,
            constraint: BoxSumProjection::for_beta(2, 0.9),
            start: 0,
            end: 2,
            mu: 25.0,
        };
        // Probe points inside, below and above the box.
        for x in [[0.5, 0.4], [-0.3, 0.2], [1.4, -0.2]] {
            let err = gradient_error(&pen, &x, 1e-6);
            assert!(err < 1e-5, "gradient error {err} at {x:?}");
        }
    }
}
