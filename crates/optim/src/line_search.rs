//! Backtracking Armijo line search.
//!
//! Given a descent direction `d` at point `x` (so `gᵀd < 0`), find a step
//! `t` satisfying the sufficient-decrease condition
//! `f(x + t·d) ≤ f(x) + c1·t·gᵀd`, starting from `t0` and shrinking by
//! `shrink` until it holds or the step underflows.

use crate::problem::Objective;

/// Parameters of the backtracking search.
#[derive(Debug, Clone, Copy)]
pub struct ArmijoOptions {
    /// Sufficient-decrease constant `c1` in `(0, 1)`. Typical: `1e-4`.
    pub c1: f64,
    /// Multiplicative step shrink factor in `(0, 1)`. Typical: `0.5`.
    pub shrink: f64,
    /// Initial trial step.
    pub initial_step: f64,
    /// Abandon the search once the step falls below this.
    pub min_step: f64,
}

impl Default for ArmijoOptions {
    fn default() -> Self {
        Self {
            c1: 1e-4,
            shrink: 0.5,
            initial_step: 1.0,
            min_step: 1e-16,
        }
    }
}

/// Why a line search failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LineSearchError {
    /// `gᵀd ≥ 0`: the provided direction does not descend.
    NotADescentDirection {
        /// The offending directional derivative.
        slope: f64,
    },
    /// The step shrank below `min_step` without sufficient decrease.
    StepUnderflow,
}

impl std::fmt::Display for LineSearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotADescentDirection { slope } => {
                write!(f, "direction is not a descent direction (gᵀd = {slope:e})")
            }
            Self::StepUnderflow => write!(f, "line search step underflowed"),
        }
    }
}

impl std::error::Error for LineSearchError {}

/// Outcome of a successful search.
#[derive(Debug, Clone)]
pub struct LineSearchResult {
    /// Accepted step length.
    pub step: f64,
    /// The accepted point `x + step·d`.
    pub x_new: Vec<f64>,
    /// Objective value at `x_new`.
    pub value: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
}

/// Runs backtracking Armijo from `x` along `d`.
///
/// `fx` is the objective value at `x` and `slope = gᵀd` the directional
/// derivative (both already known to callers, so they are passed in
/// rather than re-evaluated).
///
/// # Errors
/// * [`LineSearchError::NotADescentDirection`] if `slope >= 0`.
/// * [`LineSearchError::StepUnderflow`] if no step satisfies the Armijo
///   condition above `min_step` — callers treat this as "numerically at a
///   minimum along this direction".
///
/// # Panics
/// Panics if `x.len() != d.len()`.
pub fn armijo_search<O: Objective + ?Sized>(
    objective: &O,
    x: &[f64],
    d: &[f64],
    fx: f64,
    slope: f64,
    options: &ArmijoOptions,
) -> Result<LineSearchResult, LineSearchError> {
    assert_eq!(
        x.len(),
        d.len(),
        "point and direction must share a dimension"
    );
    if slope >= 0.0 {
        return Err(LineSearchError::NotADescentDirection { slope });
    }
    let mut t = options.initial_step;
    let mut x_new = vec![0.0; x.len()];
    let mut evaluations = 0;
    while t >= options.min_step {
        for ((xn, &xi), &di) in x_new.iter_mut().zip(x).zip(d) {
            *xn = xi + t * di;
        }
        let value = objective.value(&x_new);
        evaluations += 1;
        if value.is_finite() && value <= fx + options.c1 * t * slope {
            milr_obs::counter!("milr_linesearch_searches_total").inc();
            milr_obs::counter!("milr_linesearch_backtracks_total").add(evaluations as u64 - 1);
            return Ok(LineSearchResult {
                step: t,
                x_new,
                value,
                evaluations,
            });
        }
        t *= options.shrink;
    }
    milr_obs::counter!("milr_linesearch_searches_total").inc();
    milr_obs::counter!("milr_linesearch_backtracks_total").add(evaluations as u64);
    Err(LineSearchError::StepUnderflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Quadratic;

    #[test]
    fn accepts_full_step_on_well_scaled_quadratic() {
        let q = Quadratic::isotropic(vec![0.0, 0.0]);
        let x = [2.0, 0.0];
        let d = [-2.0, 0.0]; // exact Newton direction
        let fx = q.value(&x);
        let slope = -4.0; // g = (2, 0), gᵀd = -4
        let r = armijo_search(&q, &x, &d, fx, slope, &ArmijoOptions::default()).unwrap();
        assert_eq!(r.step, 1.0);
        assert!(r.value < fx);
        assert!((r.x_new[0]).abs() < 1e-12);
    }

    #[test]
    fn backtracks_on_overlong_step() {
        let q = Quadratic::isotropic(vec![0.0]);
        let x = [1.0];
        let d = [-100.0]; // massively overshoots
        let fx = q.value(&x);
        let slope = -100.0;
        let r = armijo_search(&q, &x, &d, fx, slope, &ArmijoOptions::default()).unwrap();
        assert!(r.step < 1.0, "must backtrack, got step {}", r.step);
        assert!(r.value < fx);
        assert!(r.evaluations > 1);
    }

    #[test]
    fn rejects_ascent_direction() {
        let q = Quadratic::isotropic(vec![0.0]);
        let err = armijo_search(&q, &[1.0], &[1.0], 0.5, 1.0, &ArmijoOptions::default());
        assert!(matches!(
            err,
            Err(LineSearchError::NotADescentDirection { .. })
        ));
    }

    #[test]
    fn zero_slope_rejected() {
        let q = Quadratic::isotropic(vec![0.0]);
        let err = armijo_search(&q, &[1.0], &[0.0], 0.5, 0.0, &ArmijoOptions::default());
        assert!(matches!(
            err,
            Err(LineSearchError::NotADescentDirection { .. })
        ));
    }

    #[test]
    fn underflow_at_a_minimum() {
        // At the exact minimum every step increases f; claiming slope < 0
        // forces the search to exhaust itself.
        let q = Quadratic::isotropic(vec![0.0]);
        let err = armijo_search(&q, &[0.0], &[-1.0], 0.0, -1e-30, &ArmijoOptions::default());
        assert_eq!(err.unwrap_err(), LineSearchError::StepUnderflow);
    }

    #[test]
    fn non_finite_values_are_backtracked_past() {
        // An objective that blows up for x > 1 but is a quadratic below:
        // the search must shrink past the singular region.
        struct Spiky;
        impl Objective for Spiky {
            fn dim(&self) -> usize {
                1
            }
            fn value(&self, x: &[f64]) -> f64 {
                if x[0] > 1.0 {
                    f64::NAN
                } else {
                    x[0] * x[0]
                }
            }
            fn gradient(&self, x: &[f64], grad: &mut [f64]) {
                grad[0] = 2.0 * x[0];
            }
        }
        let x = [0.5];
        let d = [-4.0]; // first trials land beyond the NaN cliff at t where 0.5-4t>1? never; use ascent-like overshoot below
        let r = armijo_search(&Spiky, &x, &d, 0.25, -4.0 * 1.0, &ArmijoOptions::default()).unwrap();
        assert!(r.value <= 0.25);
    }

    #[test]
    fn respects_custom_initial_step() {
        let q = Quadratic::isotropic(vec![0.0]);
        let opts = ArmijoOptions {
            initial_step: 0.25,
            ..ArmijoOptions::default()
        };
        let r = armijo_search(&q, &[1.0], &[-1.0], 0.5, -1.0, &opts).unwrap();
        assert!(r.step <= 0.25);
    }
}
