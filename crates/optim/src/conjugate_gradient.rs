//! Nonlinear conjugate gradient (Polak–Ribière+) minimisation.
//!
//! A third unconstrained solver besides steepest descent and L-BFGS,
//! kept for the solver-choice ablation: the original DD implementation
//! used plain gradient ascent (§2.2.2), and the claim that a faster
//! minimiser does not change *what* is found (only how fast) is easier
//! to trust with more than one alternative. CG needs O(n) memory like
//! steepest descent but converges far faster on ill-conditioned
//! problems.
//!
//! The β coefficient is Polak–Ribière clipped at zero (`PR+`), which
//! auto-restarts on negative values; directions that fail the descent
//! test also trigger a steepest-descent restart.

use crate::gradient_descent::norm;
use crate::line_search::{armijo_search, ArmijoOptions, LineSearchError};
use crate::problem::{Objective, Solution, Termination};

/// Tunables for [`conjugate_gradient`].
#[derive(Debug, Clone)]
pub struct ConjugateGradientOptions {
    /// Stop when the gradient norm falls below this.
    pub gradient_tolerance: f64,
    /// Stop when successive values change less than this.
    pub value_tolerance: f64,
    /// Outer iteration budget.
    pub max_iterations: usize,
    /// Restart with steepest descent every `restart_every` iterations
    /// (n-step restarts keep CG honest on non-quadratic objectives).
    pub restart_every: usize,
    /// Line-search parameters.
    pub line_search: ArmijoOptions,
}

impl Default for ConjugateGradientOptions {
    fn default() -> Self {
        Self {
            gradient_tolerance: 1e-6,
            value_tolerance: 1e-10,
            max_iterations: 500,
            restart_every: 50,
            line_search: ArmijoOptions::default(),
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Minimises `objective` from `x0` with Polak–Ribière+ conjugate
/// gradients.
///
/// # Panics
/// Panics if `x0.len() != objective.dim()`.
pub fn conjugate_gradient<O: Objective + ?Sized>(
    objective: &O,
    x0: &[f64],
    options: &ConjugateGradientOptions,
) -> Solution {
    assert_eq!(x0.len(), objective.dim(), "start point has wrong dimension");
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut grad = vec![0.0; n];
    let mut value = objective.value_and_gradient(&x, &mut grad);
    let mut evaluations = 1;
    let mut direction: Vec<f64> = grad.iter().map(|&g| -g).collect();

    for iteration in 0..options.max_iterations {
        let grad_norm = norm(&grad);
        if grad_norm < options.gradient_tolerance {
            return Solution {
                x,
                value,
                iterations: iteration,
                evaluations,
                termination: Termination::GradientTolerance,
            };
        }

        let mut slope = dot(&grad, &direction);
        if slope >= 0.0 || (iteration > 0 && iteration % options.restart_every == 0) {
            // Restart with steepest descent.
            for (d, &g) in direction.iter_mut().zip(&grad) {
                *d = -g;
            }
            slope = -grad_norm * grad_norm;
        }

        let ls_opts = ArmijoOptions {
            initial_step: (1.0 / norm(&direction).max(1e-12)).min(1.0),
            ..options.line_search
        };
        match armijo_search(objective, &x, &direction, value, slope, &ls_opts) {
            Ok(result) => {
                evaluations += result.evaluations;
                let mut new_grad = vec![0.0; n];
                let new_value = objective.value_and_gradient(&result.x_new, &mut new_grad);
                evaluations += 1;

                // Polak–Ribière+: β = max(0, gₖ₊₁ᵀ(gₖ₊₁ − gₖ) / gₖᵀgₖ).
                let gg = dot(&grad, &grad);
                let beta = if gg > 0.0 {
                    let num = new_grad
                        .iter()
                        .zip(&grad)
                        .map(|(&gn, &go)| gn * (gn - go))
                        .sum::<f64>();
                    (num / gg).max(0.0)
                } else {
                    0.0
                };
                for (d, &gn) in direction.iter_mut().zip(&new_grad) {
                    *d = -gn + beta * *d;
                }

                let decrease = value - new_value;
                x = result.x_new;
                grad = new_grad;
                value = new_value;
                if decrease.abs() < options.value_tolerance {
                    return Solution {
                        x,
                        value,
                        iterations: iteration + 1,
                        evaluations,
                        termination: Termination::ValueTolerance,
                    };
                }
            }
            Err(LineSearchError::StepUnderflow | LineSearchError::NotADescentDirection { .. }) => {
                return Solution {
                    x,
                    value,
                    iterations: iteration,
                    evaluations,
                    termination: Termination::LineSearchFailed,
                };
            }
        }
    }
    Solution {
        x,
        value,
        iterations: options.max_iterations,
        evaluations,
        termination: Termination::MaxIterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient_descent::{gradient_descent, GradientDescentOptions};
    use crate::problem::Quadratic;

    #[test]
    fn converges_on_isotropic_quadratic() {
        let q = Quadratic::isotropic(vec![1.0, -2.0, 3.0]);
        let sol = conjugate_gradient(&q, &[0.0; 3], &ConjugateGradientOptions::default());
        assert!(sol.termination.converged());
        for (xi, ci) in sol.x.iter().zip(&q.center) {
            assert!((xi - ci).abs() < 1e-4, "x = {:?}", sol.x);
        }
    }

    #[test]
    fn handles_anisotropy_better_than_steepest_descent() {
        let q = Quadratic {
            center: vec![1.0, 2.0, -1.0],
            scales: vec![500.0, 1.0, 20.0],
        };
        let cg = conjugate_gradient(&q, &[0.0; 3], &ConjugateGradientOptions::default());
        let gd_opts = GradientDescentOptions {
            max_iterations: cg.iterations.max(1) * 2,
            ..GradientDescentOptions::default()
        };
        let gd = gradient_descent(&q, &[0.0; 3], &gd_opts);
        assert!(
            cg.value <= gd.value + 1e-12,
            "CG ({}) should beat 2x-budget steepest descent ({})",
            cg.value,
            gd.value
        );
    }

    #[test]
    fn rosenbrock_valley() {
        struct Rosenbrock;
        impl Objective for Rosenbrock {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, x: &[f64]) -> f64 {
                let a = 1.0 - x[0];
                let b = x[1] - x[0] * x[0];
                a * a + 100.0 * b * b
            }
            fn gradient(&self, x: &[f64], g: &mut [f64]) {
                let a = 1.0 - x[0];
                let b = x[1] - x[0] * x[0];
                g[0] = -2.0 * a - 400.0 * b * x[0];
                g[1] = 200.0 * b;
            }
        }
        let opts = ConjugateGradientOptions {
            max_iterations: 3000,
            ..ConjugateGradientOptions::default()
        };
        let sol = conjugate_gradient(&Rosenbrock, &[-1.2, 1.0], &opts);
        assert!(sol.value < 1e-4, "f = {}, x = {:?}", sol.value, sol.x);
    }

    #[test]
    fn immediate_convergence_at_minimum() {
        let q = Quadratic::isotropic(vec![0.5]);
        let sol = conjugate_gradient(&q, &[0.5], &ConjugateGradientOptions::default());
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.termination, Termination::GradientTolerance);
    }

    #[test]
    fn iteration_budget_respected() {
        let q = Quadratic {
            center: vec![9.0; 6],
            scales: vec![100.0; 6],
        };
        let opts = ConjugateGradientOptions {
            max_iterations: 2,
            gradient_tolerance: 0.0,
            value_tolerance: 0.0,
            ..ConjugateGradientOptions::default()
        };
        let sol = conjugate_gradient(&q, &[0.0; 6], &opts);
        assert_eq!(sol.termination, Termination::MaxIterations);
        assert_eq!(sol.iterations, 2);
    }

    #[test]
    fn agrees_with_lbfgs_on_smooth_problems() {
        use crate::lbfgs::{lbfgs, LbfgsOptions};
        let q = Quadratic {
            center: vec![0.3, -0.7, 1.1, 0.0],
            scales: vec![4.0, 9.0, 1.0, 16.0],
        };
        let cg = conjugate_gradient(&q, &[1.0; 4], &ConjugateGradientOptions::default());
        let lb = lbfgs(&q, &[1.0; 4], &LbfgsOptions::default());
        for (a, b) in cg.x.iter().zip(&lb.x) {
            assert!((a - b).abs() < 1e-4, "CG {:?} vs L-BFGS {:?}", cg.x, lb.x);
        }
    }
}
