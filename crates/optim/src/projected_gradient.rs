//! Projected-gradient minimisation over a convex set.
//!
//! Substitutes for CFSQP in the §3.6.3 inequality-constrained DD
//! maximisation. Iterates `x⁺ = P(x − t·∇f(x))` with a backtracking
//! step: `t` shrinks until the sufficient-decrease condition
//!
//! ```text
//! f(x⁺) ≤ f(x) − (σ / t) · ‖x⁺ − x‖²
//! ```
//!
//! holds (the standard projected-gradient Armijo rule). Convergence is
//! declared when the *projected-gradient step* `‖P(x − t₀·g) − x‖ / t₀`
//! is small — the correct stationarity measure on a constrained set,
//! where the raw gradient need not vanish.

use crate::problem::{Objective, Solution, Termination};
use crate::projection::Project;

/// Tunables for [`projected_gradient`].
#[derive(Debug, Clone)]
pub struct ProjectedGradientOptions {
    /// Initial trial step for each iteration.
    pub initial_step: f64,
    /// Sufficient-decrease constant `σ` in `(0, 1)`.
    pub sigma: f64,
    /// Multiplicative step shrink factor in `(0, 1)`.
    pub shrink: f64,
    /// Abandon an iteration once the trial step falls below this.
    pub min_step: f64,
    /// Stop when the projected-gradient step norm falls below this.
    pub step_tolerance: f64,
    /// Stop when successive values change less than this.
    pub value_tolerance: f64,
    /// Outer iteration budget.
    pub max_iterations: usize,
}

impl Default for ProjectedGradientOptions {
    fn default() -> Self {
        Self {
            initial_step: 1.0,
            sigma: 1e-4,
            shrink: 0.5,
            min_step: 1e-16,
            step_tolerance: 1e-7,
            value_tolerance: 1e-10,
            max_iterations: 500,
        }
    }
}

/// Minimises `objective` over the set defined by `projection`, starting
/// from `x0` (which is projected first, so infeasible starts are fine).
///
/// # Panics
/// Panics if `x0.len() != objective.dim()`.
pub fn projected_gradient<O, P>(
    objective: &O,
    projection: &P,
    x0: &[f64],
    options: &ProjectedGradientOptions,
) -> Solution
where
    O: Objective + ?Sized,
    P: Project + ?Sized,
{
    assert_eq!(x0.len(), objective.dim(), "start point has wrong dimension");
    let n = x0.len();
    let mut x = x0.to_vec();
    projection.project(&mut x);
    let mut grad = vec![0.0; n];
    let mut value = objective.value_and_gradient(&x, &mut grad);
    let mut evaluations = 1;
    let mut trial = vec![0.0; n];

    for iteration in 0..options.max_iterations {
        // Stationarity check via the projected-gradient step at t0.
        let t0 = options.initial_step;
        for ((ti, &xi), &gi) in trial.iter_mut().zip(&x).zip(&grad) {
            *ti = xi - t0 * gi;
        }
        projection.project(&mut trial);
        let step_sq: f64 = trial.iter().zip(&x).map(|(&a, &b)| (a - b) * (a - b)).sum();
        let step_norm = step_sq.sqrt() / t0;
        if step_norm < options.step_tolerance {
            return Solution {
                x,
                value,
                iterations: iteration,
                evaluations,
                termination: Termination::GradientTolerance,
            };
        }

        // Backtrack on t. The first trial (t = t0) is exactly the
        // projected point the stationarity probe just built, so it is
        // reused rather than recomputed — `trial` still holds
        // `P(x − t0·g)` and `step_sq` its squared move.
        let mut t = t0;
        let mut first_trial = true;
        let mut accepted = false;
        while t >= options.min_step {
            let move_sq = if first_trial {
                first_trial = false;
                step_sq
            } else {
                for ((ti, &xi), &gi) in trial.iter_mut().zip(&x).zip(&grad) {
                    *ti = xi - t * gi;
                }
                projection.project(&mut trial);
                trial.iter().zip(&x).map(|(&a, &b)| (a - b) * (a - b)).sum()
            };
            if move_sq == 0.0 {
                break; // projection pinned us; no feasible descent this way
            }
            let candidate = objective.value(&trial);
            evaluations += 1;
            if candidate.is_finite() && candidate <= value - options.sigma / t * move_sq {
                let decrease = value - candidate;
                std::mem::swap(&mut x, &mut trial);
                value = objective.value_and_gradient(&x, &mut grad);
                evaluations += 1;
                if decrease.abs() < options.value_tolerance {
                    return Solution {
                        x,
                        value,
                        iterations: iteration + 1,
                        evaluations,
                        termination: Termination::ValueTolerance,
                    };
                }
                accepted = true;
                break;
            }
            t *= options.shrink;
        }
        if !accepted {
            return Solution {
                x,
                value,
                iterations: iteration,
                evaluations,
                termination: Termination::LineSearchFailed,
            };
        }
    }
    Solution {
        x,
        value,
        iterations: options.max_iterations,
        evaluations,
        termination: Termination::MaxIterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Quadratic;
    use crate::projection::{BoxSumProjection, IdentityProjection, SubsliceProjection};

    #[test]
    fn unconstrained_matches_plain_descent() {
        let q = Quadratic::isotropic(vec![1.0, -2.0, 0.5]);
        let sol = projected_gradient(
            &q,
            &IdentityProjection,
            &[0.0; 3],
            &ProjectedGradientOptions::default(),
        );
        for (xi, ci) in sol.x.iter().zip(&q.center) {
            assert!((xi - ci).abs() < 1e-5);
        }
    }

    #[test]
    fn interior_minimum_found_when_feasible() {
        // Minimum at (0.5, 0.5) which satisfies Σ ≥ 0.4 easily.
        let q = Quadratic::isotropic(vec![0.5, 0.5]);
        let p = BoxSumProjection::for_beta(2, 0.2);
        let sol = projected_gradient(&q, &p, &[0.0, 0.0], &ProjectedGradientOptions::default());
        assert!((sol.x[0] - 0.5).abs() < 1e-5);
        assert!((sol.x[1] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn active_sum_constraint_binds() {
        // Unconstrained minimum at the origin, but Σ ≥ 1 forces the
        // iterate onto the constraint plane; by symmetry x = (0.5, 0.5).
        let q = Quadratic::isotropic(vec![0.0, 0.0]);
        let p = BoxSumProjection::for_beta(2, 0.5);
        let sol = projected_gradient(&q, &p, &[1.0, 0.0], &ProjectedGradientOptions::default());
        let sum: f64 = sol.x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "sum = {sum}, x = {:?}", sol.x);
        assert!((sol.x[0] - 0.5).abs() < 1e-4);
        assert!((sol.x[1] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn asymmetric_objective_on_active_constraint() {
        // min (x−0)² + 4(y−0)² s.t. x + y ≥ 1, box [0,1]².
        // KKT: 2x = λ, 8y = λ ⇒ x = 4y, x + y = 1 ⇒ y = 0.2, x = 0.8.
        let q = Quadratic {
            center: vec![0.0, 0.0],
            scales: vec![2.0, 8.0],
        };
        let p = BoxSumProjection::for_beta(2, 0.5);
        let opts = ProjectedGradientOptions {
            max_iterations: 5000,
            step_tolerance: 1e-9,
            value_tolerance: 0.0,
            ..Default::default()
        };
        let sol = projected_gradient(&q, &p, &[0.5, 0.5], &opts);
        assert!((sol.x[0] - 0.8).abs() < 1e-3, "x = {:?}", sol.x);
        assert!((sol.x[1] - 0.2).abs() < 1e-3, "x = {:?}", sol.x);
    }

    #[test]
    fn infeasible_start_is_projected() {
        let q = Quadratic::isotropic(vec![0.5, 0.5]);
        let p = BoxSumProjection::for_beta(2, 0.2);
        let sol = projected_gradient(&q, &p, &[-10.0, 10.0], &ProjectedGradientOptions::default());
        assert!(p.is_feasible(&sol.x, 1e-9));
    }

    #[test]
    fn subslice_constraint_leaves_free_block_unconstrained() {
        // Variables [t0, t1, w0, w1]; only w constrained with β = 1.
        let q = Quadratic::isotropic(vec![-3.0, 7.0, 0.0, 0.0]);
        let p = SubsliceProjection {
            start: 2,
            end: 4,
            inner: BoxSumProjection::for_beta(2, 1.0),
        };
        let sol = projected_gradient(&q, &p, &[0.0; 4], &ProjectedGradientOptions::default());
        assert!((sol.x[0] + 3.0).abs() < 1e-4);
        assert!((sol.x[1] - 7.0).abs() < 1e-4);
        assert!((sol.x[2] - 1.0).abs() < 1e-6);
        assert!((sol.x[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stationary_start_terminates_immediately() {
        let q = Quadratic::isotropic(vec![0.5, 0.5]);
        let p = BoxSumProjection::for_beta(2, 0.2);
        let sol = projected_gradient(&q, &p, &[0.5, 0.5], &ProjectedGradientOptions::default());
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.termination, Termination::GradientTolerance);
    }

    #[test]
    fn iteration_budget_respected() {
        let q = Quadratic {
            center: vec![0.9; 8],
            scales: vec![100.0; 8],
        };
        let p = BoxSumProjection::for_beta(8, 0.1);
        let opts = ProjectedGradientOptions {
            max_iterations: 2,
            step_tolerance: 0.0,
            value_tolerance: 0.0,
            ..Default::default()
        };
        let sol = projected_gradient(&q, &p, &[0.0; 8], &opts);
        assert_eq!(sol.termination, Termination::MaxIterations);
    }
}
