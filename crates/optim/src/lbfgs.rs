//! Limited-memory BFGS minimisation.
//!
//! The DD objective is smooth and its dimension is `2h²` (feature point
//! plus weights — 200 variables at the default `h = 10`), squarely in
//! L-BFGS territory. The implementation is the standard two-loop
//! recursion (Nocedal & Wright, Alg. 7.4) with Armijo backtracking and
//! curvature-guarded updates: pairs with `yᵀs ≤ ε‖s‖‖y‖` are skipped so
//! the inverse-Hessian approximation stays positive definite.

use std::collections::VecDeque;

use crate::gradient_descent::norm;
use crate::line_search::{armijo_search, ArmijoOptions, LineSearchError};
use crate::problem::{Objective, Solution, Termination};

/// Tunables for [`lbfgs`].
#[derive(Debug, Clone)]
pub struct LbfgsOptions {
    /// History size `m` (number of `(s, y)` pairs kept). Typical: 8.
    pub memory: usize,
    /// Stop when the gradient norm falls below this.
    pub gradient_tolerance: f64,
    /// Stop when successive values change less than this.
    pub value_tolerance: f64,
    /// Outer iteration budget.
    pub max_iterations: usize,
    /// Line-search parameters.
    pub line_search: ArmijoOptions,
}

impl Default for LbfgsOptions {
    fn default() -> Self {
        Self {
            memory: 8,
            gradient_tolerance: 1e-6,
            value_tolerance: 1e-10,
            max_iterations: 300,
            line_search: ArmijoOptions::default(),
        }
    }
}

struct Pair {
    s: Vec<f64>,
    y: Vec<f64>,
    rho: f64,
}

/// Two-loop recursion: returns `H_k · g` where `H_k` is the implicit
/// inverse-Hessian approximation.
fn two_loop(pairs: &VecDeque<Pair>, gradient: &[f64]) -> Vec<f64> {
    let mut q = gradient.to_vec();
    let mut alphas = Vec::with_capacity(pairs.len());
    for p in pairs.iter().rev() {
        let alpha = p.rho * dot(&p.s, &q);
        for (qi, yi) in q.iter_mut().zip(&p.y) {
            *qi -= alpha * yi;
        }
        alphas.push(alpha);
    }
    // Initial scaling H0 = γ·I with γ = sᵀy / yᵀy of the newest pair.
    if let Some(newest) = pairs.back() {
        let gamma = dot(&newest.s, &newest.y) / dot(&newest.y, &newest.y);
        for qi in &mut q {
            *qi *= gamma;
        }
    }
    for (p, &alpha) in pairs.iter().zip(alphas.iter().rev()) {
        let beta = p.rho * dot(&p.y, &q);
        for (qi, si) in q.iter_mut().zip(&p.s) {
            *qi += (alpha - beta) * si;
        }
    }
    q
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Minimises `objective` from `x0` with L-BFGS.
///
/// # Panics
/// Panics if `x0.len() != objective.dim()` or `options.memory == 0`.
pub fn lbfgs<O: Objective + ?Sized>(objective: &O, x0: &[f64], options: &LbfgsOptions) -> Solution {
    assert_eq!(x0.len(), objective.dim(), "start point has wrong dimension");
    assert!(options.memory > 0, "L-BFGS needs at least one history slot");
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut grad = vec![0.0; n];
    let mut value = objective.value_and_gradient(&x, &mut grad);
    let mut evaluations = 1;
    let mut pairs: VecDeque<Pair> = VecDeque::with_capacity(options.memory);

    for iteration in 0..options.max_iterations {
        let grad_norm = norm(&grad);
        if grad_norm < options.gradient_tolerance {
            return Solution {
                x,
                value,
                iterations: iteration,
                evaluations,
                termination: Termination::GradientTolerance,
            };
        }

        let mut direction: Vec<f64> = two_loop(&pairs, &grad);
        for d in &mut direction {
            *d = -*d;
        }
        let mut slope = dot(&grad, &direction);
        if slope >= 0.0 {
            // Hessian approximation lost descent; fall back to steepest
            // descent and drop the history.
            pairs.clear();
            for (d, &g) in direction.iter_mut().zip(&grad) {
                *d = -g;
            }
            slope = -grad_norm * grad_norm;
        }

        let ls_opts = if pairs.is_empty() {
            // First iteration (or reset): unit-distance probe like
            // steepest descent.
            ArmijoOptions {
                initial_step: (1.0 / grad_norm).min(1.0),
                ..options.line_search
            }
        } else {
            // Quasi-Newton steps are well scaled; probe t = 1 first.
            ArmijoOptions {
                initial_step: 1.0,
                ..options.line_search
            }
        };

        match armijo_search(objective, &x, &direction, value, slope, &ls_opts) {
            Ok(result) => {
                evaluations += result.evaluations;
                let mut new_grad = vec![0.0; n];
                let new_value = objective.value_and_gradient(&result.x_new, &mut new_grad);
                evaluations += 1;

                let s: Vec<f64> = result.x_new.iter().zip(&x).map(|(&a, &b)| a - b).collect();
                let y: Vec<f64> = new_grad.iter().zip(&grad).map(|(&a, &b)| a - b).collect();
                let sy = dot(&s, &y);
                let curvature_ok = sy > 1e-10 * norm(&s) * norm(&y);
                if curvature_ok {
                    if pairs.len() == options.memory {
                        pairs.pop_front();
                    }
                    pairs.push_back(Pair {
                        rho: 1.0 / sy,
                        s,
                        y,
                    });
                }

                let decrease = value - new_value;
                x = result.x_new;
                grad = new_grad;
                value = new_value;
                if decrease.abs() < options.value_tolerance {
                    return Solution {
                        x,
                        value,
                        iterations: iteration + 1,
                        evaluations,
                        termination: Termination::ValueTolerance,
                    };
                }
            }
            Err(LineSearchError::StepUnderflow | LineSearchError::NotADescentDirection { .. }) => {
                return Solution {
                    x,
                    value,
                    iterations: iteration,
                    evaluations,
                    termination: Termination::LineSearchFailed,
                };
            }
        }
    }
    Solution {
        x,
        value,
        iterations: options.max_iterations,
        evaluations,
        termination: Termination::MaxIterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient_descent::{gradient_descent, GradientDescentOptions};
    use crate::problem::Quadratic;

    #[test]
    fn converges_on_isotropic_quadratic() {
        let q = Quadratic::isotropic(vec![2.0, -3.0, 1.0, 0.0]);
        let sol = lbfgs(&q, &[0.0; 4], &LbfgsOptions::default());
        assert!(sol.termination.converged());
        for (xi, ci) in sol.x.iter().zip(&q.center) {
            assert!((xi - ci).abs() < 1e-5);
        }
    }

    #[test]
    fn handles_severe_anisotropy_better_than_steepest_descent() {
        let q = Quadratic {
            center: vec![1.0, 2.0],
            scales: vec![1000.0, 0.1],
        };
        let lb = lbfgs(&q, &[0.0, 0.0], &LbfgsOptions::default());
        let gd_opts = GradientDescentOptions {
            max_iterations: lb.iterations.max(1) * 3,
            ..GradientDescentOptions::default()
        };
        let gd = gradient_descent(&q, &[0.0, 0.0], &gd_opts);
        assert!(
            lb.value <= gd.value + 1e-12,
            "L-BFGS ({}) should beat steepest descent ({}) on the same budget",
            lb.value,
            gd.value
        );
        assert!((lb.x[0] - 1.0).abs() < 1e-4);
        assert!((lb.x[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn rosenbrock_two_dimensional() {
        struct Rosenbrock;
        impl Objective for Rosenbrock {
            fn dim(&self) -> usize {
                2
            }
            fn value(&self, x: &[f64]) -> f64 {
                let a = 1.0 - x[0];
                let b = x[1] - x[0] * x[0];
                a * a + 100.0 * b * b
            }
            fn gradient(&self, x: &[f64], g: &mut [f64]) {
                let a = 1.0 - x[0];
                let b = x[1] - x[0] * x[0];
                g[0] = -2.0 * a - 400.0 * b * x[0];
                g[1] = 200.0 * b;
            }
        }
        let opts = LbfgsOptions {
            max_iterations: 500,
            ..LbfgsOptions::default()
        };
        let sol = lbfgs(&Rosenbrock, &[-1.2, 1.0], &opts);
        assert!((sol.x[0] - 1.0).abs() < 1e-3, "x = {:?}", sol.x);
        assert!((sol.x[1] - 1.0).abs() < 1e-3, "x = {:?}", sol.x);
    }

    #[test]
    fn already_at_minimum() {
        let q = Quadratic::isotropic(vec![0.0; 3]);
        let sol = lbfgs(&q, &[0.0; 3], &LbfgsOptions::default());
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn memory_one_still_converges() {
        let q = Quadratic {
            center: vec![4.0, -4.0],
            scales: vec![3.0, 7.0],
        };
        let opts = LbfgsOptions {
            memory: 1,
            ..LbfgsOptions::default()
        };
        let sol = lbfgs(&q, &[0.0, 0.0], &opts);
        assert!((sol.x[0] - 4.0).abs() < 1e-4);
        assert!((sol.x[1] + 4.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "history slot")]
    fn zero_memory_rejected() {
        let q = Quadratic::isotropic(vec![0.0]);
        let opts = LbfgsOptions {
            memory: 0,
            ..LbfgsOptions::default()
        };
        let _ = lbfgs(&q, &[1.0], &opts);
    }

    #[test]
    fn quadratic_converges_in_few_iterations() {
        // L-BFGS should need far fewer iterations than dimensions on a
        // benign quadratic.
        let n = 50;
        let center: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let q = Quadratic::isotropic(center);
        let sol = lbfgs(&q, &vec![0.0; n], &LbfgsOptions::default());
        assert!(sol.iterations < 20, "took {} iterations", sol.iterations);
        assert!(sol.value < 1e-8);
    }
}
