//! Parallel multi-start driver.
//!
//! The Diverse Density maximum is sought by "starting from every instance
//! from every positive bag and performing gradient ascent from each one"
//! (§2.2.2) — an embarrassingly parallel workload. Starts are distributed
//! over the [`crate::pool`] scoped workers, which pull indices from an
//! atomic counter; the best (lowest, since we minimise) solution wins.
//! Ties are broken by start index so results are deterministic regardless
//! of thread interleaving.

use crate::pool;
use crate::problem::Solution;

/// Outcome of a multi-start run.
#[derive(Debug, Clone)]
pub struct MultistartReport {
    /// The best solution across all starts.
    pub best: Solution,
    /// Index (into the starts slice) of the winning start.
    pub best_start: usize,
    /// Final objective value reached from each start, in start order.
    pub values: Vec<f64>,
    /// Objective evaluations spent by each start, in start order — the
    /// per-start cost profile golden regression traces pin down.
    pub evaluations: Vec<usize>,
    /// Number of starts that reported convergence.
    pub converged_count: usize,
}

/// Runs `solve` from every start point in parallel and returns the best
/// (minimum-value) solution.
///
/// `solve` is any closure mapping a start point to a [`Solution`] — the
/// callers plug in L-BFGS, projected gradient, or steepest descent.
/// `threads = 0` selects the machine's available parallelism.
///
/// # Panics
/// Panics if `starts` is empty.
pub fn multistart<F>(starts: &[Vec<f64>], threads: usize, solve: F) -> MultistartReport
where
    F: Fn(&[f64]) -> Solution + Sync,
{
    assert!(
        !starts.is_empty(),
        "multistart requires at least one start point"
    );
    let _span = milr_obs::span!("optim.multistart");
    let solutions = pool::run_indexed(starts.len(), threads, |i| solve(&starts[i]));
    let report = summarize(solutions);
    milr_obs::counter!("milr_multistart_starts_total").add(starts.len() as u64);
    milr_obs::counter!("milr_multistart_converged_total").add(report.converged_count as u64);
    milr_obs::counter!("milr_multistart_evaluations_total")
        .add(report.evaluations.iter().map(|&e| e as u64).sum());
    report
}

fn summarize(solutions: Vec<Solution>) -> MultistartReport {
    let values: Vec<f64> = solutions.iter().map(|s| s.value).collect();
    let evaluations: Vec<usize> = solutions.iter().map(|s| s.evaluations).collect();
    let converged_count = solutions
        .iter()
        .filter(|s| s.termination.converged())
        .count();
    let best_start = values
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("objective values must not be NaN"))
        .map(|(i, _)| i)
        .expect("at least one start");
    let best = solutions[best_start].clone();
    MultistartReport {
        best,
        best_start,
        values,
        evaluations,
        converged_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbfgs::{lbfgs, LbfgsOptions};
    use crate::problem::{Objective, Termination};

    /// Double-well objective: minima at x = ±1 with f(−1) = 0 (global)
    /// and f(+1) = 0.5 (local).
    struct DoubleWell;
    impl Objective for DoubleWell {
        fn dim(&self) -> usize {
            1
        }
        fn value(&self, x: &[f64]) -> f64 {
            let t = x[0];
            (t * t - 1.0).powi(2) + 0.25 * (t + 1.0).powi(2)
        }
        fn gradient(&self, x: &[f64], g: &mut [f64]) {
            let t = x[0];
            g[0] = 4.0 * t * (t * t - 1.0) + 0.5 * (t + 1.0);
        }
    }

    fn solve_double_well(start: &[f64]) -> Solution {
        lbfgs(&DoubleWell, start, &LbfgsOptions::default())
    }

    #[test]
    fn finds_global_minimum_from_multiple_starts() {
        let starts = vec![vec![2.0], vec![-2.0], vec![0.4], vec![-0.4]];
        let report = multistart(&starts, 2, solve_double_well);
        assert!(
            report.best.x[0] < 0.0,
            "best minimum should be the left well, got {:?}",
            report.best.x
        );
        assert_eq!(report.values.len(), 4);
    }

    #[test]
    fn single_start_works_sequentially() {
        let starts = vec![vec![3.0]];
        let report = multistart(&starts, 1, solve_double_well);
        assert_eq!(report.best_start, 0);
        assert!(report.best.termination.converged());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let starts: Vec<Vec<f64>> = (0..16).map(|i| vec![-3.0 + 0.4 * i as f64]).collect();
        let seq = multistart(&starts, 1, solve_double_well);
        let par = multistart(&starts, 4, solve_double_well);
        assert_eq!(seq.best_start, par.best_start);
        assert_eq!(seq.values, par.values);
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let starts = vec![vec![1.5], vec![-1.5]];
        let report = multistart(&starts, 0, solve_double_well);
        assert_eq!(report.values.len(), 2);
    }

    #[test]
    fn converged_count_reflects_terminations() {
        let starts = vec![vec![0.9], vec![-0.9]];
        let report = multistart(&starts, 2, |s| {
            let mut sol = solve_double_well(s);
            if s[0] > 0.0 {
                sol.termination = Termination::MaxIterations;
            }
            sol
        });
        assert_eq!(report.converged_count, 1);
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn empty_starts_rejected() {
        let _ = multistart(&[], 1, solve_double_well);
    }

    #[test]
    fn tie_breaks_by_start_index() {
        // Identical starts → identical values; the first index must win.
        let starts = vec![vec![2.0], vec![2.0], vec![2.0]];
        let report = multistart(&starts, 3, solve_double_well);
        assert_eq!(report.best_start, 0);
    }
}
