//! Euclidean projections onto the paper's weight-constraint sets.
//!
//! §3.6.3 constrains the DD weights to the convex set
//! `C = {w : 0 ≤ w_k ≤ 1, Σ w_k ≥ c}` with `c = β·h²`. The Euclidean
//! projection onto `C` has a closed form up to one scalar: by the KKT
//! conditions of `min ‖y − x‖² s.t. y ∈ C`, the solution is
//! `y_k = clamp(x_k + λ, 0, 1)` where `λ ≥ 0` is zero if the clamped
//! point already meets the sum constraint, and otherwise the unique root
//! of the nondecreasing function `λ ↦ Σ clamp(x_k + λ, 0, 1) − c`.
//! [`BoxSumProjection`] finds that root by bisection to machine
//! precision.
//!
//! The DD variable vector is `[t | w]` with only the `w` block
//! constrained; [`SubsliceProjection`] lifts any projection to a
//! coordinate sub-range so solvers stay agnostic of that layout.

/// A Euclidean projection onto a convex set, applied in place.
pub trait Project: Sync {
    /// Projects `x` onto the set.
    fn project(&self, x: &mut [f64]);
}

/// The identity projection (the whole space); used for "no constraint".
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityProjection;

impl Project for IdentityProjection {
    fn project(&self, _x: &mut [f64]) {}
}

/// Exact projection onto `{x : lo ≤ x_k ≤ hi, Σ x_k ≥ min_sum}`.
///
/// # Examples
/// ```
/// use milr_optim::{BoxSumProjection, Project};
///
/// // The paper's weight set for 4 weights at β = 0.5: Σw ≥ 2.
/// let p = BoxSumProjection::for_beta(4, 0.5);
/// let mut w = vec![0.0, 0.0, 0.0, 0.0];
/// p.project(&mut w);
/// assert!((w.iter().sum::<f64>() - 2.0).abs() < 1e-9);
/// assert!(w.iter().all(|&v| (v - 0.5).abs() < 1e-9)); // symmetric split
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BoxSumProjection {
    /// Lower box bound (paper: 0).
    pub lo: f64,
    /// Upper box bound (paper: 1).
    pub hi: f64,
    /// Minimum sum `c = β·h²`.
    pub min_sum: f64,
}

impl BoxSumProjection {
    /// Creates the paper's constraint set for `n` weights and a given
    /// `β ∈ [0, 1]`: `0 ≤ w ≤ 1`, `Σ w ≥ β·n`.
    ///
    /// # Panics
    /// Panics if `beta` is outside `[0, 1]`.
    pub fn for_beta(n: usize, beta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&beta),
            "β must lie in [0, 1], got {beta}"
        );
        Self {
            lo: 0.0,
            hi: 1.0,
            min_sum: beta * n as f64,
        }
    }

    /// Whether `x` already satisfies every constraint (up to `tol`).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        let mut sum = 0.0;
        for &v in x {
            if v < self.lo - tol || v > self.hi + tol {
                return false;
            }
            sum += v;
        }
        sum >= self.min_sum - tol
    }
}

impl Project for BoxSumProjection {
    fn project(&self, x: &mut [f64]) {
        debug_assert!(self.hi >= self.lo);
        debug_assert!(
            self.min_sum <= self.hi * x.len() as f64 + 1e-9,
            "constraint set is empty: min_sum {} > n·hi {}",
            self.min_sum,
            self.hi * x.len() as f64
        );
        // The projection is y_k = clamp(x_k + λ, lo, hi) applied to the
        // ORIGINAL coordinates (clamping first and shifting afterwards is
        // not the Euclidean projection — it loses how far below `lo` a
        // coordinate sat). λ = 0 when the plain clamp already meets the
        // sum constraint.
        let shifted_sum = |x: &[f64], lambda: f64| -> f64 {
            x.iter()
                .map(|&v| (v + lambda).clamp(self.lo, self.hi))
                .sum()
        };
        if shifted_sum(x, 0.0) < self.min_sum {
            // The half-space is active — bisect for the λ ≥ 0 with
            // Σ clamp(x_k + λ) = min_sum. At λ = hi − min(x_k) every
            // coordinate saturates at hi, so the sum reaches n·hi ≥ min_sum.
            let mut lambda_lo = 0.0f64;
            let mut lambda_hi = self.hi - x.iter().cloned().fold(f64::INFINITY, f64::min);
            // Guard: ensure the bracket's upper end really reaches min_sum.
            while shifted_sum(x, lambda_hi) < self.min_sum {
                lambda_hi = lambda_hi.mul_add(2.0, 1.0);
            }
            for _ in 0..200 {
                let mid = 0.5 * (lambda_lo + lambda_hi);
                if shifted_sum(x, mid) < self.min_sum {
                    lambda_lo = mid;
                } else {
                    lambda_hi = mid;
                }
                if lambda_hi - lambda_lo < 1e-15 * (1.0 + lambda_hi) {
                    break;
                }
            }
            let lambda = lambda_hi;
            for v in x.iter_mut() {
                *v = (*v + lambda).clamp(self.lo, self.hi);
            }
        } else {
            for v in x.iter_mut() {
                *v = v.clamp(self.lo, self.hi);
            }
        }
    }
}

/// Applies an inner projection to the coordinate range `[start, end)`,
/// leaving other coordinates untouched.
#[derive(Debug, Clone)]
pub struct SubsliceProjection<P> {
    /// First constrained coordinate.
    pub start: usize,
    /// One past the last constrained coordinate.
    pub end: usize,
    /// Projection applied to the sub-range.
    pub inner: P,
}

impl<P: Project> Project for SubsliceProjection<P> {
    fn project(&self, x: &mut [f64]) {
        assert!(
            self.start <= self.end && self.end <= x.len(),
            "projection range out of bounds"
        );
        self.inner.project(&mut x[self.start..self.end]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn feasible_points_are_fixed() {
        let p = BoxSumProjection::for_beta(4, 0.5); // Σ ≥ 2
        let mut x = vec![0.6, 0.7, 0.4, 0.9];
        let before = x.clone();
        p.project(&mut x);
        assert_eq!(x, before);
    }

    #[test]
    fn box_clamp_when_sum_inactive() {
        let p = BoxSumProjection::for_beta(3, 0.0);
        let mut x = vec![-0.5, 0.5, 1.8];
        p.project(&mut x);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn sum_constraint_activates() {
        let p = BoxSumProjection::for_beta(4, 0.5); // Σ ≥ 2
        let mut x = vec![0.0, 0.0, 0.0, 0.0];
        p.project(&mut x);
        let sum: f64 = x.iter().sum();
        assert!((sum - 2.0).abs() < 1e-9, "projected sum = {sum}");
        // By symmetry all coordinates equal 0.5.
        for &v in &x {
            assert!((v - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn beta_one_forces_all_ones() {
        let p = BoxSumProjection::for_beta(5, 1.0);
        let mut x = vec![0.2, 0.9, 0.0, 0.5, 1.0];
        p.project(&mut x);
        for &v in &x {
            assert!((v - 1.0).abs() < 1e-7, "x = {x:?}");
        }
    }

    #[test]
    fn saturated_coordinates_stay_at_hi() {
        let p = BoxSumProjection::for_beta(3, 0.9); // Σ ≥ 2.7
        let mut x = vec![1.5, 0.0, 0.0];
        p.project(&mut x);
        assert!((x[0] - 1.0).abs() < 1e-9);
        let sum: f64 = x.iter().sum();
        assert!(sum >= 2.7 - 1e-9);
        // Remaining mass split evenly between the two free coordinates.
        assert!((x[1] - x[2]).abs() < 1e-9);
    }

    #[test]
    fn projection_is_idempotent() {
        let p = BoxSumProjection::for_beta(6, 0.7);
        let mut x = vec![-1.0, 2.0, 0.3, 0.1, 0.0, 0.9];
        p.project(&mut x);
        let once = x.clone();
        p.project(&mut x);
        assert_eq!(x, once);
    }

    #[test]
    fn projection_is_the_nearest_feasible_point() {
        // Compare against a dense grid search over the feasible set for a
        // tiny instance.
        let p = BoxSumProjection::for_beta(2, 0.75); // Σ ≥ 1.5
        let x0 = vec![0.2, 0.1];
        let mut x = x0.clone();
        p.project(&mut x);
        assert!(p.is_feasible(&x, 1e-9));
        let d_proj = dist_sq(&x, &x0);
        let steps = 400;
        for i in 0..=steps {
            for j in 0..=steps {
                let cand = [i as f64 / steps as f64, j as f64 / steps as f64];
                if cand[0] + cand[1] >= 1.5 {
                    assert!(
                        dist_sq(&cand, &x0) >= d_proj - 1e-6,
                        "grid point {cand:?} beats the projection {x:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn kkt_conditions_hold() {
        // y = clamp(x + λ) with a single λ: all non-saturated coordinates
        // receive the same shift.
        let p = BoxSumProjection::for_beta(5, 0.8); // Σ ≥ 4
        let x0 = vec![0.9, 0.1, 0.2, 0.5, 0.0];
        let mut y = x0.clone();
        p.project(&mut y);
        let shifts: Vec<f64> = y
            .iter()
            .zip(&x0)
            .filter(|(&yi, _)| yi > 1e-9 && yi < 1.0 - 1e-9)
            .map(|(&yi, &xi)| yi - xi)
            .collect();
        for w in shifts.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-7,
                "interior shifts differ: {shifts:?}"
            );
        }
        // λ ≥ 0.
        assert!(shifts.iter().all(|&s| s >= -1e-9));
    }

    #[test]
    fn far_out_of_box_points_project_correctly() {
        // Regression: P(-0.5, -3.5) under {Σ ≥ 1, [0,1]²} is (1, 0) —
        // NOT (0.5, 0.5), which a clamp-then-shift shortcut produces.
        let p = BoxSumProjection::for_beta(2, 0.5);
        let mut x = vec![-0.5, -3.5];
        p.project(&mut x);
        assert!((x[0] - 1.0).abs() < 1e-7, "x = {x:?}");
        assert!(x[1].abs() < 1e-7, "x = {x:?}");
    }

    #[test]
    fn out_of_box_projection_is_nearest_on_grid() {
        let p = BoxSumProjection::for_beta(2, 0.75); // Σ ≥ 1.5
        let x0 = vec![-1.0, 2.5];
        let mut x = x0.clone();
        p.project(&mut x);
        assert!(p.is_feasible(&x, 1e-9));
        let d_proj = dist_sq(&x, &x0);
        let steps = 400;
        for i in 0..=steps {
            for j in 0..=steps {
                let cand = [i as f64 / steps as f64, j as f64 / steps as f64];
                if cand[0] + cand[1] >= 1.5 {
                    assert!(
                        dist_sq(&cand, &x0) >= d_proj - 1e-6,
                        "grid point {cand:?} beats the projection {x:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn identity_projection_never_moves() {
        let mut x = vec![1e9, -1e9, f64::MIN_POSITIVE];
        IdentityProjection.project(&mut x);
        assert_eq!(x, vec![1e9, -1e9, f64::MIN_POSITIVE]);
    }

    #[test]
    fn subslice_projection_targets_range() {
        let inner = BoxSumProjection::for_beta(2, 1.0); // forces [1, 1]
        let p = SubsliceProjection {
            start: 1,
            end: 3,
            inner,
        };
        let mut x = vec![-5.0, 0.0, 0.0, 7.0];
        p.project(&mut x);
        assert_eq!(x[0], -5.0);
        assert!((x[1] - 1.0).abs() < 1e-7);
        assert!((x[2] - 1.0).abs() < 1e-7);
        assert_eq!(x[3], 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn subslice_range_checked() {
        let p = SubsliceProjection {
            start: 2,
            end: 5,
            inner: IdentityProjection,
        };
        let mut x = vec![0.0; 3];
        p.project(&mut x);
    }

    #[test]
    #[should_panic(expected = "β must lie in")]
    fn invalid_beta_rejected() {
        let _ = BoxSumProjection::for_beta(4, 1.5);
    }

    #[test]
    fn is_feasible_checks_everything() {
        let p = BoxSumProjection::for_beta(3, 0.5); // Σ ≥ 1.5
        assert!(p.is_feasible(&[0.5, 0.5, 0.5], 1e-9));
        assert!(!p.is_feasible(&[0.1, 0.1, 0.1], 1e-9)); // sum too small
        assert!(!p.is_feasible(&[1.5, 0.5, 0.5], 1e-9)); // above box
        assert!(!p.is_feasible(&[-0.1, 1.0, 1.0], 1e-9)); // below box
    }
}
