#![warn(missing_docs)]

//! # milr-imgproc
//!
//! Image-processing substrate for the `milr` multiple-instance image
//! retrieval system (Yang & Lozano-Pérez, ICDE 2000).
//!
//! The paper's feature pipeline consumes only a handful of image
//! operations, all implemented here from scratch:
//!
//! * gray-scale and RGB raster types ([`GrayImage`], [`RgbImage`]) with
//!   luminance conversion,
//! * PGM/PPM I/O ([`pnm`]) so intermediate artifacts can be inspected,
//! * summed-area tables ([`IntegralImage`]) giving O(1) block averages,
//! * the paper's smoothing-and-sampling operator ([`sample::smooth_sample`])
//!   that reduces any region to an `h × h` matrix of 50%-overlapping
//!   block averages (§3.1.2),
//! * sub-region layouts ([`region::RegionLayout`]) generating the 9/20/42
//!   region sets used for 18/40/84 instances per bag (§3.2, Fig. 3-5),
//! * left-right mirroring ([`mirror`]),
//! * plain and weighted correlation coefficients ([`correlate`], §3.1.1
//!   and §3.3), and
//! * the mean/σ normalisation ([`normalize`]) that maps weighted
//!   correlation ranking onto weighted Euclidean ranking (§3.4).

pub mod convolve;
pub mod correlate;
pub mod edge;
pub mod error;
pub mod gray;
pub mod histogram;
pub mod integral;
pub mod mirror;
pub mod normalize;
pub mod png;
pub mod pnm;
pub mod region;
pub mod resize;
pub mod rgb;
pub mod sample;

pub use convolve::{convolve, convolve_separable, Kernel};
pub use correlate::{correlation, correlation_2d, weighted_correlation};
pub use error::ImageError;
pub use gray::GrayImage;
pub use integral::IntegralImage;
pub use normalize::NormalizedVector;
pub use region::{Rect, RegionLayout};
pub use rgb::RgbImage;
pub use sample::smooth_sample;
