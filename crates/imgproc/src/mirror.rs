//! Left-right mirroring (§3.2).
//!
//! "Left-right mirror images occur very frequently in image databases and
//! we would like to regard them as the same" — so every region contributes
//! both its sampled matrix and that matrix's horizontal flip as instances.
//!
//! Mirroring is applied *after* smoothing-and-sampling: flipping the
//! `h × h` sample of a region equals sampling the mirrored region exactly
//! whenever block boundaries land symmetrically (they do up to one pixel
//! of rounding), and it avoids re-walking the source pixels.

use crate::gray::GrayImage;
use crate::rgb::RgbImage;

/// Returns the left-right mirror of a gray image.
pub fn mirror_horizontal(image: &GrayImage) -> GrayImage {
    let (w, h) = (image.width(), image.height());
    GrayImage::from_fn(w, h, |x, y| image.get(w - 1 - x, y))
        .expect("mirror preserves valid dimensions")
}

/// Flips a gray image in place, avoiding an allocation.
pub fn mirror_horizontal_in_place(image: &mut GrayImage) {
    let w = image.width();
    let h = image.height();
    let px = image.pixels_mut();
    for y in 0..h {
        px[y * w..(y + 1) * w].reverse();
    }
}

/// Returns the left-right mirror of an RGB image (pixel order reversed
/// per row; channel order within each pixel preserved).
pub fn mirror_horizontal_rgb(image: &RgbImage) -> RgbImage {
    let (w, h) = (image.width(), image.height());
    RgbImage::from_fn(w, h, |x, y| image.get(w - 1 - x, y))
        .expect("mirror preserves valid dimensions")
}

/// Returns the top-bottom flip of a gray image. Not used by the paper's
/// pipeline (scenes and objects are rarely vertically symmetric) but kept
/// for completeness of the substrate.
pub fn mirror_vertical(image: &GrayImage) -> GrayImage {
    let (w, h) = (image.width(), image.height());
    GrayImage::from_fn(w, h, |x, y| image.get(x, h - 1 - y))
        .expect("mirror preserves valid dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| (y * w + x) as f32).unwrap()
    }

    #[test]
    fn horizontal_mirror_reverses_rows() {
        let img = ramp(3, 2);
        let m = mirror_horizontal(&img);
        assert_eq!(m.row(0), &[2.0, 1.0, 0.0]);
        assert_eq!(m.row(1), &[5.0, 4.0, 3.0]);
    }

    #[test]
    fn mirror_is_involutive() {
        let img = ramp(5, 4);
        assert_eq!(mirror_horizontal(&mirror_horizontal(&img)), img);
    }

    #[test]
    fn in_place_matches_allocating_version() {
        let img = ramp(7, 3);
        let expected = mirror_horizontal(&img);
        let mut inplace = img;
        mirror_horizontal_in_place(&mut inplace);
        assert_eq!(inplace, expected);
    }

    #[test]
    fn vertical_mirror_reverses_columns() {
        let img = ramp(2, 3);
        let m = mirror_vertical(&img);
        assert_eq!(m.row(0), &[4.0, 5.0]);
        assert_eq!(m.row(2), &[0.0, 1.0]);
    }

    #[test]
    fn mirror_preserves_statistics() {
        let img = ramp(6, 6);
        let m = mirror_horizontal(&img);
        assert!((img.mean() - m.mean()).abs() < 1e-6);
        assert!((img.variance() - m.variance()).abs() < 1e-4);
    }

    #[test]
    fn rgb_mirror_preserves_channel_order() {
        let img = RgbImage::from_fn(2, 1, |x, _| [x as f32, 10.0, 20.0]).unwrap();
        let m = mirror_horizontal_rgb(&img);
        assert_eq!(m.get(0, 0), [1.0, 10.0, 20.0]);
        assert_eq!(m.get(1, 0), [0.0, 10.0, 20.0]);
    }

    #[test]
    fn symmetric_image_is_mirror_invariant() {
        let img = GrayImage::from_fn(8, 4, |x, _| {
            let c = (x as f32) - 3.5;
            c * c
        })
        .unwrap();
        let m = mirror_horizontal(&img);
        for (a, b) in img.pixels().iter().zip(m.pixels()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
