//! Gray-scale raster images.
//!
//! The paper works entirely on gray-scale data (§3.1.2: "All color images
//! are converted into gray-scale images first"). [`GrayImage`] stores one
//! `f32` intensity per pixel in row-major order; the nominal intensity
//! range is `[0, 255]` but nothing in the pipeline depends on it — the
//! correlation similarity measure is invariant to affine intensity
//! changes.

use crate::error::ImageError;
use crate::region::Rect;

/// A row-major gray-scale image with `f32` intensities.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Creates an image filled with a constant intensity.
    ///
    /// # Errors
    /// Returns [`ImageError::InvalidDimensions`] if either dimension is
    /// zero or the total pixel count overflows `usize`.
    pub fn filled(width: usize, height: usize, value: f32) -> Result<Self, ImageError> {
        let len = checked_len(width, height, 1)?;
        Ok(Self {
            width,
            height,
            data: vec![value; len],
        })
    }

    /// Creates an all-black (zero) image.
    ///
    /// # Errors
    /// Same conditions as [`GrayImage::filled`].
    pub fn zeros(width: usize, height: usize) -> Result<Self, ImageError> {
        Self::filled(width, height, 0.0)
    }

    /// Wraps an existing row-major pixel buffer.
    ///
    /// # Errors
    /// Returns [`ImageError::BufferSizeMismatch`] if `data.len()` is not
    /// `width * height`, or [`ImageError::InvalidDimensions`] for empty
    /// dimensions.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Result<Self, ImageError> {
        let len = checked_len(width, height, 1)?;
        if data.len() != len {
            return Err(ImageError::BufferSizeMismatch {
                expected: len,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Builds an image by evaluating `f(x, y)` at every pixel.
    ///
    /// # Errors
    /// Same conditions as [`GrayImage::filled`].
    pub fn from_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> f32,
    ) -> Result<Self, ImageError> {
        let len = checked_len(width, height, 1)?;
        let mut data = Vec::with_capacity(len);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: images are constructed with non-zero dimensions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Intensity at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x]
    }

    /// Sets the intensity at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x] = value;
    }

    /// The raw row-major pixel buffer.
    #[inline]
    pub fn pixels(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw row-major pixel buffer.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row of pixels as a slice.
    ///
    /// # Panics
    /// Panics if `y >= height`.
    #[inline]
    pub fn row(&self, y: usize) -> &[f32] {
        assert!(y < self.height, "row {y} out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Consumes the image and returns its pixel buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Mean intensity over the whole image.
    pub fn mean(&self) -> f32 {
        let sum: f64 = self.data.iter().map(|&v| f64::from(v)).sum();
        (sum / self.data.len() as f64) as f32
    }

    /// Population variance of intensities (divides by `n`, matching the
    /// paper's `1/n` convention in §3.1.1).
    pub fn variance(&self) -> f32 {
        let n = self.data.len() as f64;
        let mean = f64::from(self.mean());
        let ss: f64 = self
            .data
            .iter()
            .map(|&v| {
                let d = f64::from(v) - mean;
                d * d
            })
            .sum();
        (ss / n) as f32
    }

    /// Population standard deviation of intensities.
    pub fn std_dev(&self) -> f32 {
        self.variance().sqrt()
    }

    /// Minimum and maximum intensity.
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Extracts a copy of the pixels inside `rect`.
    ///
    /// # Errors
    /// Returns [`ImageError::RegionOutOfBounds`] if the rectangle does not
    /// fit inside the image.
    pub fn crop(&self, rect: Rect) -> Result<GrayImage, ImageError> {
        if !rect.fits_within(self.width, self.height) {
            return Err(ImageError::RegionOutOfBounds {
                region: (rect.x, rect.y, rect.width, rect.height),
                width: self.width,
                height: self.height,
            });
        }
        let mut data = Vec::with_capacity(rect.width * rect.height);
        for y in rect.y..rect.y + rect.height {
            let start = y * self.width + rect.x;
            data.extend_from_slice(&self.data[start..start + rect.width]);
        }
        GrayImage::from_vec(rect.width, rect.height, data)
    }

    /// Clamps every pixel into `[lo, hi]` in place.
    pub fn clamp_in_place(&mut self, lo: f32, hi: f32) {
        for v in &mut self.data {
            *v = v.clamp(lo, hi);
        }
    }

    /// Rescales intensities affinely so the image spans `[lo, hi]`.
    /// A perfectly flat image maps to the midpoint of the target range.
    pub fn rescale_to(&mut self, lo: f32, hi: f32) {
        let (min, max) = self.min_max();
        let span = max - min;
        if span <= f32::EPSILON {
            let mid = (lo + hi) * 0.5;
            for v in &mut self.data {
                *v = mid;
            }
            return;
        }
        let scale = (hi - lo) / span;
        for v in &mut self.data {
            *v = lo + (*v - min) * scale;
        }
    }
}

pub(crate) fn checked_len(
    width: usize,
    height: usize,
    channels: usize,
) -> Result<usize, ImageError> {
    if width == 0 || height == 0 {
        return Err(ImageError::InvalidDimensions { width, height });
    }
    width
        .checked_mul(height)
        .and_then(|p| p.checked_mul(channels))
        .ok_or(ImageError::InvalidDimensions { width, height })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| (y * w + x) as f32).unwrap()
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(GrayImage::zeros(0, 5).is_err());
        assert!(GrayImage::zeros(5, 0).is_err());
    }

    #[test]
    fn buffer_size_checked() {
        assert!(GrayImage::from_vec(3, 3, vec![0.0; 8]).is_err());
        assert!(GrayImage::from_vec(3, 3, vec![0.0; 9]).is_ok());
    }

    #[test]
    fn get_set_round_trip() {
        let mut img = GrayImage::zeros(4, 3).unwrap();
        img.set(2, 1, 7.5);
        assert_eq!(img.get(2, 1), 7.5);
        assert_eq!(img.get(1, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = GrayImage::zeros(4, 3).unwrap();
        let _ = img.get(4, 0);
    }

    #[test]
    fn from_fn_is_row_major() {
        let img = ramp(3, 2);
        assert_eq!(img.pixels(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(img.get(2, 1), 5.0);
    }

    #[test]
    fn row_slices() {
        let img = ramp(3, 2);
        assert_eq!(img.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn mean_and_variance() {
        let img = GrayImage::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((img.mean() - 2.5).abs() < 1e-6);
        // population variance of {1,2,3,4} = 1.25
        assert!((img.variance() - 1.25).abs() < 1e-6);
        assert!((img.std_dev() - 1.25f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn flat_image_has_zero_variance() {
        let img = GrayImage::filled(7, 5, 42.0).unwrap();
        assert_eq!(img.variance(), 0.0);
    }

    #[test]
    fn min_max_tracks_extremes() {
        let img = GrayImage::from_vec(2, 2, vec![-3.0, 9.0, 0.5, 2.0]).unwrap();
        assert_eq!(img.min_max(), (-3.0, 9.0));
    }

    #[test]
    fn crop_extracts_expected_pixels() {
        let img = ramp(4, 4);
        let sub = img.crop(Rect::new(1, 2, 2, 2)).unwrap();
        assert_eq!(sub.pixels(), &[9.0, 10.0, 13.0, 14.0]);
    }

    #[test]
    fn crop_out_of_bounds_rejected() {
        let img = ramp(4, 4);
        assert!(img.crop(Rect::new(3, 3, 2, 2)).is_err());
    }

    #[test]
    fn rescale_spans_target_range() {
        let mut img = GrayImage::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        img.rescale_to(0.0, 255.0);
        let (lo, hi) = img.min_max();
        assert!((lo - 0.0).abs() < 1e-4);
        assert!((hi - 255.0).abs() < 1e-3);
    }

    #[test]
    fn rescale_flat_image_maps_to_midpoint() {
        let mut img = GrayImage::filled(3, 3, 5.0).unwrap();
        img.rescale_to(0.0, 100.0);
        assert!(img.pixels().iter().all(|&v| (v - 50.0).abs() < 1e-6));
    }

    #[test]
    fn clamp_in_place_limits_values() {
        let mut img = GrayImage::from_vec(2, 2, vec![-5.0, 0.5, 300.0, 128.0]).unwrap();
        img.clamp_in_place(0.0, 255.0);
        assert_eq!(img.pixels(), &[0.0, 0.5, 255.0, 128.0]);
    }
}
