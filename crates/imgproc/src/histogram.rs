//! Gray-level histograms.
//!
//! The paper's introduction motivates example-based MIL retrieval
//! against global-feature systems like IBM's QBIC, where "users can
//! query an image database by average color, histogram, texture" — but
//! such "image queries along these lines are not powerful enough".
//! This module provides the histogram machinery for the QBIC-style
//! comparison baseline (`milr-baseline::histogram`), and general
//! histogram utilities (equalisation) for the substrate.

use crate::gray::GrayImage;

/// A fixed-bin histogram over the `[0, 255]` intensity range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bins: Vec<f64>,
    total: f64,
}

impl Histogram {
    /// Computes a `bins`-bin histogram of an image. Intensities are
    /// clamped into `[0, 255]`.
    ///
    /// # Panics
    /// Panics if `bins == 0`.
    pub fn of(image: &GrayImage, bins: usize) -> Self {
        assert!(bins > 0, "a histogram needs at least one bin");
        let mut counts = vec![0.0f64; bins];
        let scale = bins as f32 / 256.0;
        for &v in image.pixels() {
            let idx = ((v.clamp(0.0, 255.0) * scale) as usize).min(bins - 1);
            counts[idx] += 1.0;
        }
        let total = image.len() as f64;
        Self {
            bins: counts,
            total,
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether the histogram has no bins (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Raw count of one bin.
    ///
    /// # Panics
    /// Panics on an out-of-range bin index.
    pub fn count(&self, bin: usize) -> f64 {
        self.bins[bin]
    }

    /// The normalised (unit-mass) bin values.
    pub fn normalized(&self) -> Vec<f64> {
        if self.total == 0.0 {
            return vec![0.0; self.bins.len()];
        }
        self.bins.iter().map(|&c| c / self.total).collect()
    }

    /// Histogram intersection similarity in `[0, 1]`: `Σ min(pᵢ, qᵢ)`
    /// over normalised bins — the classic QBIC-era similarity.
    ///
    /// # Panics
    /// Panics if the bin counts differ.
    pub fn intersection(&self, other: &Histogram) -> f64 {
        assert_eq!(self.len(), other.len(), "histograms must share a bin count");
        self.normalized()
            .iter()
            .zip(other.normalized())
            .map(|(&p, q)| p.min(q))
            .sum()
    }

    /// Chi-squared distance between normalised histograms (0 for
    /// identical distributions; larger is more different).
    ///
    /// # Panics
    /// Panics if the bin counts differ.
    pub fn chi_squared(&self, other: &Histogram) -> f64 {
        assert_eq!(self.len(), other.len(), "histograms must share a bin count");
        self.normalized()
            .iter()
            .zip(other.normalized())
            .map(|(&p, q)| {
                let denom = p + q;
                if denom <= 0.0 {
                    0.0
                } else {
                    (p - q) * (p - q) / denom
                }
            })
            .sum::<f64>()
            * 0.5
    }

    /// Element-wise mean of several histograms (the "average positive
    /// example" the QBIC baseline queries with).
    ///
    /// # Panics
    /// Panics if the slice is empty or bin counts differ.
    pub fn mean_of(histograms: &[Histogram]) -> Histogram {
        assert!(!histograms.is_empty(), "cannot average zero histograms");
        let bins = histograms[0].len();
        let mut acc = vec![0.0f64; bins];
        let mut total = 0.0f64;
        for h in histograms {
            assert_eq!(h.len(), bins, "histograms must share a bin count");
            for (a, &b) in acc.iter_mut().zip(&h.bins) {
                *a += b;
            }
            total += h.total;
        }
        let n = histograms.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        Histogram {
            bins: acc,
            total: total / n,
        }
    }
}

/// Histogram equalisation: remaps intensities so the cumulative
/// distribution is (approximately) uniform over `[0, 255]`.
pub fn equalize(image: &GrayImage) -> GrayImage {
    let hist = Histogram::of(image, 256);
    let mut cdf = Vec::with_capacity(256);
    let mut run = 0.0f64;
    for bin in 0..256 {
        run += hist.count(bin);
        cdf.push(run);
    }
    let total = *cdf.last().expect("256 bins");
    let mut out = Vec::with_capacity(image.len());
    for &v in image.pixels() {
        let idx = (v.clamp(0.0, 255.0) as usize).min(255);
        out.push((cdf[idx] / total * 255.0) as f32);
    }
    GrayImage::from_vec(image.width(), image.height(), out)
        .expect("equalisation preserves dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_sum_to_pixel_count() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * y) % 256) as f32).unwrap();
        let h = Histogram::of(&img, 32);
        let sum: f64 = (0..32).map(|b| h.count(b)).sum();
        assert_eq!(sum, 256.0);
    }

    #[test]
    fn constant_image_fills_one_bin() {
        let img = GrayImage::filled(8, 8, 128.0).unwrap();
        let h = Histogram::of(&img, 16);
        assert_eq!(h.count(8), 64.0); // 128/256 * 16 = bin 8
        assert_eq!(h.normalized()[8], 1.0);
    }

    #[test]
    fn out_of_range_values_clamp_into_edge_bins() {
        let img = GrayImage::from_vec(2, 1, vec![-50.0, 400.0]).unwrap();
        let h = Histogram::of(&img, 4);
        assert_eq!(h.count(0), 1.0);
        assert_eq!(h.count(3), 1.0);
    }

    #[test]
    fn intersection_is_one_for_identical_and_less_otherwise() {
        let a = GrayImage::from_fn(12, 12, |x, _| (x * 20) as f32).unwrap();
        let b = GrayImage::from_fn(12, 12, |x, _| (x * 20 + 40) as f32).unwrap();
        let ha = Histogram::of(&a, 16);
        let hb = Histogram::of(&b, 16);
        assert!((ha.intersection(&ha) - 1.0).abs() < 1e-12);
        let cross = ha.intersection(&hb);
        assert!(cross < 1.0);
        assert!(cross > 0.0);
        // Symmetry.
        assert!((cross - hb.intersection(&ha)).abs() < 1e-12);
    }

    #[test]
    fn chi_squared_is_zero_for_identical() {
        let img = GrayImage::from_fn(10, 10, |x, y| ((x + y) * 12) as f32).unwrap();
        let h = Histogram::of(&img, 8);
        assert_eq!(h.chi_squared(&h), 0.0);
        let other = Histogram::of(&GrayImage::filled(10, 10, 0.0).unwrap(), 8);
        assert!(h.chi_squared(&other) > 0.1);
    }

    #[test]
    fn mean_of_averages_bins() {
        let a = Histogram::of(&GrayImage::filled(4, 4, 0.0).unwrap(), 4);
        let b = Histogram::of(&GrayImage::filled(4, 4, 255.0).unwrap(), 4);
        let m = Histogram::mean_of(&[a, b]);
        assert_eq!(m.count(0), 8.0);
        assert_eq!(m.count(3), 8.0);
        let n = m.normalized();
        assert!((n[0] - 0.5).abs() < 1e-12);
        assert!((n[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a bin count")]
    fn mismatched_bins_rejected() {
        let img = GrayImage::filled(2, 2, 0.0).unwrap();
        let _ = Histogram::of(&img, 4).intersection(&Histogram::of(&img, 8));
    }

    #[test]
    fn equalization_flattens_the_cdf() {
        // A heavily skewed image (most pixels dark) spreads out after
        // equalisation: the output variance grows.
        let img = GrayImage::from_fn(32, 32, |x, y| {
            if (x + y) % 4 == 0 {
                200.0
            } else {
                (x % 20) as f32
            }
        })
        .unwrap();
        let eq = equalize(&img);
        let (lo, hi) = eq.min_max();
        assert!(
            hi > 200.0,
            "equalised range must reach high intensities, hi = {hi}"
        );
        assert!(lo < 60.0);
        // Flatness: the most-populated coarse bin holds less mass after
        // equalisation (the dark spike gets spread out).
        let max_mass = |image: &GrayImage| {
            Histogram::of(image, 8)
                .normalized()
                .into_iter()
                .fold(0.0f64, f64::max)
        };
        assert!(
            max_mass(&eq) < max_mass(&img),
            "equalisation must flatten the histogram: {} vs {}",
            max_mass(&eq),
            max_mass(&img)
        );
    }

    #[test]
    fn equalizing_a_constant_image_is_stable() {
        let img = GrayImage::filled(6, 6, 42.0).unwrap();
        let eq = equalize(&img);
        // All mass in one bin: every pixel maps to 255 (full CDF).
        assert!(eq.pixels().iter().all(|&v| (v - 255.0).abs() < 1e-3));
    }
}
