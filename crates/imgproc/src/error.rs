//! Error type shared by the image substrate.

use std::fmt;

/// Errors produced by image construction, region extraction and I/O.
#[derive(Debug)]
pub enum ImageError {
    /// The requested dimensions are zero or would overflow the backing
    /// buffer length.
    InvalidDimensions {
        /// Requested width in pixels.
        width: usize,
        /// Requested height in pixels.
        height: usize,
    },
    /// The provided pixel buffer does not match `width * height`
    /// (times the channel count for RGB images).
    BufferSizeMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A region falls (partly) outside the image it is applied to.
    RegionOutOfBounds {
        /// The offending region, formatted as `x,y,w,h`.
        region: (usize, usize, usize, usize),
        /// Image width.
        width: usize,
        /// Image height.
        height: usize,
    },
    /// The target resolution for smoothing-and-sampling cannot be met,
    /// e.g. the region is smaller than the sample grid.
    ResolutionTooLarge {
        /// Requested output side length `h`.
        h: usize,
        /// Source width.
        width: usize,
        /// Source height.
        height: usize,
    },
    /// A PNM stream was malformed.
    PnmParse(String),
    /// Underlying I/O failure while reading or writing PNM data.
    Io(std::io::Error),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidDimensions { width, height } => {
                write!(f, "invalid image dimensions {width}x{height}")
            }
            Self::BufferSizeMismatch { expected, actual } => {
                write!(f, "pixel buffer has {actual} elements, expected {expected}")
            }
            Self::RegionOutOfBounds {
                region,
                width,
                height,
            } => {
                let (x, y, w, h) = region;
                write!(
                    f,
                    "region {x},{y} {w}x{h} exceeds image bounds {width}x{height}"
                )
            }
            Self::ResolutionTooLarge { h, width, height } => {
                write!(
                    f,
                    "cannot sample a {width}x{height} source down to {h}x{h}: \
                     source is smaller than the sample grid"
                )
            }
            Self::PnmParse(msg) => write!(f, "malformed PNM data: {msg}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_dimensions() {
        let e = ImageError::InvalidDimensions {
            width: 0,
            height: 4,
        };
        assert_eq!(e.to_string(), "invalid image dimensions 0x4");
    }

    #[test]
    fn display_buffer_mismatch() {
        let e = ImageError::BufferSizeMismatch {
            expected: 12,
            actual: 9,
        };
        assert!(e.to_string().contains("9 elements"));
        assert!(e.to_string().contains("expected 12"));
    }

    #[test]
    fn display_region_out_of_bounds() {
        let e = ImageError::RegionOutOfBounds {
            region: (8, 8, 4, 4),
            width: 10,
            height: 10,
        };
        assert!(e.to_string().contains("region 8,8 4x4"));
    }

    #[test]
    fn io_error_round_trips_through_source() {
        use std::error::Error as _;
        let inner = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e = ImageError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn resolution_error_message_names_sizes() {
        let e = ImageError::ResolutionTooLarge {
            h: 10,
            width: 4,
            height: 4,
        };
        let s = e.to_string();
        assert!(s.contains("4x4") && s.contains("10x10"));
    }
}
