//! Spatial convolution.
//!
//! §3.1.2 describes the smoothing step as convolution with an
//! `(m/h × n/h)` averaging kernel followed by sub-sampling; the
//! production pipeline fuses both into integral-image block means
//! ([`crate::sample`]), but the general operator is provided here — it
//! backs the [`crate::edge`] detector (the paper's attempted edge
//! features, §5) and is independently useful to library users.
//!
//! Borders are handled by clamping (replicating edge pixels), which
//! preserves the mean level — important since the downstream features
//! are correlation-based.

use crate::error::ImageError;
use crate::gray::GrayImage;

/// A dense 2-D convolution kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    width: usize,
    height: usize,
    weights: Vec<f32>,
}

impl Kernel {
    /// Creates a kernel from row-major weights.
    ///
    /// # Errors
    /// Returns [`ImageError::BufferSizeMismatch`] /
    /// [`ImageError::InvalidDimensions`] for inconsistent inputs.
    /// Kernel sides must be odd so the anchor is the centre pixel.
    pub fn new(width: usize, height: usize, weights: Vec<f32>) -> Result<Self, ImageError> {
        if width == 0 || height == 0 || width.is_multiple_of(2) || height.is_multiple_of(2) {
            return Err(ImageError::InvalidDimensions { width, height });
        }
        if weights.len() != width * height {
            return Err(ImageError::BufferSizeMismatch {
                expected: width * height,
                actual: weights.len(),
            });
        }
        Ok(Self {
            width,
            height,
            weights,
        })
    }

    /// An `n × n` box (averaging) kernel — the paper's smoothing filter.
    ///
    /// # Errors
    /// `n` must be odd.
    pub fn boxcar(n: usize) -> Result<Self, ImageError> {
        let w = 1.0 / (n * n) as f32;
        Self::new(n, n, vec![w; n * n])
    }

    /// A separable Gaussian kernel with standard deviation `sigma`,
    /// truncated at `±3σ` and normalised to unit sum.
    ///
    /// # Panics
    /// Panics if `sigma` is not positive and finite.
    pub fn gaussian(sigma: f32) -> Self {
        assert!(
            sigma > 0.0 && sigma.is_finite(),
            "sigma must be positive, got {sigma}"
        );
        let radius = (3.0 * sigma).ceil() as usize;
        let n = 2 * radius + 1;
        let mut row = Vec::with_capacity(n);
        let denom = 2.0 * sigma * sigma;
        for i in 0..n {
            let d = i as f32 - radius as f32;
            row.push((-d * d / denom).exp());
        }
        let sum: f32 = row.iter().sum();
        for v in &mut row {
            *v /= sum;
        }
        let mut weights = Vec::with_capacity(n * n);
        for y in 0..n {
            for x in 0..n {
                weights.push(row[y] * row[x]);
            }
        }
        Self {
            width: n,
            height: n,
            weights,
        }
    }

    /// Kernel width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Kernel height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sum of weights (1 for smoothing kernels, 0 for derivative ones).
    pub fn weight_sum(&self) -> f32 {
        self.weights.iter().sum()
    }
}

/// Convolves an image with a kernel, clamping at the borders.
pub fn convolve(image: &GrayImage, kernel: &Kernel) -> GrayImage {
    let (w, h) = (image.width(), image.height());
    let rx = (kernel.width / 2) as isize;
    let ry = (kernel.height / 2) as isize;
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let mut acc = 0.0f32;
            let mut widx = 0usize;
            for ky in -ry..=ry {
                let sy = (y + ky).clamp(0, h as isize - 1) as usize;
                for kx in -rx..=rx {
                    let sx = (x + kx).clamp(0, w as isize - 1) as usize;
                    acc += kernel.weights[widx] * image.get(sx, sy);
                    widx += 1;
                }
            }
            out.push(acc);
        }
    }
    GrayImage::from_vec(w, h, out).expect("convolution preserves dimensions")
}

/// Convolves with a separable kernel given as a horizontal and a
/// vertical 1-D profile (two passes; O(n) per pixel per profile length).
///
/// # Panics
/// Panics if either profile has even length or is empty.
pub fn convolve_separable(image: &GrayImage, horizontal: &[f32], vertical: &[f32]) -> GrayImage {
    assert!(
        !horizontal.is_empty() && horizontal.len() % 2 == 1,
        "horizontal profile must have odd length"
    );
    assert!(
        !vertical.is_empty() && vertical.len() % 2 == 1,
        "vertical profile must have odd length"
    );
    let (w, h) = (image.width(), image.height());
    let rx = (horizontal.len() / 2) as isize;
    let ry = (vertical.len() / 2) as isize;

    // Horizontal pass.
    let mut tmp = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w as isize {
            let mut acc = 0.0f32;
            for (i, &k) in horizontal.iter().enumerate() {
                let sx = (x + i as isize - rx).clamp(0, w as isize - 1) as usize;
                acc += k * image.get(sx, y);
            }
            tmp[y * w + x as usize] = acc;
        }
    }
    // Vertical pass.
    let mut out = vec![0.0f32; w * h];
    for y in 0..h as isize {
        for x in 0..w {
            let mut acc = 0.0f32;
            for (i, &k) in vertical.iter().enumerate() {
                let sy = (y + i as isize - ry).clamp(0, h as isize - 1) as usize;
                acc += k * tmp[sy * w + x];
            }
            out[y as usize * w + x] = acc;
        }
    }
    GrayImage::from_vec(w, h, out).expect("convolution preserves dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| (x + 2 * y) as f32).unwrap()
    }

    #[test]
    fn kernel_validation() {
        assert!(Kernel::new(3, 3, vec![0.0; 9]).is_ok());
        assert!(Kernel::new(2, 3, vec![0.0; 6]).is_err()); // even side
        assert!(Kernel::new(3, 3, vec![0.0; 8]).is_err()); // wrong length
        assert!(Kernel::new(0, 1, vec![]).is_err());
    }

    #[test]
    fn boxcar_sums_to_one() {
        let k = Kernel::boxcar(5).unwrap();
        assert!((k.weight_sum() - 1.0).abs() < 1e-6);
        assert!(Kernel::boxcar(4).is_err());
    }

    #[test]
    fn identity_kernel_is_identity() {
        let k = Kernel::new(1, 1, vec![1.0]).unwrap();
        let img = ramp(7, 5);
        assert_eq!(convolve(&img, &k), img);
    }

    #[test]
    fn box_filter_preserves_constants() {
        let img = GrayImage::filled(8, 8, 42.0).unwrap();
        let k = Kernel::boxcar(3).unwrap();
        let out = convolve(&img, &k);
        for &v in out.pixels() {
            assert!((v - 42.0).abs() < 1e-5);
        }
    }

    #[test]
    fn box_filter_averages_neighbourhood() {
        // Single bright pixel spreads into a 3x3 plateau of value/9.
        let mut img = GrayImage::zeros(7, 7).unwrap();
        img.set(3, 3, 9.0);
        let out = convolve(&img, &Kernel::boxcar(3).unwrap());
        assert!((out.get(3, 3) - 1.0).abs() < 1e-6);
        assert!((out.get(2, 3) - 1.0).abs() < 1e-6);
        assert!((out.get(1, 3) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn border_clamping_preserves_flat_rows() {
        // A vertical gradient stays unchanged under a horizontal box blur
        // thanks to clamped borders.
        let img = GrayImage::from_fn(6, 6, |_, y| y as f32 * 10.0).unwrap();
        let out = convolve_separable(&img, &[1.0 / 3.0; 3], &[1.0]);
        for (a, b) in img.pixels().iter().zip(out.pixels()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn separable_matches_dense_for_box() {
        let img = ramp(9, 8);
        let dense = convolve(&img, &Kernel::boxcar(3).unwrap());
        let sep = convolve_separable(&img, &[1.0 / 3.0; 3], &[1.0 / 3.0; 3]);
        for (a, b) in dense.pixels().iter().zip(sep.pixels()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn gaussian_kernel_properties() {
        let k = Kernel::gaussian(1.0);
        assert_eq!(k.width(), 7); // radius 3
        assert!((k.weight_sum() - 1.0).abs() < 1e-5);
        // Centre weight dominates.
        let centre = k.weights[k.weights.len() / 2];
        assert!(k.weights.iter().all(|&w| w <= centre + 1e-9));
    }

    #[test]
    fn gaussian_blur_reduces_variance() {
        let img = GrayImage::from_fn(32, 32, |x, y| ((x * 13 + y * 7) % 17) as f32).unwrap();
        let out = convolve(&img, &Kernel::gaussian(1.5));
        assert!(out.variance() < img.variance() * 0.5);
        // Mean preserved by unit-sum kernel + clamped borders.
        assert!((out.mean() - img.mean()).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn invalid_sigma_rejected() {
        let _ = Kernel::gaussian(0.0);
    }

    #[test]
    #[should_panic(expected = "odd length")]
    fn even_separable_profile_rejected() {
        let img = ramp(4, 4);
        let _ = convolve_separable(&img, &[0.5, 0.5], &[1.0]);
    }
}
