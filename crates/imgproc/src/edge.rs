//! Sobel edge detection.
//!
//! The paper's §5 reports: "We have attempted to preprocess the images
//! with edge detection, and to use line and corner features in the
//! feature vectors. However, the results we have got are not
//! satisfactory." This module implements that preprocessing so the
//! negative result can be reproduced (the `ext-edges` experiment): the
//! retrieval pipeline can run on Sobel gradient-magnitude images instead
//! of raw intensities.

use crate::convolve::convolve_separable;
use crate::gray::GrayImage;

/// Horizontal and vertical Sobel gradients `(g_x, g_y)`.
///
/// Sobel separates as smoothing `[1, 2, 1]` across the derivative
/// direction and differencing `[-1, 0, 1]` along it.
pub fn sobel_gradients(image: &GrayImage) -> (GrayImage, GrayImage) {
    let gx = convolve_separable(image, &[-1.0, 0.0, 1.0], &[1.0, 2.0, 1.0]);
    let gy = convolve_separable(image, &[1.0, 2.0, 1.0], &[-1.0, 0.0, 1.0]);
    (gx, gy)
}

/// Sobel gradient magnitude `sqrt(g_x² + g_y²)`.
pub fn sobel_magnitude(image: &GrayImage) -> GrayImage {
    let (gx, gy) = sobel_gradients(image);
    let mut out = Vec::with_capacity(image.len());
    for (&x, &y) in gx.pixels().iter().zip(gy.pixels()) {
        out.push((x * x + y * y).sqrt());
    }
    GrayImage::from_vec(image.width(), image.height(), out)
        .expect("gradient magnitude preserves dimensions")
}

/// Gradient orientation in radians, in `(-π, π]`, per pixel.
pub fn sobel_orientation(image: &GrayImage) -> GrayImage {
    let (gx, gy) = sobel_gradients(image);
    let mut out = Vec::with_capacity(image.len());
    for (&x, &y) in gx.pixels().iter().zip(gy.pixels()) {
        out.push(y.atan2(x));
    }
    GrayImage::from_vec(image.width(), image.height(), out)
        .expect("orientation preserves dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vertical_step(w: usize, h: usize, at: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, _| if x < at { 0.0 } else { 100.0 }).unwrap()
    }

    #[test]
    fn vertical_edge_has_horizontal_gradient() {
        let img = vertical_step(12, 8, 6);
        let (gx, gy) = sobel_gradients(&img);
        // At the edge column the horizontal gradient is strong ...
        assert!(gx.get(5, 4).abs() > 100.0, "gx = {}", gx.get(5, 4));
        // ... and the vertical gradient vanishes everywhere.
        assert!(gy.pixels().iter().all(|&v| v.abs() < 1e-4));
        // Away from the edge gx vanishes too.
        assert!(gx.get(1, 4).abs() < 1e-4);
        assert!(gx.get(10, 4).abs() < 1e-4);
    }

    #[test]
    fn horizontal_edge_has_vertical_gradient() {
        let img = GrayImage::from_fn(8, 12, |_, y| if y < 6 { 0.0 } else { 50.0 }).unwrap();
        let (gx, gy) = sobel_gradients(&img);
        assert!(gx.pixels().iter().all(|&v| v.abs() < 1e-4));
        assert!(gy.get(4, 5).abs() > 50.0);
    }

    #[test]
    fn magnitude_is_rotation_symmetric_for_steps() {
        let v = vertical_step(16, 16, 8);
        let himg = GrayImage::from_fn(16, 16, |_, y| if y < 8 { 0.0 } else { 100.0 }).unwrap();
        let mv = sobel_magnitude(&v);
        let mh = sobel_magnitude(&himg);
        // Peak magnitudes at the respective edges must match.
        let peak_v = mv.pixels().iter().cloned().fold(0.0f32, f32::max);
        let peak_h = mh.pixels().iter().cloned().fold(0.0f32, f32::max);
        assert!((peak_v - peak_h).abs() < 1e-3);
    }

    #[test]
    fn flat_image_has_zero_magnitude() {
        let img = GrayImage::filled(10, 10, 77.0).unwrap();
        let m = sobel_magnitude(&img);
        assert!(m.pixels().iter().all(|&v| v.abs() < 1e-4));
    }

    #[test]
    fn orientation_points_across_the_edge() {
        let img = vertical_step(12, 8, 6);
        let o = sobel_orientation(&img);
        // Rising edge in +x direction: gradient points along +x, angle 0.
        assert!(o.get(5, 4).abs() < 1e-3, "angle = {}", o.get(5, 4));
    }

    #[test]
    fn magnitude_is_nonnegative() {
        let img = GrayImage::from_fn(20, 20, |x, y| ((x * 31 + y * 17) % 97) as f32).unwrap();
        assert!(sobel_magnitude(&img).pixels().iter().all(|&v| v >= 0.0));
    }
}
