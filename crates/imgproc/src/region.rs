//! Sub-region geometry and the paper's region layouts (§3.2, Fig. 3-5).
//!
//! The paper considers a fixed family of overlapping rectangular
//! sub-regions per image. With the standard layout there are 20 regions,
//! each contributing the region itself plus its left-right mirror — up to
//! 40 instances per bag. Section 4.2.2 additionally evaluates smaller and
//! larger families yielding 18 and 84 instances per bag; those are the
//! [`RegionLayout::Small`] (9 regions) and [`RegionLayout::Large`]
//! (42 regions) variants here.
//!
//! The exact rectangles in Fig. 3-5 are not tabulated in the paper, so the
//! layouts are generated from scale/grid pyramids: a region family is the
//! union of `g × g` grids of windows whose side is a fixed fraction of the
//! image, positioned so their offsets evenly cover the image (adjacent
//! windows overlap whenever `g > 1/fraction`), plus the four half-image
//! windows and centred windows. Counts are locked by unit tests.

use crate::error::ImageError;

/// An axis-aligned rectangle in pixel coordinates (top-left origin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x: usize,
    /// Top edge (inclusive).
    pub y: usize,
    /// Width in pixels (non-zero for valid regions).
    pub width: usize,
    /// Height in pixels (non-zero for valid regions).
    pub height: usize,
}

impl Rect {
    /// Creates a rectangle at `(x, y)` with the given size.
    pub const fn new(x: usize, y: usize, width: usize, height: usize) -> Self {
        Self {
            x,
            y,
            width,
            height,
        }
    }

    /// A rectangle covering an entire `width × height` image.
    pub const fn full(width: usize, height: usize) -> Self {
        Self {
            x: 0,
            y: 0,
            width,
            height,
        }
    }

    /// Number of pixels covered.
    #[inline]
    pub const fn area(&self) -> usize {
        self.width * self.height
    }

    /// Whether the rectangle lies entirely inside a `width × height` image.
    #[inline]
    pub const fn fits_within(&self, width: usize, height: usize) -> bool {
        self.width > 0
            && self.height > 0
            && self.x + self.width <= width
            && self.y + self.height <= height
    }

    /// Exclusive right edge.
    #[inline]
    pub const fn right(&self) -> usize {
        self.x + self.width
    }

    /// Exclusive bottom edge.
    #[inline]
    pub const fn bottom(&self) -> usize {
        self.y + self.height
    }

    /// Intersection with another rectangle, if non-empty.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.right().min(other.right());
        let y1 = self.bottom().min(other.bottom());
        if x0 < x1 && y0 < y1 {
            Some(Rect::new(x0, y0, x1 - x0, y1 - y0))
        } else {
            None
        }
    }

    /// Validates the rectangle against an image size.
    ///
    /// # Errors
    /// Returns [`ImageError::RegionOutOfBounds`] when the rectangle does
    /// not fit.
    pub fn check_within(&self, width: usize, height: usize) -> Result<(), ImageError> {
        if self.fits_within(width, height) {
            Ok(())
        } else {
            Err(ImageError::RegionOutOfBounds {
                region: (self.x, self.y, self.width, self.height),
                width,
                height,
            })
        }
    }
}

/// The region families studied in the paper.
///
/// Each region later contributes two instances (itself and its mirror),
/// so the instance budgets are 18 / 40 / 84 before variance filtering —
/// exactly the three settings of Fig. 4-18.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionLayout {
    /// 9 regions → up to 18 instances per bag.
    Small,
    /// 20 regions → up to 40 instances per bag (the paper's default,
    /// Fig. 3-5).
    Standard,
    /// 42 regions → up to 84 instances per bag.
    Large,
}

impl RegionLayout {
    /// Number of regions this layout generates for any image size.
    pub const fn region_count(self) -> usize {
        match self {
            Self::Small => 9,
            Self::Standard => 20,
            Self::Large => 42,
        }
    }

    /// Upper bound on instances per bag (2 × regions: original + mirror).
    pub const fn max_instances(self) -> usize {
        2 * self.region_count()
    }

    /// Generates the concrete rectangles for a `width × height` image.
    ///
    /// All returned rectangles fit within the image. Degenerate
    /// (duplicate) rectangles can occur on very small images where
    /// different fractional windows round to the same pixels; callers
    /// that care should deduplicate.
    ///
    /// # Errors
    /// Returns [`ImageError::InvalidDimensions`] if the image is smaller
    /// than 4×4, below which fractional windows collapse.
    pub fn regions(self, width: usize, height: usize) -> Result<Vec<Rect>, ImageError> {
        if width < 4 || height < 4 {
            return Err(ImageError::InvalidDimensions { width, height });
        }
        let mut out = Vec::with_capacity(self.region_count());
        match self {
            Self::Small => {
                // 1 whole + 4 quadrant-scale (2x2 grid at 0.6) + 4 halves.
                out.push(Rect::full(width, height));
                push_grid(&mut out, width, height, 0.6, 2);
                push_halves(&mut out, width, height);
            }
            Self::Standard => {
                // 1 whole + 4 (2x2 @ 0.75) + 9 (3x3 @ 0.5) + 4 halves
                // + 2 centred (0.6 and 0.4) = 20.
                out.push(Rect::full(width, height));
                push_grid(&mut out, width, height, 0.75, 2);
                push_grid(&mut out, width, height, 0.5, 3);
                push_halves(&mut out, width, height);
                out.push(centered(width, height, 0.6));
                out.push(centered(width, height, 0.4));
            }
            Self::Large => {
                // 1 whole + 4 (2x2 @ 0.75) + 9 (3x3 @ 0.5) + 16 (4x4 @ 0.4)
                // + 4 (2x2 @ 0.6) + 4 halves + 4 centred
                //   (0.8, 0.6, 0.45, 0.3) = 42.
                out.push(Rect::full(width, height));
                push_grid(&mut out, width, height, 0.75, 2);
                push_grid(&mut out, width, height, 0.5, 3);
                push_grid(&mut out, width, height, 0.4, 4);
                push_grid(&mut out, width, height, 0.6, 2);
                push_halves(&mut out, width, height);
                out.push(centered(width, height, 0.8));
                out.push(centered(width, height, 0.6));
                out.push(centered(width, height, 0.45));
                out.push(centered(width, height, 0.3));
            }
        }
        debug_assert_eq!(out.len(), self.region_count());
        for r in &out {
            debug_assert!(r.fits_within(width, height), "layout produced {r:?}");
        }
        Ok(out)
    }
}

/// A `g × g` grid of windows whose side is `fraction` of each image
/// dimension, with offsets evenly covering `[0, (1-fraction)·dim]`.
fn push_grid(out: &mut Vec<Rect>, width: usize, height: usize, fraction: f64, g: usize) {
    let w = window_len(width, fraction);
    let h = window_len(height, fraction);
    for gy in 0..g {
        for gx in 0..g {
            let x = offset(width, w, gx, g);
            let y = offset(height, h, gy, g);
            out.push(Rect::new(x, y, w, h));
        }
    }
}

/// Top, bottom, left and right half-image windows.
fn push_halves(out: &mut Vec<Rect>, width: usize, height: usize) {
    let hw = (width / 2).max(1);
    let hh = (height / 2).max(1);
    out.push(Rect::new(0, 0, width, hh)); // top half
    out.push(Rect::new(0, height - hh, width, hh)); // bottom half
    out.push(Rect::new(0, 0, hw, height)); // left half
    out.push(Rect::new(width - hw, 0, hw, height)); // right half
}

/// A centred window whose side is `fraction` of each dimension.
fn centered(width: usize, height: usize, fraction: f64) -> Rect {
    let w = window_len(width, fraction);
    let h = window_len(height, fraction);
    Rect::new((width - w) / 2, (height - h) / 2, w, h)
}

fn window_len(dim: usize, fraction: f64) -> usize {
    (((dim as f64) * fraction).round() as usize).clamp(1, dim)
}

fn offset(dim: usize, window: usize, index: usize, count: usize) -> usize {
    let slack = dim - window;
    if count <= 1 {
        slack / 2
    } else {
        // Evenly distribute `count` offsets over [0, slack].
        (slack as f64 * index as f64 / (count - 1) as f64).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_area_and_edges() {
        let r = Rect::new(2, 3, 4, 5);
        assert_eq!(r.area(), 20);
        assert_eq!(r.right(), 6);
        assert_eq!(r.bottom(), 8);
    }

    #[test]
    fn rect_fit_checks() {
        assert!(Rect::new(0, 0, 10, 10).fits_within(10, 10));
        assert!(!Rect::new(1, 0, 10, 10).fits_within(10, 10));
        assert!(!Rect::new(0, 0, 0, 5).fits_within(10, 10));
        assert!(Rect::new(5, 5, 5, 5).check_within(10, 10).is_ok());
        assert!(Rect::new(6, 5, 5, 5).check_within(10, 10).is_err());
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 4, 4);
        assert_eq!(a.intersect(&b), Some(Rect::new(2, 2, 2, 2)));
        let c = Rect::new(4, 4, 2, 2);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn layout_counts_match_paper() {
        assert_eq!(RegionLayout::Small.region_count(), 9);
        assert_eq!(RegionLayout::Standard.region_count(), 20);
        assert_eq!(RegionLayout::Large.region_count(), 42);
        assert_eq!(RegionLayout::Small.max_instances(), 18);
        assert_eq!(RegionLayout::Standard.max_instances(), 40);
        assert_eq!(RegionLayout::Large.max_instances(), 84);
    }

    #[test]
    fn generated_counts_match_declared_counts() {
        for layout in [
            RegionLayout::Small,
            RegionLayout::Standard,
            RegionLayout::Large,
        ] {
            for (w, h) in [(128, 96), (96, 96), (64, 48), (33, 47)] {
                let regions = layout.regions(w, h).unwrap();
                assert_eq!(
                    regions.len(),
                    layout.region_count(),
                    "{layout:?} at {w}x{h}"
                );
            }
        }
    }

    #[test]
    fn all_regions_fit_inside_image() {
        for layout in [
            RegionLayout::Small,
            RegionLayout::Standard,
            RegionLayout::Large,
        ] {
            let regions = layout.regions(120, 80).unwrap();
            for r in regions {
                assert!(r.fits_within(120, 80), "{r:?}");
            }
        }
    }

    #[test]
    fn standard_layout_includes_whole_image() {
        let regions = RegionLayout::Standard.regions(100, 60).unwrap();
        assert_eq!(regions[0], Rect::full(100, 60));
    }

    #[test]
    fn grid_windows_overlap_for_three_by_three_half_scale() {
        // 3x3 grid of half-size windows must overlap: stride = slack/2 =
        // dim/4 < window = dim/2.
        let regions = RegionLayout::Standard.regions(100, 100).unwrap();
        // Regions 5..14 are the 3x3 @ 0.5 grid.
        let grid = &regions[5..14];
        let a = grid[0];
        let b = grid[1];
        assert!(
            a.intersect(&b).is_some(),
            "adjacent half-scale windows must overlap"
        );
    }

    #[test]
    fn too_small_images_rejected() {
        assert!(RegionLayout::Standard.regions(3, 50).is_err());
        assert!(RegionLayout::Standard.regions(50, 2).is_err());
    }

    #[test]
    fn standard_regions_are_distinct_on_reasonable_images() {
        use std::collections::HashSet;
        let regions = RegionLayout::Standard.regions(128, 96).unwrap();
        let set: HashSet<Rect> = regions.iter().copied().collect();
        assert_eq!(
            set.len(),
            regions.len(),
            "regions should be distinct at 128x96"
        );
    }

    #[test]
    fn regions_cover_the_image_corners() {
        // Union of the standard family must touch all four corners (via
        // the whole-image region at minimum).
        let regions = RegionLayout::Standard.regions(64, 64).unwrap();
        assert!(regions.iter().any(|r| r.x == 0 && r.y == 0));
        assert!(regions.iter().any(|r| r.right() == 64 && r.bottom() == 64));
    }
}
