//! Correlation-coefficient similarity measures (§3.1.1, §3.3).
//!
//! The plain correlation coefficient of two equal-length signals is
//!
//! ```text
//! r = (1/n) Σ (f1(t) − f̄1)(f2(t) − f̄2) / (σ_f1 σ_f2)
//! ```
//!
//! with population (1/n) standard deviations — the paper notes the
//! `1/(n−1)` convention works identically for its purposes. For 2-D
//! signals an `m × n` matrix is treated as one `mn`-dimensional vector.
//!
//! §3.3 generalises this to the *weighted* correlation coefficient: a
//! non-negative weight `w_k` per dimension appears in the cross term and
//! in "weighted" standard deviations, while the means stay unweighted:
//!
//! ```text
//! r_w = (1/n) Σ w_k (f1(k) − f̄1)(f2(k) − f̄2) / (σ'_f1 σ'_f2)
//! σ'_f = sqrt( (1/n) Σ w_k (f(k) − f̄)² )
//! ```
//!
//! With all weights 1 this reduces exactly to the plain coefficient.
//! Degenerate inputs (a flat signal, or all-zero weights) have no defined
//! correlation; these return 0, i.e. "no similarity signal".

use crate::gray::GrayImage;

/// Mean of a slice (empty slices yield 0).
fn mean(v: &[f32]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len() as f64
}

/// Plain correlation coefficient of two equal-length signals, in
/// `[-1, 1]` (clamped against floating-point drift).
///
/// Returns 0 when either signal is flat or the slices are empty.
///
/// # Examples
/// ```
/// use milr_imgproc::correlation;
///
/// let f: Vec<f32> = (0..64).map(|t| (t as f32 * 0.2).sin()).collect();
/// let inverted: Vec<f32> = f.iter().map(|&v| -v).collect();
/// assert!((correlation(&f, &f) - 1.0).abs() < 1e-9);     // Fig. 3-1(a)
/// assert!((correlation(&f, &inverted) + 1.0).abs() < 1e-9); // Fig. 3-1(c)
/// ```
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn correlation(f1: &[f32], f2: &[f32]) -> f64 {
    assert_eq!(
        f1.len(),
        f2.len(),
        "correlation requires equal-length signals"
    );
    if f1.is_empty() {
        return 0.0;
    }
    let n = f1.len() as f64;
    let m1 = mean(f1);
    let m2 = mean(f2);
    let mut cross = 0.0f64;
    let mut ss1 = 0.0f64;
    let mut ss2 = 0.0f64;
    for (&a, &b) in f1.iter().zip(f2) {
        let d1 = f64::from(a) - m1;
        let d2 = f64::from(b) - m2;
        cross += d1 * d2;
        ss1 += d1 * d1;
        ss2 += d2 * d2;
    }
    let denom = (ss1 / n).sqrt() * (ss2 / n).sqrt();
    if denom <= f64::EPSILON {
        return 0.0;
    }
    (cross / n / denom).clamp(-1.0, 1.0)
}

/// Correlation coefficient of two gray images of identical dimensions,
/// treating each as one long vector (§3.1.1's 2-D form).
///
/// # Panics
/// Panics if the images differ in size.
pub fn correlation_2d(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "correlation_2d requires identically-sized images"
    );
    correlation(a.pixels(), b.pixels())
}

/// Weighted correlation coefficient (§3.3) of two equal-length feature
/// vectors under non-negative per-dimension weights.
///
/// Returns 0 for degenerate inputs (flat signal under the weights, or
/// all-zero weights).
///
/// # Panics
/// Panics if the three slices disagree in length, or any weight is
/// negative.
pub fn weighted_correlation(f1: &[f32], f2: &[f32], weights: &[f64]) -> f64 {
    assert_eq!(
        f1.len(),
        f2.len(),
        "weighted correlation requires equal-length signals"
    );
    assert_eq!(f1.len(), weights.len(), "one weight per dimension required");
    if f1.is_empty() {
        return 0.0;
    }
    let n = f1.len() as f64;
    let m1 = mean(f1);
    let m2 = mean(f2);
    let mut cross = 0.0f64;
    let mut ss1 = 0.0f64;
    let mut ss2 = 0.0f64;
    for ((&a, &b), &w) in f1.iter().zip(f2).zip(weights) {
        assert!(w >= 0.0, "weights must be non-negative, got {w}");
        let d1 = f64::from(a) - m1;
        let d2 = f64::from(b) - m2;
        cross += w * d1 * d2;
        ss1 += w * d1 * d1;
        ss2 += w * d2 * d2;
    }
    let denom = (ss1 / n).sqrt() * (ss2 / n).sqrt();
    if denom <= f64::EPSILON {
        return 0.0;
    }
    (cross / n / denom).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_signals_correlate_perfectly() {
        // Fig 3-1(a): r = 1.
        let f: Vec<f32> = (0..32).map(|t| (t as f32 * 0.3).sin()).collect();
        assert!((correlation(&f, &f) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_signals_correlate_negatively() {
        // Fig 3-1(c): r = -1.
        let f: Vec<f32> = (0..32).map(|t| (t as f32 * 0.3).sin()).collect();
        let g: Vec<f32> = f.iter().map(|&v| -v).collect();
        assert!((correlation(&f, &g) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn affine_transform_does_not_change_correlation() {
        let f: Vec<f32> = (0..20).map(|t| (t * t) as f32).collect();
        let g: Vec<f32> = f.iter().map(|&v| 3.0 * v + 100.0).collect();
        assert!((correlation(&f, &g) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn orthogonal_signals_have_near_zero_correlation() {
        // Fig 3-1(b): r ≈ 0 — a sine against a cosine over whole periods.
        let n = 360;
        let f: Vec<f32> = (0..n).map(|t| (t as f32).to_radians().sin()).collect();
        let g: Vec<f32> = (0..n).map(|t| (t as f32).to_radians().cos()).collect();
        assert!(correlation(&f, &g).abs() < 1e-3);
    }

    #[test]
    fn flat_signal_yields_zero() {
        let f = vec![5.0f32; 10];
        let g: Vec<f32> = (0..10).map(|t| t as f32).collect();
        assert_eq!(correlation(&f, &g), 0.0);
        assert_eq!(correlation(&g, &f), 0.0);
    }

    #[test]
    fn empty_signals_yield_zero() {
        assert_eq!(correlation(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = correlation(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn two_dimensional_matches_flattened() {
        let a = GrayImage::from_fn(4, 3, |x, y| (x * y) as f32 + 1.0).unwrap();
        let b = GrayImage::from_fn(4, 3, |x, y| (x + y) as f32).unwrap();
        assert_eq!(correlation_2d(&a, &b), correlation(a.pixels(), b.pixels()));
    }

    #[test]
    fn unit_weights_reduce_to_plain_correlation() {
        let f: Vec<f32> = (0..25).map(|t| ((t * 3) % 7) as f32).collect();
        let g: Vec<f32> = (0..25).map(|t| ((t * 5) % 11) as f32).collect();
        let w = vec![1.0f64; 25];
        assert!((weighted_correlation(&f, &g, &w) - correlation(&f, &g)).abs() < 1e-12);
    }

    #[test]
    fn uniform_weight_scaling_is_invariant() {
        let f: Vec<f32> = (0..16).map(|t| (t as f32).sqrt()).collect();
        let g: Vec<f32> = (0..16).map(|t| (t as f32 * 0.5).cos()).collect();
        let w1 = vec![1.0f64; 16];
        let w2 = vec![4.0f64; 16];
        let r1 = weighted_correlation(&f, &g, &w1);
        let r2 = weighted_correlation(&f, &g, &w2);
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn weights_can_mask_disagreeing_dimensions() {
        // Two zero-mean vectors agree on the first half and are inverted
        // on the second; zeroing the disagreeing half pushes the weighted
        // correlation to 1. (Means stay unweighted per §3.3, so the
        // construction keeps both means at zero.)
        let f: Vec<f32> = vec![-2.0, -1.0, 0.0, 1.0, 2.0, -2.0, -1.0, 0.0, 1.0, 2.0];
        let g: Vec<f32> = vec![-2.0, -1.0, 0.0, 1.0, 2.0, 2.0, 1.0, 0.0, -1.0, -2.0];
        let mut w = vec![1.0f64; 10];
        let mixed = weighted_correlation(&f, &g, &w);
        assert!(
            mixed < 0.5,
            "full-vector correlation should be weak, got {mixed}"
        );
        for x in &mut w[5..] {
            *x = 0.0;
        }
        let masked = weighted_correlation(&f, &g, &w);
        assert!(masked > mixed);
        assert!(
            masked > 0.99,
            "masked correlation should be ~1, got {masked}"
        );
    }

    #[test]
    fn all_zero_weights_yield_zero() {
        let f: Vec<f32> = (0..8).map(|t| t as f32).collect();
        let w = vec![0.0f64; 8];
        assert_eq!(weighted_correlation(&f, &f, &w), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let f = [1.0f32, 2.0];
        let _ = weighted_correlation(&f, &f, &[1.0, -0.5]);
    }

    #[test]
    fn correlation_is_symmetric() {
        let f: Vec<f32> = (0..30).map(|t| ((t * 13) % 17) as f32).collect();
        let g: Vec<f32> = (0..30).map(|t| ((t * 7) % 19) as f32).collect();
        assert!((correlation(&f, &g) - correlation(&g, &f)).abs() < 1e-12);
        let w: Vec<f64> = (0..30).map(|t| (t % 3) as f64).collect();
        assert!(
            (weighted_correlation(&f, &g, &w) - weighted_correlation(&g, &f, &w)).abs() < 1e-12
        );
    }
}
