//! Mean/σ normalisation and the §3.4 correlation↔distance equivalence.
//!
//! Define `B = (A − Ā) / σ'_A`, where `Ā` is the mean of `A`'s entries
//! and `σ'_A` the *weighted* standard deviation
//! `sqrt((1/n) Σ w_k (A_k − Ā)²)`. The paper proves (§3.4):
//!
//! * **Lemma** `Σ w_k B_k² = n`, and consequently
//! * **Claim** `‖B_ij − B_lm‖²_w = 2n − 2n·Corr_w(A_ij, A_lm)` —
//!   ranking by weighted Euclidean distance on normalised vectors is
//!   ranking by weighted correlation on raw vectors, reversed.
//!
//! Database preprocessing normalises with all weights 1 (§3.5 step 4:
//! "All weights are 1 to start with"); the Diverse Density stage then
//! learns weights on top of the normalised vectors.

use crate::error::ImageError;

/// A feature vector normalised per §3.4, carrying the statistics of the
/// raw vector it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedVector {
    /// Normalised entries `(A_k − Ā) / σ'_A`.
    pub values: Vec<f32>,
    /// Mean of the raw vector.
    pub raw_mean: f32,
    /// Weighted standard deviation of the raw vector (the divisor used).
    pub raw_std: f32,
}

impl NormalizedVector {
    /// Normalises `raw` under unit weights (the preprocessing default).
    ///
    /// # Errors
    /// Returns [`NormalizeError::Empty`] for an empty vector and
    /// [`NormalizeError::FlatVector`] when the standard deviation is
    /// (numerically) zero.
    pub fn unit(raw: &[f32]) -> Result<Self, NormalizeError> {
        let w = vec![1.0f64; raw.len()];
        Self::weighted(raw, &w)
    }

    /// Normalises `raw` using the weighted standard deviation under
    /// `weights`.
    ///
    /// # Errors
    /// * [`NormalizeError::Empty`] for an empty vector.
    /// * [`NormalizeError::FlatVector`] when the weighted deviation is
    ///   (numerically) zero — the paper's variance filter removes such
    ///   regions before this point.
    ///
    /// # Panics
    /// Panics if `weights.len() != raw.len()`.
    pub fn weighted(raw: &[f32], weights: &[f64]) -> Result<Self, NormalizeError> {
        assert_eq!(
            raw.len(),
            weights.len(),
            "one weight per dimension required"
        );
        if raw.is_empty() {
            return Err(NormalizeError::Empty);
        }
        let n = raw.len() as f64;
        let mean = raw.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let wss: f64 = raw
            .iter()
            .zip(weights)
            .map(|(&v, &w)| {
                let d = f64::from(v) - mean;
                w * d * d
            })
            .sum();
        let std = (wss / n).sqrt();
        if std <= 1e-12 {
            return Err(NormalizeError::FlatVector { std });
        }
        let values = raw
            .iter()
            .map(|&v| ((f64::from(v) - mean) / std) as f32)
            .collect();
        Ok(Self {
            values,
            raw_mean: mean as f32,
            raw_std: std as f32,
        })
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector has no dimensions (never true for constructed
    /// values).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Failure modes of §3.4 normalisation.
#[derive(Debug, Clone, PartialEq)]
pub enum NormalizeError {
    /// The input vector had no entries.
    Empty,
    /// The (weighted) standard deviation vanished; the vector carries no
    /// contrast to normalise.
    FlatVector {
        /// The offending deviation value.
        std: f64,
    },
}

impl std::fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "cannot normalise an empty vector"),
            Self::FlatVector { std } => {
                write!(f, "cannot normalise a flat vector (weighted std = {std:e})")
            }
        }
    }
}

impl std::error::Error for NormalizeError {}

impl From<NormalizeError> for ImageError {
    fn from(e: NormalizeError) -> Self {
        ImageError::PnmParse(format!("normalisation failed: {e}"))
    }
}

/// Weighted squared Euclidean distance `Σ w_k (a_k − b_k)²`.
///
/// # Panics
/// Panics if the slice lengths disagree.
pub fn weighted_sq_distance(a: &[f32], b: &[f32], weights: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal-length vectors");
    assert_eq!(a.len(), weights.len(), "one weight per dimension required");
    a.iter()
        .zip(b)
        .zip(weights)
        .map(|((&x, &y), &w)| {
            let d = f64::from(x) - f64::from(y);
            w * d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::weighted_correlation;

    #[test]
    fn unit_normalisation_has_zero_mean_unit_std() {
        let raw: Vec<f32> = (0..50).map(|t| ((t * 17) % 23) as f32).collect();
        let nv = NormalizedVector::unit(&raw).unwrap();
        let n = nv.values.len() as f64;
        let mean: f64 = nv.values.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let var: f64 = nv
            .values
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lemma_weighted_norm_equals_n() {
        // §3.4 Lemma: Σ w_k B_k² = n when B is normalised with the same
        // weights.
        let raw: Vec<f32> = (0..36).map(|t| ((t * 7) % 13) as f32).collect();
        let weights: Vec<f64> = (0..36).map(|t| 0.25 + (t % 5) as f64 * 0.3).collect();
        let nv = NormalizedVector::weighted(&raw, &weights).unwrap();
        let norm: f64 = nv
            .values
            .iter()
            .zip(&weights)
            .map(|(&b, &w)| w * f64::from(b) * f64::from(b))
            .sum();
        assert!((norm - 36.0).abs() < 1e-4, "Σ w B² = {norm}, expected 36");
    }

    #[test]
    fn claim_distance_reflects_correlation() {
        // §3.4 Claim: ‖B1 − B2‖²_w = 2n − 2n·Corr_w(A1, A2).
        let a1: Vec<f32> = (0..24).map(|t| ((t * 11) % 19) as f32).collect();
        let a2: Vec<f32> = (0..24).map(|t| ((t * 5 + 3) % 17) as f32).collect();
        let weights: Vec<f64> = (0..24).map(|t| 0.5 + (t % 3) as f64 * 0.5).collect();
        let b1 = NormalizedVector::weighted(&a1, &weights).unwrap();
        let b2 = NormalizedVector::weighted(&a2, &weights).unwrap();
        let dist = weighted_sq_distance(&b1.values, &b2.values, &weights);
        let corr = weighted_correlation(&a1, &a2, &weights);
        let n = 24.0;
        assert!(
            (dist - (2.0 * n - 2.0 * n * corr)).abs() < 1e-3,
            "dist = {dist}, 2n(1-corr) = {}",
            2.0 * n - 2.0 * n * corr
        );
    }

    #[test]
    fn ranking_by_distance_reverses_ranking_by_correlation() {
        // Three raw vectors: a2 is closer (in correlation) to a1 than a3
        // is, so ‖B1 − B2‖ must be smaller than ‖B1 − B3‖.
        let a1: Vec<f32> = (0..30).map(|t| (t as f32 * 0.21).sin()).collect();
        let a2: Vec<f32> = (0..30)
            .map(|t| (t as f32 * 0.21).sin() + 0.1 * (t as f32 * 0.9).cos())
            .collect();
        let a3: Vec<f32> = (0..30).map(|t| (t as f32 * 0.63).cos()).collect();
        let w = vec![1.0f64; 30];
        let c12 = weighted_correlation(&a1, &a2, &w);
        let c13 = weighted_correlation(&a1, &a3, &w);
        assert!(c12 > c13, "test construction: a2 should correlate better");
        let b1 = NormalizedVector::unit(&a1).unwrap();
        let b2 = NormalizedVector::unit(&a2).unwrap();
        let b3 = NormalizedVector::unit(&a3).unwrap();
        let d12 = weighted_sq_distance(&b1.values, &b2.values, &w);
        let d13 = weighted_sq_distance(&b1.values, &b3.values, &w);
        assert!(d12 < d13, "higher correlation must mean smaller distance");
    }

    #[test]
    fn flat_vector_rejected() {
        let raw = vec![3.0f32; 16];
        assert!(matches!(
            NormalizedVector::unit(&raw),
            Err(NormalizeError::FlatVector { .. })
        ));
    }

    #[test]
    fn empty_vector_rejected() {
        assert_eq!(NormalizedVector::unit(&[]), Err(NormalizeError::Empty));
    }

    #[test]
    fn statistics_are_recorded() {
        let raw = vec![1.0f32, 3.0];
        let nv = NormalizedVector::unit(&raw).unwrap();
        assert!((nv.raw_mean - 2.0).abs() < 1e-6);
        assert!((nv.raw_std - 1.0).abs() < 1e-6);
        assert_eq!(nv.values, vec![-1.0, 1.0]);
    }

    #[test]
    fn distance_of_identical_vectors_is_zero() {
        let v: Vec<f32> = (0..12).map(|t| t as f32).collect();
        let w = vec![2.0f64; 12];
        assert_eq!(weighted_sq_distance(&v, &v, &w), 0.0);
    }

    #[test]
    fn zero_weight_dimensions_do_not_contribute() {
        let a = [1.0f32, 5.0];
        let b = [1.0f32, 100.0];
        assert_eq!(weighted_sq_distance(&a, &b, &[1.0, 0.0]), 0.0);
    }
}
