//! Summed-area tables (integral images).
//!
//! The smoothing-and-sampling operator of §3.1.2 averages many
//! overlapping blocks per region; with 40 sub-pictures per image and 100
//! blocks per sub-picture a naive implementation touches every pixel
//! thousands of times. An integral image reduces any block sum to four
//! table lookups, making database preprocessing linear in the number of
//! pixels. A squared variant supports O(1) block variance, used by the
//! low-variance region filter (§3.2).

use crate::gray::GrayImage;
use crate::region::Rect;

/// Summed-area table over a gray image, with a parallel table of squared
/// values for O(1) variance queries.
///
/// Sums are accumulated in `f64`: an 8-bit 4096×4096 image sums to ~4.3e9,
/// beyond exact `f32` integer range, and squared sums grow much faster.
///
/// # Examples
/// ```
/// use milr_imgproc::{GrayImage, IntegralImage};
///
/// let image = GrayImage::from_fn(8, 8, |x, y| (x + y) as f32).unwrap();
/// let integral = IntegralImage::new(&image);
/// // Mean over the 2x2 block at (3, 3): values 6, 7, 7, 8.
/// assert!((integral.block_mean(3, 3, 5, 5) - 7.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// `(width+1) × (height+1)` table; entry `(x, y)` holds the sum over
    /// pixels `[0, x) × [0, y)`.
    sum: Vec<f64>,
    /// Same layout for squared pixel values.
    sum_sq: Vec<f64>,
}

impl IntegralImage {
    /// Builds both tables in a single pass over the image.
    pub fn new(image: &GrayImage) -> Self {
        let width = image.width();
        let height = image.height();
        let stride = width + 1;
        let mut sum = vec![0.0f64; stride * (height + 1)];
        let mut sum_sq = vec![0.0f64; stride * (height + 1)];
        for y in 0..height {
            let row = image.row(y);
            let mut run = 0.0f64;
            let mut run_sq = 0.0f64;
            let above = y * stride;
            let here = (y + 1) * stride;
            for (x, &v) in row.iter().enumerate() {
                let v = f64::from(v);
                run += v;
                run_sq += v * v;
                sum[here + x + 1] = sum[above + x + 1] + run;
                sum_sq[here + x + 1] = sum_sq[above + x + 1] + run_sq;
            }
        }
        Self {
            width,
            height,
            sum,
            sum_sq,
        }
    }

    /// Width of the source image.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the source image.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sum of pixels in the half-open block `[x0, x1) × [y0, y1)`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the block is inverted or exceeds the
    /// image bounds.
    #[inline]
    pub fn block_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        debug_assert!(x0 <= x1 && y0 <= y1 && x1 <= self.width && y1 <= self.height);
        let s = self.width + 1;
        self.sum[y1 * s + x1] - self.sum[y0 * s + x1] - self.sum[y1 * s + x0]
            + self.sum[y0 * s + x0]
    }

    /// Sum of squared pixels in the half-open block `[x0, x1) × [y0, y1)`.
    #[inline]
    pub fn block_sum_sq(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        debug_assert!(x0 <= x1 && y0 <= y1 && x1 <= self.width && y1 <= self.height);
        let s = self.width + 1;
        self.sum_sq[y1 * s + x1] - self.sum_sq[y0 * s + x1] - self.sum_sq[y1 * s + x0]
            + self.sum_sq[y0 * s + x0]
    }

    /// Mean intensity over a half-open block. Empty blocks yield 0.
    #[inline]
    pub fn block_mean(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        let n = (x1 - x0) * (y1 - y0);
        if n == 0 {
            return 0.0;
        }
        self.block_sum(x0, y0, x1, y1) / n as f64
    }

    /// Population variance over a half-open block. Empty blocks yield 0.
    /// Tiny negative values from floating-point cancellation are clamped
    /// to zero.
    pub fn block_variance(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        let n = (x1 - x0) * (y1 - y0);
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        let mean = self.block_sum(x0, y0, x1, y1) / n;
        let var = self.block_sum_sq(x0, y0, x1, y1) / n - mean * mean;
        var.max(0.0)
    }

    /// Mean over a [`Rect`] (convenience wrapper).
    pub fn rect_mean(&self, rect: Rect) -> f64 {
        self.block_mean(rect.x, rect.y, rect.right(), rect.bottom())
    }

    /// Variance over a [`Rect`] (convenience wrapper).
    pub fn rect_variance(&self, rect: Rect) -> f64 {
        self.block_variance(rect.x, rect.y, rect.right(), rect.bottom())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| (y * w + x) as f32).unwrap()
    }

    fn naive_sum(img: &GrayImage, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        let mut acc = 0.0;
        for y in y0..y1 {
            for x in x0..x1 {
                acc += f64::from(img.get(x, y));
            }
        }
        acc
    }

    #[test]
    fn whole_image_sum_matches_naive() {
        let img = ramp(7, 5);
        let ii = IntegralImage::new(&img);
        assert!((ii.block_sum(0, 0, 7, 5) - naive_sum(&img, 0, 0, 7, 5)).abs() < 1e-9);
    }

    #[test]
    fn interior_blocks_match_naive() {
        let img = ramp(9, 6);
        let ii = IntegralImage::new(&img);
        for (x0, y0, x1, y1) in [(0, 0, 3, 3), (2, 1, 7, 5), (4, 4, 9, 6), (1, 0, 2, 1)] {
            let got = ii.block_sum(x0, y0, x1, y1);
            let want = naive_sum(&img, x0, y0, x1, y1);
            assert!((got - want).abs() < 1e-9, "block {x0},{y0}..{x1},{y1}");
        }
    }

    #[test]
    fn empty_block_sums_to_zero() {
        let img = ramp(4, 4);
        let ii = IntegralImage::new(&img);
        assert_eq!(ii.block_sum(2, 2, 2, 2), 0.0);
        assert_eq!(ii.block_mean(2, 2, 2, 2), 0.0);
        assert_eq!(ii.block_variance(2, 2, 2, 2), 0.0);
    }

    #[test]
    fn block_mean_matches_image_mean() {
        let img = ramp(8, 8);
        let ii = IntegralImage::new(&img);
        assert!((ii.block_mean(0, 0, 8, 8) - f64::from(img.mean())).abs() < 1e-5);
    }

    #[test]
    fn block_variance_matches_image_variance() {
        let img = ramp(6, 6);
        let ii = IntegralImage::new(&img);
        assert!((ii.block_variance(0, 0, 6, 6) - f64::from(img.variance())).abs() < 1e-3);
    }

    #[test]
    fn constant_block_has_zero_variance() {
        let img = GrayImage::filled(5, 5, 9.0).unwrap();
        let ii = IntegralImage::new(&img);
        assert_eq!(ii.block_variance(1, 1, 4, 4), 0.0);
    }

    #[test]
    fn rect_helpers_agree_with_block_queries() {
        let img = ramp(10, 10);
        let ii = IntegralImage::new(&img);
        let r = Rect::new(2, 3, 5, 4);
        assert_eq!(ii.rect_mean(r), ii.block_mean(2, 3, 7, 7));
        assert_eq!(ii.rect_variance(r), ii.block_variance(2, 3, 7, 7));
    }

    #[test]
    fn negative_intensities_supported() {
        let img = GrayImage::from_vec(2, 2, vec![-1.0, -2.0, 3.0, 4.0]).unwrap();
        let ii = IntegralImage::new(&img);
        assert!((ii.block_sum(0, 0, 2, 2) - 4.0).abs() < 1e-9);
        assert!((ii.block_sum(0, 0, 2, 1) - (-3.0)).abs() < 1e-9);
    }
}
