//! PGM/PPM (netpbm) reading and writing.
//!
//! The synthetic databases live in memory, but every intermediate
//! artifact of the pipeline — generated scenes, sampled `h × h` matrices,
//! learned weight maps — is inspectable by dumping it as a PGM/PPM file.
//! Both the ASCII (`P2`/`P3`) and binary (`P5`/`P6`) variants are
//! supported, with `maxval` up to 255.
//!
//! Values are clamped into `[0, maxval]` on write; reading produces `f32`
//! intensities in `[0, 255]` scaled from the file's `maxval`.

use std::io::{BufRead, Write};
use std::path::Path;

use crate::error::ImageError;
use crate::gray::GrayImage;
use crate::rgb::RgbImage;

const MAXVAL: u32 = 255;

/// Writes a gray image as binary PGM (`P5`).
///
/// # Errors
/// Propagates I/O failures.
pub fn write_pgm<W: Write>(image: &GrayImage, mut w: W) -> Result<(), ImageError> {
    writeln!(w, "P5\n{} {}\n{}", image.width(), image.height(), MAXVAL)?;
    let bytes: Vec<u8> = image
        .pixels()
        .iter()
        .map(|&v| v.clamp(0.0, 255.0).round() as u8)
        .collect();
    w.write_all(&bytes)?;
    Ok(())
}

/// Writes a gray image as binary PGM to a filesystem path.
///
/// # Errors
/// Propagates I/O failures.
pub fn save_pgm<P: AsRef<Path>>(image: &GrayImage, path: P) -> Result<(), ImageError> {
    let file = std::fs::File::create(path)?;
    write_pgm(image, std::io::BufWriter::new(file))
}

/// Writes an RGB image as binary PPM (`P6`).
///
/// # Errors
/// Propagates I/O failures.
pub fn write_ppm<W: Write>(image: &RgbImage, mut w: W) -> Result<(), ImageError> {
    writeln!(w, "P6\n{} {}\n{}", image.width(), image.height(), MAXVAL)?;
    let bytes: Vec<u8> = image
        .channels()
        .iter()
        .map(|&v| v.clamp(0.0, 255.0).round() as u8)
        .collect();
    w.write_all(&bytes)?;
    Ok(())
}

/// Writes an RGB image as binary PPM to a filesystem path.
///
/// # Errors
/// Propagates I/O failures.
pub fn save_ppm<P: AsRef<Path>>(image: &RgbImage, path: P) -> Result<(), ImageError> {
    let file = std::fs::File::create(path)?;
    write_ppm(image, std::io::BufWriter::new(file))
}

/// Token scanner for PNM headers: skips whitespace and `#` comments.
struct Tokens<R: BufRead> {
    reader: R,
}

impl<R: BufRead> Tokens<R> {
    fn new(reader: R) -> Self {
        Self { reader }
    }

    fn next_byte(&mut self) -> Result<Option<u8>, ImageError> {
        let mut b = [0u8; 1];
        let n = self.reader.read(&mut b)?;
        Ok(if n == 0 { None } else { Some(b[0]) })
    }

    /// Reads the next whitespace-delimited token, skipping comments.
    fn token(&mut self) -> Result<String, ImageError> {
        let mut tok = Vec::new();
        loop {
            match self.next_byte()? {
                None => break,
                Some(b'#') if tok.is_empty() => {
                    // Skip to end of line.
                    loop {
                        match self.next_byte()? {
                            None | Some(b'\n') => break,
                            Some(_) => {}
                        }
                    }
                }
                Some(c) if c.is_ascii_whitespace() => {
                    if !tok.is_empty() {
                        break;
                    }
                }
                Some(c) => tok.push(c),
            }
        }
        if tok.is_empty() {
            return Err(ImageError::PnmParse("unexpected end of header".into()));
        }
        String::from_utf8(tok).map_err(|_| ImageError::PnmParse("non-UTF8 header token".into()))
    }

    fn number(&mut self) -> Result<u32, ImageError> {
        let t = self.token()?;
        t.parse::<u32>()
            .map_err(|_| ImageError::PnmParse(format!("expected a number, found {t:?}")))
    }

    /// Reads exactly `n` raw bytes (for binary rasters).
    fn raw(&mut self, n: usize) -> Result<Vec<u8>, ImageError> {
        let mut buf = vec![0u8; n];
        self.reader.read_exact(&mut buf)?;
        Ok(buf)
    }
}

fn parse_header<R: BufRead>(tokens: &mut Tokens<R>) -> Result<(usize, usize, u32), ImageError> {
    let width = tokens.number()? as usize;
    let height = tokens.number()? as usize;
    let maxval = tokens.number()?;
    if maxval == 0 || maxval > 255 {
        return Err(ImageError::PnmParse(format!("unsupported maxval {maxval}")));
    }
    Ok((width, height, maxval))
}

/// Reads a PGM (`P2` or `P5`) stream into a gray image with intensities
/// rescaled to `[0, 255]`.
///
/// # Errors
/// Returns [`ImageError::PnmParse`] for malformed data and propagates
/// I/O failures.
pub fn read_pgm<R: BufRead>(reader: R) -> Result<GrayImage, ImageError> {
    let mut tokens = Tokens::new(reader);
    let magic = tokens.token()?;
    let (width, height, maxval) = match magic.as_str() {
        "P2" | "P5" => parse_header(&mut tokens)?,
        other => {
            return Err(ImageError::PnmParse(format!(
                "not a PGM stream (magic {other:?})"
            )))
        }
    };
    let scale = 255.0 / maxval as f32;
    let n = width
        .checked_mul(height)
        .ok_or(ImageError::InvalidDimensions { width, height })?;
    let data = if magic == "P5" {
        tokens
            .raw(n)?
            .into_iter()
            .map(|b| f32::from(b) * scale)
            .collect()
    } else {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(tokens.number()? as f32 * scale);
        }
        v
    };
    GrayImage::from_vec(width, height, data)
}

/// Reads a PGM file from a filesystem path.
///
/// # Errors
/// Same conditions as [`read_pgm`].
pub fn load_pgm<P: AsRef<Path>>(path: P) -> Result<GrayImage, ImageError> {
    let file = std::fs::File::open(path)?;
    read_pgm(std::io::BufReader::new(file))
}

/// Reads a PPM (`P3` or `P6`) stream into an RGB image with channels
/// rescaled to `[0, 255]`.
///
/// # Errors
/// Returns [`ImageError::PnmParse`] for malformed data and propagates
/// I/O failures.
pub fn read_ppm<R: BufRead>(reader: R) -> Result<RgbImage, ImageError> {
    let mut tokens = Tokens::new(reader);
    let magic = tokens.token()?;
    let (width, height, maxval) = match magic.as_str() {
        "P3" | "P6" => parse_header(&mut tokens)?,
        other => {
            return Err(ImageError::PnmParse(format!(
                "not a PPM stream (magic {other:?})"
            )))
        }
    };
    let scale = 255.0 / maxval as f32;
    let n = width
        .checked_mul(height)
        .and_then(|p| p.checked_mul(3))
        .ok_or(ImageError::InvalidDimensions { width, height })?;
    let data = if magic == "P6" {
        tokens
            .raw(n)?
            .into_iter()
            .map(|b| f32::from(b) * scale)
            .collect()
    } else {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(tokens.number()? as f32 * scale);
        }
        v
    };
    RgbImage::from_vec(width, height, data)
}

/// Reads a PPM file from a filesystem path.
///
/// # Errors
/// Same conditions as [`read_ppm`].
pub fn load_ppm<P: AsRef<Path>>(path: P) -> Result<RgbImage, ImageError> {
    let file = std::fs::File::open(path)?;
    read_ppm(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn ramp(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| ((y * w + x) % 256) as f32).unwrap()
    }

    #[test]
    fn pgm_binary_round_trip() {
        let img = ramp(13, 7);
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(Cursor::new(buf)).unwrap();
        assert_eq!(back.width(), 13);
        assert_eq!(back.height(), 7);
        for (a, b) in img.pixels().iter().zip(back.pixels()) {
            assert!(
                (a - b).abs() < 0.51,
                "round trip must be lossless to 8 bits"
            );
        }
    }

    #[test]
    fn ppm_binary_round_trip() {
        let img = RgbImage::from_fn(5, 4, |x, y| {
            [(x * 40) as f32, (y * 60) as f32, ((x + y) * 20) as f32]
        })
        .unwrap();
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        let back = read_ppm(Cursor::new(buf)).unwrap();
        for (a, b) in img.channels().iter().zip(back.channels()) {
            assert!((a - b).abs() < 0.51);
        }
    }

    #[test]
    fn ascii_pgm_parses() {
        let src = "P2\n# a comment\n3 2\n255\n0 10 20\n30 40 50\n";
        let img = read_pgm(Cursor::new(src)).unwrap();
        assert_eq!(img.pixels(), &[0.0, 10.0, 20.0, 30.0, 40.0, 50.0]);
    }

    #[test]
    fn ascii_ppm_parses_with_comments() {
        let src = "P3 # rgb\n2 1 # size\n255\n1 2 3  4 5 6\n";
        let img = read_ppm(Cursor::new(src)).unwrap();
        assert_eq!(img.get(0, 0), [1.0, 2.0, 3.0]);
        assert_eq!(img.get(1, 0), [4.0, 5.0, 6.0]);
    }

    #[test]
    fn maxval_rescaling() {
        let src = "P2\n2 1\n15\n0 15\n";
        let img = read_pgm(Cursor::new(src)).unwrap();
        assert_eq!(img.pixels(), &[0.0, 255.0]);
    }

    #[test]
    fn wrong_magic_rejected() {
        assert!(read_pgm(Cursor::new("P6\n1 1\n255\nxyz")).is_err());
        assert!(read_ppm(Cursor::new("P5\n1 1\n255\nx")).is_err());
        assert!(read_pgm(Cursor::new("JUNK")).is_err());
    }

    #[test]
    fn truncated_raster_rejected() {
        let src = b"P5\n4 4\n255\nab".to_vec(); // 2 bytes instead of 16
        assert!(read_pgm(Cursor::new(src)).is_err());
    }

    #[test]
    fn zero_maxval_rejected() {
        assert!(read_pgm(Cursor::new("P2\n1 1\n0\n0\n")).is_err());
    }

    #[test]
    fn out_of_range_values_clamped_on_write() {
        let img = GrayImage::from_vec(2, 1, vec![-10.0, 300.0]).unwrap();
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(Cursor::new(buf)).unwrap();
        assert_eq!(back.pixels(), &[0.0, 255.0]);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("milr_pnm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ramp.pgm");
        let img = ramp(9, 9);
        save_pgm(&img, &path).unwrap();
        let back = load_pgm(&path).unwrap();
        assert_eq!(back.width(), 9);
        std::fs::remove_file(&path).ok();
    }
}
