//! RGB raster images and luminance conversion.
//!
//! Colour enters the pipeline in two places only: the synthetic database
//! generators produce colour images (the COREL photographs were colour),
//! and the Maron & Lakshmi Ratan baseline consumes colour statistics
//! directly. The paper's own system immediately converts to gray-scale
//! (§3.5 step 1), which [`RgbImage::to_gray`] performs using the Rec. 601
//! luminance weights.

use crate::error::ImageError;
use crate::gray::{checked_len, GrayImage};
use crate::region::Rect;

/// Rec. 601 luma weights used for RGB → gray conversion.
pub const LUMA_WEIGHTS: [f32; 3] = [0.299, 0.587, 0.114];

/// A row-major, interleaved-channel RGB image with `f32` intensities.
#[derive(Debug, Clone, PartialEq)]
pub struct RgbImage {
    width: usize,
    height: usize,
    /// Interleaved `[r, g, b, r, g, b, ...]`, row-major.
    data: Vec<f32>,
}

impl RgbImage {
    /// Creates an image filled with a constant colour.
    ///
    /// # Errors
    /// Returns [`ImageError::InvalidDimensions`] for empty dimensions.
    pub fn filled(width: usize, height: usize, rgb: [f32; 3]) -> Result<Self, ImageError> {
        let len = checked_len(width, height, 3)?;
        let mut data = Vec::with_capacity(len);
        for _ in 0..len / 3 {
            data.extend_from_slice(&rgb);
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Wraps an existing interleaved RGB buffer.
    ///
    /// # Errors
    /// Returns [`ImageError::BufferSizeMismatch`] if `data.len()` is not
    /// `3 * width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Result<Self, ImageError> {
        let len = checked_len(width, height, 3)?;
        if data.len() != len {
            return Err(ImageError::BufferSizeMismatch {
                expected: len,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Builds an image by evaluating `f(x, y) -> [r, g, b]` at every pixel.
    ///
    /// # Errors
    /// Returns [`ImageError::InvalidDimensions`] for empty dimensions.
    pub fn from_fn(
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> [f32; 3],
    ) -> Result<Self, ImageError> {
        let len = checked_len(width, height, 3)?;
        let mut data = Vec::with_capacity(len);
        for y in 0..height {
            for x in 0..width {
                data.extend_from_slice(&f(x, y));
            }
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Colour at `(x, y)` as `[r, g, b]`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [f32; 3] {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        let i = (y * self.width + x) * 3;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Sets the colour at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, rgb: [f32; 3]) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        let i = (y * self.width + x) * 3;
        self.data[i..i + 3].copy_from_slice(&rgb);
    }

    /// The raw interleaved channel buffer.
    #[inline]
    pub fn channels(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw interleaved channel buffer.
    #[inline]
    pub fn channels_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Converts to gray-scale with the Rec. 601 luma weights
    /// (paper §3.5 step 1).
    pub fn to_gray(&self) -> GrayImage {
        let mut out = Vec::with_capacity(self.width * self.height);
        for px in self.data.chunks_exact(3) {
            out.push(px[0] * LUMA_WEIGHTS[0] + px[1] * LUMA_WEIGHTS[1] + px[2] * LUMA_WEIGHTS[2]);
        }
        GrayImage::from_vec(self.width, self.height, out)
            .expect("gray buffer length derived from valid RGB image")
    }

    /// Extracts a single channel (0 = red, 1 = green, 2 = blue) as a
    /// gray image. Used by the colour baseline's per-channel statistics.
    ///
    /// # Panics
    /// Panics if `channel > 2`.
    pub fn channel(&self, channel: usize) -> GrayImage {
        assert!(channel < 3, "channel index {channel} out of range");
        let mut out = Vec::with_capacity(self.width * self.height);
        for px in self.data.chunks_exact(3) {
            out.push(px[channel]);
        }
        GrayImage::from_vec(self.width, self.height, out)
            .expect("channel buffer length derived from valid RGB image")
    }

    /// Extracts a copy of the pixels inside `rect` — the colour
    /// counterpart of [`GrayImage::crop`], used when a region-of-interest
    /// query must be featurised by a colour backend.
    ///
    /// # Errors
    /// Returns [`ImageError::RegionOutOfBounds`] if the rectangle does not
    /// fit inside the image.
    pub fn crop(&self, rect: Rect) -> Result<RgbImage, ImageError> {
        if !rect.fits_within(self.width, self.height) {
            return Err(ImageError::RegionOutOfBounds {
                region: (rect.x, rect.y, rect.width, rect.height),
                width: self.width,
                height: self.height,
            });
        }
        let mut data = Vec::with_capacity(rect.width * rect.height * 3);
        for y in rect.y..rect.y + rect.height {
            let start = (y * self.width + rect.x) * 3;
            data.extend_from_slice(&self.data[start..start + rect.width * 3]);
        }
        RgbImage::from_vec(rect.width, rect.height, data)
    }

    /// Clamps every channel into `[lo, hi]` in place.
    pub fn clamp_in_place(&mut self, lo: f32, hi: f32) {
        for v in &mut self.data {
            *v = v.clamp(lo, hi);
        }
    }

    /// Mean colour over the whole image.
    pub fn mean_rgb(&self) -> [f32; 3] {
        let mut acc = [0.0f64; 3];
        for px in self.data.chunks_exact(3) {
            acc[0] += f64::from(px[0]);
            acc[1] += f64::from(px[1]);
            acc[2] += f64::from(px[2]);
        }
        let n = (self.width * self.height) as f64;
        [
            (acc[0] / n) as f32,
            (acc[1] / n) as f32,
            (acc[2] / n) as f32,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_has_constant_colour() {
        let img = RgbImage::filled(2, 2, [1.0, 2.0, 3.0]).unwrap();
        assert_eq!(img.get(1, 1), [1.0, 2.0, 3.0]);
        assert_eq!(img.channels().len(), 12);
    }

    #[test]
    fn crop_matches_gray_crop_through_luminance() {
        let img = RgbImage::from_fn(8, 6, |x, y| [x as f32, y as f32, (x + y) as f32]).unwrap();
        let rect = Rect::new(2, 1, 4, 3);
        let cropped = img.crop(rect).unwrap();
        assert_eq!(cropped.width(), 4);
        assert_eq!(cropped.height(), 3);
        assert_eq!(cropped.get(0, 0), img.get(2, 1));
        assert_eq!(cropped.get(3, 2), img.get(5, 3));
        // Crop-then-gray must agree with gray-then-crop: the scenario
        // layer relies on either order producing the same region.
        assert_eq!(cropped.to_gray(), img.to_gray().crop(rect).unwrap());
        assert!(img.crop(Rect::new(6, 0, 4, 3)).is_err());
    }

    #[test]
    fn buffer_size_enforced() {
        assert!(RgbImage::from_vec(2, 2, vec![0.0; 11]).is_err());
        assert!(RgbImage::from_vec(2, 2, vec![0.0; 12]).is_ok());
    }

    #[test]
    fn set_get_round_trip() {
        let mut img = RgbImage::filled(3, 3, [0.0; 3]).unwrap();
        img.set(2, 0, [9.0, 8.0, 7.0]);
        assert_eq!(img.get(2, 0), [9.0, 8.0, 7.0]);
        assert_eq!(img.get(0, 2), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn luminance_of_pure_channels() {
        let img = RgbImage::from_fn(3, 1, |x, _| match x {
            0 => [255.0, 0.0, 0.0],
            1 => [0.0, 255.0, 0.0],
            _ => [0.0, 0.0, 255.0],
        })
        .unwrap();
        let gray = img.to_gray();
        assert!((gray.get(0, 0) - 255.0 * 0.299).abs() < 1e-3);
        assert!((gray.get(1, 0) - 255.0 * 0.587).abs() < 1e-3);
        assert!((gray.get(2, 0) - 255.0 * 0.114).abs() < 1e-3);
    }

    #[test]
    fn luminance_of_white_is_full_scale() {
        let img = RgbImage::filled(2, 2, [255.0; 3]).unwrap();
        let gray = img.to_gray();
        assert!((gray.get(0, 0) - 255.0).abs() < 1e-2);
    }

    #[test]
    fn channel_extraction() {
        let img =
            RgbImage::from_fn(2, 1, |x, _| [x as f32, 10.0 + x as f32, 20.0 + x as f32]).unwrap();
        assert_eq!(img.channel(0).pixels(), &[0.0, 1.0]);
        assert_eq!(img.channel(1).pixels(), &[10.0, 11.0]);
        assert_eq!(img.channel(2).pixels(), &[20.0, 21.0]);
    }

    #[test]
    fn mean_rgb_averages_channels() {
        let img = RgbImage::from_fn(2, 1, |x, _| {
            if x == 0 {
                [0.0, 100.0, 50.0]
            } else {
                [100.0, 0.0, 150.0]
            }
        })
        .unwrap();
        let m = img.mean_rgb();
        assert!((m[0] - 50.0).abs() < 1e-5);
        assert!((m[1] - 50.0).abs() < 1e-5);
        assert!((m[2] - 100.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "channel index")]
    fn channel_index_checked() {
        let img = RgbImage::filled(1, 1, [0.0; 3]).unwrap();
        let _ = img.channel(3);
    }
}
