//! Minimal PNG encoding (no external dependencies).
//!
//! PPM/PGM dumps are exact but almost nothing displays them; PNG is
//! universal. This encoder writes standards-compliant PNGs using zlib
//! *stored* (uncompressed) DEFLATE blocks — larger files than a real
//! compressor would produce, but bit-exact, dependency-free, and decoded
//! by every viewer. Used by the HTML retrieval reports and available for
//! any image dump.
//!
//! Write-only by design: the library never needs to *read* PNGs (all
//! inputs are PNM or in-memory), so no decoder is provided.

use std::io::Write;
use std::path::Path;

use crate::error::ImageError;
use crate::gray::GrayImage;
use crate::rgb::RgbImage;

const PNG_SIGNATURE: [u8; 8] = [0x89, b'P', b'N', b'G', b'\r', b'\n', 0x1A, b'\n'];

/// CRC-32 (ISO 3309, as required by the PNG spec), bitwise
/// implementation — encoding is I/O-bound here, no table needed.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Adler-32 checksum of the raw (pre-deflate) data, for the zlib footer.
fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let mut a = 1u32;
    let mut b = 0u32;
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += u32::from(byte);
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

/// Wraps raw bytes in a zlib stream of stored (type-0) DEFLATE blocks.
fn zlib_stored(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() + raw.len() / 65_535 * 5 + 16);
    out.push(0x78); // CMF: deflate, 32K window
    out.push(0x01); // FLG: no dict, fastest (checksum-correct for 0x78)
    let mut chunks = raw.chunks(65_535).peekable();
    if raw.is_empty() {
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xFF, 0xFF]);
    }
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        out.push(u8::from(last)); // BFINAL + BTYPE=00
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&adler32(raw).to_be_bytes());
    out
}

/// Appends one PNG chunk (length, type, payload, CRC).
fn push_chunk(out: &mut Vec<u8>, kind: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    let crc_start = out.len();
    out.extend_from_slice(kind);
    out.extend_from_slice(payload);
    let crc = crc32(&out[crc_start..]);
    out.extend_from_slice(&crc.to_be_bytes());
}

fn encode(width: usize, height: usize, color_type: u8, scanlines: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(scanlines.len() + 1024);
    out.extend_from_slice(&PNG_SIGNATURE);
    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&(width as u32).to_be_bytes());
    ihdr.extend_from_slice(&(height as u32).to_be_bytes());
    ihdr.push(8); // bit depth
    ihdr.push(color_type); // 0 = gray, 2 = RGB
    ihdr.extend_from_slice(&[0, 0, 0]); // deflate, adaptive, no interlace
    push_chunk(&mut out, b"IHDR", &ihdr);
    push_chunk(&mut out, b"IDAT", &zlib_stored(scanlines));
    push_chunk(&mut out, b"IEND", &[]);
    out
}

/// Encodes a gray image as an 8-bit grayscale PNG. Intensities are
/// clamped into `[0, 255]`.
pub fn encode_png_gray(image: &GrayImage) -> Vec<u8> {
    let (w, h) = (image.width(), image.height());
    let mut scanlines = Vec::with_capacity(h * (w + 1));
    for y in 0..h {
        scanlines.push(0); // filter type: None
        for &v in image.row(y) {
            scanlines.push(v.clamp(0.0, 255.0).round() as u8);
        }
    }
    encode(w, h, 0, &scanlines)
}

/// Encodes an RGB image as an 8-bit truecolour PNG. Channels are clamped
/// into `[0, 255]`.
pub fn encode_png_rgb(image: &RgbImage) -> Vec<u8> {
    let (w, h) = (image.width(), image.height());
    let mut scanlines = Vec::with_capacity(h * (3 * w + 1));
    let channels = image.channels();
    for y in 0..h {
        scanlines.push(0); // filter type: None
        let row = &channels[y * w * 3..(y + 1) * w * 3];
        for &v in row {
            scanlines.push(v.clamp(0.0, 255.0).round() as u8);
        }
    }
    encode(w, h, 2, &scanlines)
}

/// Writes a gray image as PNG to a filesystem path.
///
/// # Errors
/// Propagates I/O failures.
pub fn save_png_gray<P: AsRef<Path>>(image: &GrayImage, path: P) -> Result<(), ImageError> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(&encode_png_gray(image))?;
    Ok(())
}

/// Writes an RGB image as PNG to a filesystem path.
///
/// # Errors
/// Propagates I/O failures.
pub fn save_png_rgb<P: AsRef<Path>>(image: &RgbImage, path: P) -> Result<(), ImageError> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(&encode_png_rgb(image))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: a tiny zlib-stored-block decoder, used only to verify
    /// the encoder round-trips.
    fn inflate_stored(data: &[u8]) -> Vec<u8> {
        assert_eq!(data[0], 0x78, "zlib CMF");
        let mut out = Vec::new();
        let mut pos = 2;
        loop {
            let bfinal = data[pos] & 1;
            assert_eq!(data[pos] >> 1, 0, "stored blocks only");
            let len = u16::from_le_bytes([data[pos + 1], data[pos + 2]]) as usize;
            let nlen = u16::from_le_bytes([data[pos + 3], data[pos + 4]]);
            assert_eq!(!nlen, len as u16, "LEN/NLEN mismatch");
            out.extend_from_slice(&data[pos + 5..pos + 5 + len]);
            pos += 5 + len;
            if bfinal == 1 {
                break;
            }
        }
        assert_eq!(
            u32::from_be_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]),
            adler32(&out),
            "adler32 mismatch"
        );
        out
    }

    /// Splits a PNG byte stream into (kind, payload) chunks, verifying
    /// every CRC.
    fn chunks(png: &[u8]) -> Vec<(String, Vec<u8>)> {
        assert_eq!(&png[..8], &PNG_SIGNATURE, "signature");
        let mut out = Vec::new();
        let mut pos = 8;
        while pos < png.len() {
            let len =
                u32::from_be_bytes([png[pos], png[pos + 1], png[pos + 2], png[pos + 3]]) as usize;
            let kind = String::from_utf8(png[pos + 4..pos + 8].to_vec()).unwrap();
            let payload = png[pos + 8..pos + 8 + len].to_vec();
            let crc = u32::from_be_bytes([
                png[pos + 8 + len],
                png[pos + 9 + len],
                png[pos + 10 + len],
                png[pos + 11 + len],
            ]);
            assert_eq!(
                crc,
                crc32(&png[pos + 4..pos + 8 + len]),
                "chunk CRC for {kind}"
            );
            out.push((kind, payload));
            pos += 12 + len;
        }
        out
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn adler32_matches_known_vector() {
        // Adler-32("Wikipedia") = 0x11E60398.
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
        assert_eq!(adler32(b""), 1);
    }

    #[test]
    fn gray_png_structure_and_round_trip() {
        let img = GrayImage::from_fn(5, 3, |x, y| (x * 40 + y * 10) as f32).unwrap();
        let png = encode_png_gray(&img);
        let parts = chunks(&png);
        assert_eq!(parts[0].0, "IHDR");
        assert_eq!(parts.last().unwrap().0, "IEND");
        // IHDR fields.
        let ihdr = &parts[0].1;
        assert_eq!(u32::from_be_bytes([ihdr[0], ihdr[1], ihdr[2], ihdr[3]]), 5);
        assert_eq!(u32::from_be_bytes([ihdr[4], ihdr[5], ihdr[6], ihdr[7]]), 3);
        assert_eq!(ihdr[8], 8); // bit depth
        assert_eq!(ihdr[9], 0); // grayscale
                                // Decode the IDAT and compare scanlines.
        let idat = &parts.iter().find(|(k, _)| k == "IDAT").unwrap().1;
        let raw = inflate_stored(idat);
        assert_eq!(raw.len(), 3 * (5 + 1));
        for y in 0..3 {
            assert_eq!(raw[y * 6], 0, "filter byte");
            for x in 0..5 {
                assert_eq!(raw[y * 6 + 1 + x], (x * 40 + y * 10) as u8);
            }
        }
    }

    #[test]
    fn rgb_png_round_trip() {
        let img = RgbImage::from_fn(4, 2, |x, y| [(x * 60) as f32, (y * 100) as f32, 7.0]).unwrap();
        let png = encode_png_rgb(&img);
        let parts = chunks(&png);
        let ihdr = &parts[0].1;
        assert_eq!(ihdr[9], 2, "truecolour");
        let idat = &parts.iter().find(|(k, _)| k == "IDAT").unwrap().1;
        let raw = inflate_stored(idat);
        assert_eq!(raw.len(), 2 * (4 * 3 + 1));
        // Pixel (2, 1) = RGB(120, 100, 7).
        let (px, py) = (2, 1);
        let offset = py * 13 + 1 + px * 3;
        assert_eq!(&raw[offset..offset + 3], &[120, 100, 7]);
    }

    #[test]
    fn clamping_on_encode() {
        let img = GrayImage::from_vec(2, 1, vec![-50.0, 300.0]).unwrap();
        let png = encode_png_gray(&img);
        let parts = chunks(&png);
        let raw = inflate_stored(&parts.iter().find(|(k, _)| k == "IDAT").unwrap().1);
        assert_eq!(&raw[1..3], &[0, 255]);
    }

    #[test]
    fn large_image_spans_multiple_stored_blocks() {
        // > 65535 raw bytes forces at least two DEFLATE stored blocks.
        let img = GrayImage::from_fn(300, 300, |x, y| ((x + y) % 256) as f32).unwrap();
        let png = encode_png_gray(&img);
        let parts = chunks(&png);
        let idat = &parts.iter().find(|(k, _)| k == "IDAT").unwrap().1;
        let raw = inflate_stored(idat);
        assert_eq!(raw.len(), 300 * 301);
        assert!(raw.len() > 65_535, "test needs multiple blocks");
    }

    #[test]
    fn file_write_works() {
        let dir = std::env::temp_dir().join("milr_png_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.png");
        let img = GrayImage::filled(10, 10, 128.0).unwrap();
        save_png_gray(&img, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], &PNG_SIGNATURE);
        std::fs::remove_file(path).ok();
    }
}
