//! Bilinear resizing and nearest-neighbour rotation resampling.
//!
//! Two §5 discussion points motivate this module: the system "is able to
//! handle scaling changes across images" (resize lets tests and examples
//! exercise that), and the proposed rotation extension — "add more
//! instances to represent different angles of view for each image
//! region" — needs rotated resampling ([`rotate`]), which the `ext-rot`
//! experiment uses.

use crate::error::ImageError;
use crate::gray::GrayImage;

/// Bilinearly resizes an image to `new_width × new_height`.
///
/// # Errors
/// Returns [`ImageError::InvalidDimensions`] for empty targets.
pub fn resize_bilinear(
    image: &GrayImage,
    new_width: usize,
    new_height: usize,
) -> Result<GrayImage, ImageError> {
    if new_width == 0 || new_height == 0 {
        return Err(ImageError::InvalidDimensions {
            width: new_width,
            height: new_height,
        });
    }
    let (w, h) = (image.width(), image.height());
    let sx = w as f32 / new_width as f32;
    let sy = h as f32 / new_height as f32;
    GrayImage::from_fn(new_width, new_height, |x, y| {
        // Sample at the pixel centre of the target grid.
        let fx = ((x as f32 + 0.5) * sx - 0.5).clamp(0.0, w as f32 - 1.0);
        let fy = ((y as f32 + 0.5) * sy - 0.5).clamp(0.0, h as f32 - 1.0);
        let x0 = fx.floor() as usize;
        let y0 = fy.floor() as usize;
        let x1 = (x0 + 1).min(w - 1);
        let y1 = (y0 + 1).min(h - 1);
        let tx = fx - x0 as f32;
        let ty = fy - y0 as f32;
        let top = image.get(x0, y0) * (1.0 - tx) + image.get(x1, y0) * tx;
        let bottom = image.get(x0, y1) * (1.0 - tx) + image.get(x1, y1) * tx;
        top * (1.0 - ty) + bottom * ty
    })
}

/// Rotates an image about its centre by `angle` radians in raster
/// coordinates (x right, y down) — positive angles appear *clockwise*
/// on screen — resampling with nearest neighbour. Pixels that map
/// outside the source are filled with the image mean, which keeps the
/// downstream correlation features unbiased.
pub fn rotate(image: &GrayImage, angle: f32) -> GrayImage {
    let (w, h) = (image.width(), image.height());
    let cx = (w as f32 - 1.0) * 0.5;
    let cy = (h as f32 - 1.0) * 0.5;
    let fill = image.mean();
    let (sin, cos) = angle.sin_cos();
    GrayImage::from_fn(w, h, |x, y| {
        // Inverse-map the target pixel into the source.
        let dx = x as f32 - cx;
        let dy = y as f32 - cy;
        let sxf = cos * dx + sin * dy + cx;
        let syf = -sin * dx + cos * dy + cy;
        let sx = sxf.round();
        let sy = syf.round();
        if sx >= 0.0 && sy >= 0.0 && (sx as usize) < w && (sy as usize) < h {
            image.get(sx as usize, sy as usize)
        } else {
            fill
        }
    })
    .expect("rotation preserves dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| (x + y * w) as f32).unwrap()
    }

    #[test]
    fn identity_resize_is_identity() {
        let img = ramp(7, 5);
        let out = resize_bilinear(&img, 7, 5).unwrap();
        for (a, b) in img.pixels().iter().zip(out.pixels()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn upscale_preserves_constants_and_range() {
        let img = GrayImage::filled(4, 4, 99.0).unwrap();
        let out = resize_bilinear(&img, 16, 12).unwrap();
        assert!(out.pixels().iter().all(|&v| (v - 99.0).abs() < 1e-4));
    }

    #[test]
    fn downscale_averages_smoothly() {
        let img = GrayImage::from_fn(32, 32, |x, _| x as f32).unwrap();
        let out = resize_bilinear(&img, 8, 8).unwrap();
        // Monotone in x, roughly spanning the source range.
        for y in 0..8 {
            for x in 1..8 {
                assert!(out.get(x, y) > out.get(x - 1, y));
            }
        }
        assert!(out.get(0, 0) < 4.0);
        assert!(out.get(7, 0) > 27.0);
    }

    #[test]
    fn resize_preserves_mean_approximately() {
        let img = GrayImage::from_fn(40, 30, |x, y| ((x * 7 + y * 11) % 50) as f32).unwrap();
        let out = resize_bilinear(&img, 20, 15).unwrap();
        assert!((out.mean() - img.mean()).abs() < 2.0);
    }

    #[test]
    fn zero_target_rejected() {
        let img = ramp(4, 4);
        assert!(resize_bilinear(&img, 0, 4).is_err());
        assert!(resize_bilinear(&img, 4, 0).is_err());
    }

    #[test]
    fn zero_rotation_is_identity() {
        let img = ramp(9, 9);
        assert_eq!(rotate(&img, 0.0), img);
    }

    #[test]
    fn quarter_turn_moves_known_pixel() {
        // Odd dimensions make the centre exact. In raster coordinates a
        // positive quarter turn (clockwise on screen) maps the pixel
        // right of centre to below centre.
        let mut img = GrayImage::zeros(9, 9).unwrap();
        img.set(6, 4, 50.0); // 2 right of centre (4,4)
        let out = rotate(&img, std::f32::consts::FRAC_PI_2);
        assert_eq!(out.get(4, 6), 50.0, "pixel should rotate to 2 below centre");
    }

    #[test]
    fn full_turn_is_identity_on_interior() {
        let img = ramp(11, 11);
        let out = rotate(&img, 2.0 * std::f32::consts::PI);
        for y in 2..9 {
            for x in 2..9 {
                assert!((out.get(x, y) - img.get(x, y)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn out_of_bounds_fill_is_the_mean() {
        let img = GrayImage::from_fn(8, 8, |x, _| if x < 4 { 0.0 } else { 100.0 }).unwrap();
        let out = rotate(&img, std::f32::consts::FRAC_PI_4);
        // Corners map outside and get the mean (50).
        assert!((out.get(0, 0) - 50.0).abs() < 1e-3);
    }

    #[test]
    fn small_rotation_barely_changes_statistics() {
        let img = GrayImage::from_fn(24, 24, |x, y| ((x * 3 + y * 5) % 40) as f32).unwrap();
        let out = rotate(&img, 0.05);
        assert!((out.mean() - img.mean()).abs() < 2.0);
    }
}
