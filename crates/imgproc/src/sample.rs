//! Smoothing and sampling (§3.1.2, Fig. 3-2).
//!
//! A source region of arbitrary size is reduced to a low-resolution
//! `h × h` matrix. Each output entry is the average gray value of a block
//! of the source, and each block overlaps its neighbours by 50%: with
//! `s = dim / (h + 1)`, block `i` spans `[i·s, i·s + 2s)`, so `h` blocks
//! of span `2s` exactly tile `(h + 1)·s = dim` with stride `s`. The large
//! overlap "reduces sensitivity to the choice of block border locations"
//! (paper §3.1.2); the whole operator is the paper's proxy for smoothing
//! with an averaging kernel followed by sub-sampling.
//!
//! Block averages are computed from an [`IntegralImage`], so sampling one
//! region costs `O(h²)` regardless of region size.

use crate::error::ImageError;
use crate::gray::GrayImage;
use crate::integral::IntegralImage;
use crate::region::Rect;

/// Half-open 1-D block boundaries for `h` blocks with 50% overlap over
/// `[0, dim)`. Returned as `(start, end)` pixel indices with
/// `end > start` guaranteed for `dim >= h + 1`.
fn block_bounds(dim: usize, h: usize) -> Vec<(usize, usize)> {
    let s = dim as f64 / (h + 1) as f64;
    let mut out = Vec::with_capacity(h);
    for i in 0..h {
        let lo = (i as f64 * s).round() as usize;
        let hi = ((i as f64 + 2.0) * s).round() as usize;
        let hi = hi.min(dim).max(lo + 1);
        let lo = lo.min(dim - 1);
        out.push((lo, hi));
    }
    out
}

/// Smooths and samples a rectangular region (viewed through `integral`)
/// down to an `h × h` gray matrix of overlapping block averages.
///
/// # Errors
/// * [`ImageError::RegionOutOfBounds`] if `rect` exceeds the integral
///   image's source bounds.
/// * [`ImageError::ResolutionTooLarge`] if the region is smaller than
///   `(h+1) × (h+1)`, where distinct overlapping blocks no longer exist.
pub fn smooth_sample_rect(
    integral: &IntegralImage,
    rect: Rect,
    h: usize,
) -> Result<GrayImage, ImageError> {
    rect.check_within(integral.width(), integral.height())?;
    if h == 0 || rect.width < h + 1 || rect.height < h + 1 {
        return Err(ImageError::ResolutionTooLarge {
            h,
            width: rect.width,
            height: rect.height,
        });
    }
    milr_obs::counter!("milr_imgproc_samples_total").inc();
    let xs = block_bounds(rect.width, h);
    let ys = block_bounds(rect.height, h);
    let mut data = Vec::with_capacity(h * h);
    for &(y0, y1) in &ys {
        for &(x0, x1) in &xs {
            data.push(
                integral.block_mean(rect.x + x0, rect.y + y0, rect.x + x1, rect.y + y1) as f32,
            );
        }
    }
    GrayImage::from_vec(h, h, data)
}

/// Smooths and samples a whole image down to `h × h`.
///
/// Convenience wrapper over [`smooth_sample_rect`]; builds a fresh
/// integral image, so prefer the rect variant when sampling many regions
/// of the same image.
///
/// # Examples
/// ```
/// use milr_imgproc::{smooth_sample, GrayImage};
///
/// let image = GrayImage::from_fn(120, 90, |x, _| x as f32).unwrap();
/// let sampled = smooth_sample(&image, 10).unwrap();
/// assert_eq!((sampled.width(), sampled.height()), (10, 10));
/// // A horizontal gradient stays monotone after block averaging.
/// assert!(sampled.get(9, 5) > sampled.get(0, 5));
/// ```
///
/// # Errors
/// Same conditions as [`smooth_sample_rect`].
pub fn smooth_sample(image: &GrayImage, h: usize) -> Result<GrayImage, ImageError> {
    let integral = IntegralImage::new(image);
    smooth_sample_rect(&integral, Rect::full(image.width(), image.height()), h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_bounds_cover_dimension() {
        for (dim, h) in [(100, 10), (33, 6), (128, 15), (11, 10)] {
            let bounds = block_bounds(dim, h);
            assert_eq!(bounds.len(), h);
            assert_eq!(bounds[0].0, 0, "first block starts at 0");
            assert_eq!(
                bounds[h - 1].1,
                dim,
                "last block ends at dim for dim={dim}, h={h}"
            );
            for &(lo, hi) in &bounds {
                assert!(hi > lo);
                assert!(hi <= dim);
            }
        }
    }

    #[test]
    fn adjacent_blocks_overlap_by_half() {
        let bounds = block_bounds(110, 10); // s = 10 exactly
        for w in bounds.windows(2) {
            let (a0, a1) = w[0];
            let (b0, b1) = w[1];
            // overlap = a1 - b0 should be s = half the block span.
            assert_eq!(a1 - b0, 10);
            assert_eq!(a1 - a0, 20);
            assert_eq!(b1 - b0, 20);
        }
    }

    #[test]
    fn constant_image_samples_to_constant() {
        let img = GrayImage::filled(50, 40, 7.25).unwrap();
        let s = smooth_sample(&img, 10).unwrap();
        assert_eq!(s.width(), 10);
        assert_eq!(s.height(), 10);
        assert!(s.pixels().iter().all(|&v| (v - 7.25).abs() < 1e-5));
    }

    #[test]
    fn horizontal_gradient_is_monotone_after_sampling() {
        let img = GrayImage::from_fn(88, 44, |x, _| x as f32).unwrap();
        let s = smooth_sample(&img, 8).unwrap();
        for y in 0..8 {
            for x in 1..8 {
                assert!(
                    s.get(x, y) > s.get(x - 1, y),
                    "sampled gradient must stay monotone"
                );
            }
        }
        // Rows are identical for a purely horizontal gradient.
        for x in 0..8 {
            assert!((s.get(x, 0) - s.get(x, 7)).abs() < 1e-4);
        }
    }

    #[test]
    fn sampling_is_shift_tolerant() {
        // The motivation in §3.1.2: small shifts should only perturb the
        // sampled matrix slightly. Compare a step image and the same
        // image shifted by 2 pixels, at 120 px wide and h=10 (block span
        // ~21 px): per-entry change must stay well under the step height.
        let step = |shift: usize| {
            GrayImage::from_fn(
                120,
                60,
                move |x, _| if x < 60 + shift { 0.0 } else { 100.0 },
            )
            .unwrap()
        };
        let a = smooth_sample(&step(0), 10).unwrap();
        let b = smooth_sample(&step(2), 10).unwrap();
        let max_diff = a
            .pixels()
            .iter()
            .zip(b.pixels())
            .map(|(&p, &q)| (p - q).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 15.0, "2-px shift changed a sample by {max_diff}");
    }

    #[test]
    fn rect_sampling_matches_crop_then_sample() {
        let img = GrayImage::from_fn(64, 64, |x, y| ((x * 7 + y * 13) % 31) as f32).unwrap();
        let rect = Rect::new(8, 4, 40, 48);
        let integral = IntegralImage::new(&img);
        let direct = smooth_sample_rect(&integral, rect, 10).unwrap();
        let cropped = smooth_sample(&img.crop(rect).unwrap(), 10).unwrap();
        for (a, b) in direct.pixels().iter().zip(cropped.pixels()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn too_small_region_rejected() {
        let img = GrayImage::filled(30, 30, 1.0).unwrap();
        let integral = IntegralImage::new(&img);
        let err = smooth_sample_rect(&integral, Rect::new(0, 0, 9, 30), 10);
        assert!(matches!(err, Err(ImageError::ResolutionTooLarge { .. })));
        assert!(smooth_sample_rect(&integral, Rect::new(0, 0, 11, 11), 10).is_ok());
    }

    #[test]
    fn zero_resolution_rejected() {
        let img = GrayImage::filled(30, 30, 1.0).unwrap();
        assert!(smooth_sample(&img, 0).is_err());
    }

    #[test]
    fn out_of_bounds_rect_rejected() {
        let img = GrayImage::filled(30, 30, 1.0).unwrap();
        let integral = IntegralImage::new(&img);
        assert!(smooth_sample_rect(&integral, Rect::new(20, 20, 15, 15), 5).is_err());
    }

    #[test]
    fn different_resolutions_supported() {
        let img = GrayImage::from_fn(90, 90, |x, y| (x + y) as f32).unwrap();
        for h in [6, 10, 15] {
            let s = smooth_sample(&img, h).unwrap();
            assert_eq!(s.len(), h * h);
        }
    }
}
