//! Golden-trace recording and comparison.
//!
//! A *trace* pins down the entire DD training trajectory for a seeded
//! synthetic corpus: per round the example sets, the number of starts,
//! each start's objective evaluations and final value, the argmin, the
//! learned concept (point + weights), and finally the test-set ranking.
//! Serialized through `milr-serve`'s shortest-round-trip JSON dump, the
//! trace is byte-stable: any solver or kernel change that alters a
//! single bit of any float shows up as an explicit, reviewed diff in
//! `tests/golden/*.json` (regenerate with `milr golden --bless`).

use milr_core::{QuerySession, RankRequest, RetrievalConfig};
use milr_serve::{parse_policy, Json};

use crate::corpus::synthetic_database;

/// One golden scenario: a seeded corpus trained under one policy.
#[derive(Debug, Clone)]
pub struct GoldenCase {
    /// File stem under `tests/golden/` (`<name>.json`).
    pub name: &'static str,
    /// Corpus seed.
    pub seed: u64,
    /// Corpus size (bags).
    pub images: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Weight-policy spec, CLI grammar (`identical`, `constraint:0.5`…).
    pub policy: &'static str,
    /// Feedback rounds to trace.
    pub rounds: usize,
}

impl GoldenCase {
    /// The golden file name for this case.
    pub fn file_name(&self) -> String {
        format!("{}.json", self.name)
    }
}

/// The committed regression corpus: small enough to train in
/// milliseconds, varied enough to cover the weight policies the paper
/// compares (§2.2: original DD vs. the identical-weight and constrained
/// variants).
pub fn standard_cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            name: "identical_seed7",
            seed: 7,
            images: 24,
            dim: 8,
            policy: "identical",
            rounds: 2,
        },
        GoldenCase {
            name: "constraint_seed7",
            seed: 7,
            images: 24,
            dim: 8,
            policy: "constraint:0.5",
            rounds: 2,
        },
        GoldenCase {
            name: "original_seed11",
            seed: 11,
            images: 20,
            dim: 6,
            policy: "original",
            rounds: 2,
        },
    ]
}

fn nums(values: impl IntoIterator<Item = f64>) -> Json {
    Json::Arr(values.into_iter().map(Json::Num).collect())
}

fn counts(values: impl IntoIterator<Item = usize>) -> Json {
    Json::Arr(values.into_iter().map(|v| Json::num(v as f64)).collect())
}

/// Runs the case's full simulated-feedback protocol and records the
/// trajectory as a byte-stable JSON document.
///
/// # Errors
/// A description of a bad policy spec or a training failure.
pub fn record_trace(case: &GoldenCase) -> Result<Json, String> {
    let db = synthetic_database(case.images, case.dim, case.seed);
    let config = RetrievalConfig {
        threads: 1, // single-threaded: evaluation order is part of the trace
        policy: parse_policy(case.policy)?,
        feedback_rounds: case.rounds,
        initial_positives: 2,
        initial_negatives: 2,
        false_positives_per_round: 2,
        max_iterations: 40,
        ..RetrievalConfig::default()
    };
    // Deterministic pool/test split: two of every three images train.
    let pool: Vec<usize> = (0..db.len()).filter(|i| i % 3 != 2).collect();
    let test: Vec<usize> = (0..db.len()).filter(|i| i % 3 == 2).collect();
    let mut session = QuerySession::builder(&db)
        .config(&config)
        .target(0)
        .pool(pool)
        .test(test)
        .build()
        .map_err(|e| e.to_string())?;
    let mut rounds = Vec::with_capacity(case.rounds);
    for round in 1..=case.rounds {
        let positives = session.positives().to_vec();
        let negatives = session.negatives().to_vec();
        let result = session.train_round_traced().map_err(|e| e.to_string())?;
        rounds.push(Json::Obj(vec![
            ("round".into(), Json::num(round as f64)),
            ("positives".into(), Json::indices(&positives)),
            ("negatives".into(), Json::indices(&negatives)),
            ("starts".into(), Json::num(result.starts as f64)),
            (
                "converged_starts".into(),
                Json::num(result.converged_starts as f64),
            ),
            ("evaluations".into(), counts(result.start_evaluations)),
            ("start_values".into(), nums(result.start_values)),
            ("best_start".into(), Json::num(result.best_start as f64)),
            ("nldd".into(), Json::Num(result.nldd)),
            ("point".into(), nums(result.concept.point().to_vec())),
            ("weights".into(), nums(result.concept.weights().to_vec())),
        ]));
        if round < case.rounds {
            session
                .add_false_positives(config.false_positives_per_round)
                .map_err(|e| e.to_string())?;
        }
    }
    let final_ranking = session
        .rank(&RankRequest::test())
        .map_err(|e| e.to_string())?;
    Ok(Json::Obj(vec![
        ("case".into(), Json::str(case.name)),
        ("seed".into(), Json::num(case.seed as f64)),
        ("images".into(), Json::num(case.images as f64)),
        ("dim".into(), Json::num(case.dim as f64)),
        ("policy".into(), Json::str(case.policy)),
        ("rounds".into(), Json::Arr(rounds)),
        (
            "final_ranking".into(),
            Json::Arr(
                final_ranking
                    .iter()
                    .map(|&(index, distance)| {
                        Json::Arr(vec![Json::num(index as f64), Json::Num(distance)])
                    })
                    .collect(),
            ),
        ),
    ]))
}

/// File stem of the coarse-index golden trace under `tests/golden/`.
pub const INDEX_TRACE_NAME: &str = "index_seed7";

/// The golden file name of the coarse-index trace.
#[must_use]
pub fn index_trace_file_name() -> String {
    format!("{INDEX_TRACE_NAME}.json")
}

/// Records the coarse-index geometry of a seeded sharded corpus: per
/// shard, the cell count, per-cell instance counts, per-instance cell
/// assignments (centroid ids), and the centroid coordinates themselves.
///
/// Blessed alongside the training traces via `milr golden --bless`,
/// this pins the k-means determinism that makes a lazy index rebuild
/// byte-identical to a persisted v5 section: any change to the seeding,
/// iteration count, or mean arithmetic shows up as a reviewed diff.
///
/// # Errors
/// A description of a store build or flush failure.
pub fn record_index_trace() -> Result<Json, String> {
    let (images, dim, seed, capacity) = (24, 8, 7u64, 5);
    let db = synthetic_database(images, dim, seed);
    let dir = std::env::temp_dir()
        .join("milr_golden_index")
        .join(std::process::id().to_string());
    std::fs::remove_dir_all(&dir).ok();
    let mut store = milr_store::ShardedDatabase::from_database(&db, &dir, capacity)
        .map_err(|e| e.to_string())?;
    // Flushing seals the tail, so every shard carries an index.
    store.flush().map_err(|e| e.to_string())?;
    let mut shards = Vec::with_capacity(store.shard_count());
    for shard in 0..store.shard_count() {
        let index = store
            .shard_index(shard)
            .ok_or_else(|| format!("shard {shard} has no coarse index after flush"))?;
        shards.push(Json::Obj(vec![
            ("shard".into(), Json::num(shard as f64)),
            (
                "instances".into(),
                Json::num(index.assignments().len() as f64),
            ),
            ("cells".into(), Json::num(index.cell_count() as f64)),
            ("cell_counts".into(), counts(index.cell_counts())),
            (
                "assignments".into(),
                Json::Arr(
                    index
                        .assignments()
                        .iter()
                        .map(|&c| Json::num(f64::from(c)))
                        .collect(),
                ),
            ),
            (
                "centroids".into(),
                nums(index.centroids().iter().map(|&v| f64::from(v))),
            ),
        ]));
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(Json::Obj(vec![
        ("case".into(), Json::str(INDEX_TRACE_NAME)),
        ("seed".into(), Json::num(seed as f64)),
        ("images".into(), Json::num(images as f64)),
        ("dim".into(), Json::num(dim as f64)),
        ("capacity".into(), Json::num(capacity as f64)),
        ("shards".into(), Json::Arr(shards)),
    ]))
}

/// File stem of the warm-start golden trace under `tests/golden/`.
pub const WARM_TRACE_NAME: &str = "warm_seed7";

/// The golden file name of the warm-start trace.
#[must_use]
pub fn warm_trace_file_name() -> String {
    format!("{WARM_TRACE_NAME}.json")
}

/// Records warm-start convergence against a cold control: two sessions
/// on the same seeded corpus receive an identical scripted feedback
/// protocol, one training cold every round, the other re-seeding each
/// round's multistart from the previous best solver vector. Per round
/// the trace pins both trajectories (starts, per-start evaluations,
/// objective) and the warm concept; the summary pins the total
/// evaluation counts and their ratio — the convergence saving the
/// warm-start path claims. Any change to warm seeding, start-bag
/// reduction, or the solver shows up as a reviewed diff.
///
/// # Errors
/// A description of a session build or training failure.
pub fn record_warm_trace() -> Result<Json, String> {
    let (images, dim, seed, rounds) = (24usize, 8usize, 7u64, 3usize);
    // One scripted mark pair per inter-round gap: a fresh category-0
    // positive and a fresh off-category negative, all pool members.
    let marks: [(usize, usize); 2] = [(12, 6), (16, 7)];
    let db = synthetic_database(images, dim, seed);
    let config = RetrievalConfig {
        threads: 1, // single-threaded: evaluation order is part of the trace
        policy: parse_policy("identical")?,
        feedback_rounds: rounds,
        initial_positives: 2,
        initial_negatives: 2,
        max_iterations: 40,
        ..RetrievalConfig::default()
    };
    let pool: Vec<usize> = (0..db.len()).filter(|i| i % 3 != 2).collect();
    let test: Vec<usize> = (0..db.len()).filter(|i| i % 3 == 2).collect();
    let build = |warm: bool| {
        QuerySession::builder(&db)
            .config(&config)
            .target(0)
            .pool(pool.clone())
            .test(test.clone())
            .warm_start(warm)
            .build()
            .map_err(|e| e.to_string())
    };
    let mut cold = build(false)?;
    let mut warm = build(true)?;
    let mut round_objects = Vec::with_capacity(rounds);
    let (mut cold_total, mut warm_total) = (0usize, 0usize);
    for round in 1..=rounds {
        let cold_result = cold.train_round_traced().map_err(|e| e.to_string())?;
        let warm_result = warm.train_round_traced().map_err(|e| e.to_string())?;
        cold_total += cold_result.start_evaluations.iter().sum::<usize>();
        warm_total += warm_result.start_evaluations.iter().sum::<usize>();
        let leg = |result: &milr_mil::TrainResult| {
            Json::Obj(vec![
                ("starts".into(), Json::num(result.starts as f64)),
                (
                    "evaluations".into(),
                    counts(result.start_evaluations.clone()),
                ),
                ("nldd".into(), Json::Num(result.nldd)),
            ])
        };
        round_objects.push(Json::Obj(vec![
            ("round".into(), Json::num(round as f64)),
            ("positives".into(), Json::indices(cold.positives())),
            ("negatives".into(), Json::indices(cold.negatives())),
            ("cold".into(), leg(&cold_result)),
            ("warm".into(), leg(&warm_result)),
            (
                "warm_point".into(),
                nums(warm_result.concept.point().to_vec()),
            ),
            (
                "warm_weights".into(),
                nums(warm_result.concept.weights().to_vec()),
            ),
        ]));
        if round < rounds {
            // Identical marks on both sessions: concept divergence must
            // never contaminate the cold-vs-warm comparison.
            let (positive, negative) = marks[round - 1];
            for session in [&mut cold, &mut warm] {
                session
                    .add_positives(&[positive])
                    .map_err(|e| e.to_string())?;
                session
                    .add_negatives(&[negative])
                    .map_err(|e| e.to_string())?;
            }
        }
    }
    Ok(Json::Obj(vec![
        ("case".into(), Json::str(WARM_TRACE_NAME)),
        ("seed".into(), Json::num(seed as f64)),
        ("images".into(), Json::num(images as f64)),
        ("dim".into(), Json::num(dim as f64)),
        ("policy".into(), Json::str("identical")),
        ("rounds".into(), Json::Arr(round_objects)),
        (
            "summary".into(),
            Json::Obj(vec![
                ("cold_evaluations".into(), Json::num(cold_total as f64)),
                ("warm_evaluations".into(), Json::num(warm_total as f64)),
                (
                    "speedup".into(),
                    Json::Num(cold_total as f64 / warm_total as f64),
                ),
            ]),
        ),
    ]))
}

/// Structural diff of two traces. Returns one readable, path-qualified
/// line per difference (`rounds[1].nldd: golden 3.2 != actual 3.4`);
/// empty means the traces agree byte-for-byte.
pub fn compare_traces(golden: &Json, actual: &Json) -> Vec<String> {
    let mut diffs = Vec::new();
    diff_value("trace", golden, actual, &mut diffs);
    diffs
}

fn diff_value(path: &str, golden: &Json, actual: &Json, out: &mut Vec<String>) {
    match (golden, actual) {
        (Json::Obj(g), Json::Obj(a)) => {
            for (key, golden_value) in g {
                match a.iter().find(|(k, _)| k == key) {
                    Some((_, actual_value)) => {
                        diff_value(&format!("{path}.{key}"), golden_value, actual_value, out);
                    }
                    None => out.push(format!("{path}.{key}: missing from actual trace")),
                }
            }
            for (key, _) in a {
                if !g.iter().any(|(k, _)| k == key) {
                    out.push(format!("{path}.{key}: not in golden trace"));
                }
            }
        }
        (Json::Arr(g), Json::Arr(a)) => {
            if g.len() != a.len() {
                out.push(format!(
                    "{path}: golden has {} elements, actual has {}",
                    g.len(),
                    a.len()
                ));
            }
            for (i, (golden_value, actual_value)) in g.iter().zip(a).enumerate() {
                diff_value(&format!("{path}[{i}]"), golden_value, actual_value, out);
            }
        }
        _ => {
            // Leaves (and type mismatches) compare by their serialized
            // form — the byte-stability contract itself.
            let (g, a) = (golden.dump(), actual.dump());
            if g != a {
                out.push(format!("{path}: golden {g} != actual {a}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_byte_stable() {
        let case = &standard_cases()[0];
        let a = record_trace(case).unwrap();
        let b = record_trace(case).unwrap();
        assert_eq!(a.dump(), b.dump(), "same case must trace identically");
        assert!(compare_traces(&a, &b).is_empty());
    }

    #[test]
    fn index_trace_is_byte_stable() {
        let a = record_index_trace().unwrap();
        let b = record_index_trace().unwrap();
        assert_eq!(a.dump(), b.dump(), "index geometry must trace identically");
        assert!(compare_traces(&a, &b).is_empty());
    }

    #[test]
    fn warm_trace_is_byte_stable_and_shows_a_saving() {
        let a = record_warm_trace().unwrap();
        let b = record_warm_trace().unwrap();
        assert_eq!(a.dump(), b.dump(), "warm trace must record identically");
        assert!(compare_traces(&a, &b).is_empty());
        // The trace's own claim must hold: warm rounds spend strictly
        // fewer objective evaluations than the cold control.
        let Json::Obj(fields) = &a else {
            panic!("trace is an object")
        };
        let summary = fields
            .iter()
            .find(|(k, _)| k == "summary")
            .map(|(_, v)| v)
            .expect("trace has summary");
        let Json::Obj(summary) = summary else {
            panic!("summary is an object")
        };
        let num = |key: &str| {
            summary
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| match v {
                    Json::Num(n) => Some(*n),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("summary has numeric {key}"))
        };
        assert!(
            num("warm_evaluations") < num("cold_evaluations"),
            "warm must spend fewer evaluations: warm {} vs cold {}",
            num("warm_evaluations"),
            num("cold_evaluations")
        );
        assert!(
            num("speedup") > 1.0,
            "speedup {} must exceed 1",
            num("speedup")
        );
    }

    #[test]
    fn case_names_are_unique_file_stems() {
        let cases = standard_cases();
        let mut names: Vec<&str> = cases.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cases.len());
        for case in &cases {
            assert!(case.file_name().ends_with(".json"));
        }
    }

    #[test]
    fn perturbed_trace_diffs_with_a_readable_path() {
        let case = &standard_cases()[0];
        let golden = record_trace(case).unwrap();
        // Simulate a DD kernel change: perturb the first round's nldd.
        let mut actual = record_trace(case).unwrap();
        if let Json::Obj(ref mut fields) = actual {
            let rounds = fields
                .iter_mut()
                .find(|(k, _)| k == "rounds")
                .map(|(_, v)| v)
                .unwrap();
            if let Json::Arr(ref mut rounds) = rounds {
                if let Json::Obj(ref mut round) = rounds[0] {
                    let nldd = round
                        .iter_mut()
                        .find(|(k, _)| k == "nldd")
                        .map(|(_, v)| v)
                        .unwrap();
                    if let Json::Num(ref mut v) = nldd {
                        *v += 1e-9; // one ulp-scale nudge must be caught
                    }
                }
            }
        }
        let diffs = compare_traces(&golden, &actual);
        assert_eq!(diffs.len(), 1, "exactly one leaf changed: {diffs:?}");
        assert!(
            diffs[0].starts_with("trace.rounds[0].nldd: "),
            "diff must name the path: {}",
            diffs[0]
        );
        assert!(diffs[0].contains("golden") && diffs[0].contains("actual"));
    }

    #[test]
    fn structural_diffs_are_reported() {
        let golden = Json::Obj(vec![
            ("a".into(), Json::num(1.0)),
            ("b".into(), Json::Arr(vec![Json::num(1.0), Json::num(2.0)])),
        ]);
        let actual = Json::Obj(vec![
            ("a".into(), Json::str("one")),
            ("b".into(), Json::Arr(vec![Json::num(1.0)])),
            ("c".into(), Json::Bool(true)),
        ]);
        let diffs = compare_traces(&golden, &actual);
        assert!(diffs.iter().any(|d| d.starts_with("trace.a:")));
        assert!(diffs.iter().any(|d| d.contains("trace.b: golden has 2")));
        assert!(diffs.iter().any(|d| d.contains("trace.c: not in golden")));
    }
}
