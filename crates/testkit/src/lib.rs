#![warn(missing_docs)]

//! # milr-testkit
//!
//! Deterministic fault injection and regression tracing for the milr
//! workspace. Everything here is *test infrastructure* — no production
//! code depends on this crate; tests and the `milr golden` CLI command
//! do.
//!
//! * [`rng`] — the seeded SplitMix64 generator every fault schedule
//!   derives from, so a failing seed replays byte-for-byte.
//! * [`chaos`] — [`chaos::ChaosProxy`], a fault-injecting TCP proxy that
//!   sits between test clients and a real `milrd`: byte-at-a-time
//!   trickle (slow-loris), mid-body disconnects, delayed responses, all
//!   scripted per-connection from a seed.
//! * [`faultfs`] — [`milr_core::storage::StorageIo`] implementations
//!   that tear writes, cut reads short, and flip bits, proving snapshot
//!   corruption always surfaces as `CoreError::Storage`.
//! * [`corpus`] — deterministic synthetic retrieval databases (no image
//!   decoding, no I/O) that golden traces and chaos tests share.
//! * [`golden`] — the golden-trace recorder/comparator: serializes the
//!   full DD training trajectory (starts, eval counts, argmin, weights,
//!   final ranking) to byte-stable JSON and diffs recorded traces with
//!   readable, path-qualified messages.

pub mod chaos;
pub mod corpus;
pub mod faultfs;
pub mod golden;
pub mod rng;

pub use chaos::{ChaosProxy, Fault};
pub use corpus::synthetic_database;
pub use faultfs::{BitFlipFs, ShortReadFs, TornWriteFs};
pub use golden::{
    compare_traces, index_trace_file_name, record_index_trace, record_trace, record_warm_trace,
    standard_cases, warm_trace_file_name, GoldenCase, INDEX_TRACE_NAME, WARM_TRACE_NAME,
};
pub use rng::TestkitRng;
