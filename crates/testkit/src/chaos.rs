//! A fault-injecting TCP proxy.
//!
//! [`ChaosProxy`] sits between a test client and a real daemon and
//! misbehaves *on the client's behalf*: it trickles request bytes one at
//! a time (slow-loris), disconnects mid-body, or delays the response
//! leg. From the daemon's perspective the proxy is simply an unreliable
//! client — which is exactly the population a production accept loop
//! must survive.
//!
//! Fault selection is deterministic: connection *n* gets the fault drawn
//! from an RNG stream keyed by `(seed, n)` ([`Fault::for_connection`]),
//! so a failing seed printed by CI replays the identical schedule,
//! byte-for-byte ([`Fault::schedule_bytes`]). Tests that need a specific
//! fault on every connection use [`ChaosProxy::start_scripted`] instead.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::rng::TestkitRng;

/// How the proxy mangles one proxied connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Forward both directions untouched.
    Passthrough,
    /// Forward the request in `chunk`-byte pieces, sleeping `delay_ms`
    /// between pieces — the slow-loris client.
    Trickle {
        /// Bytes forwarded per piece (≥ 1).
        chunk: usize,
        /// Pause between pieces, in milliseconds.
        delay_ms: u64,
    },
    /// Forward only the first `after` request bytes, then close the
    /// upload direction — a client dying mid-body. The response leg
    /// stays open so the daemon's error status (if any) still reaches
    /// the client.
    TruncateRequest {
        /// Request bytes forwarded before the cut.
        after: usize,
    },
    /// Forward the request untouched but sit on the response for
    /// `delay_ms` before relaying it — a congested return path.
    DelayResponse {
        /// Response-leg delay, in milliseconds.
        delay_ms: u64,
    },
}

impl Fault {
    /// The fault connection `index` receives under `seed` — a pure
    /// function of its arguments, independent of accept interleaving.
    pub fn for_connection(seed: u64, index: u64) -> Fault {
        let mut rng = TestkitRng::stream(seed, index);
        match rng.below(4) {
            0 => Fault::Passthrough,
            1 => Fault::Trickle {
                chunk: 1 + rng.below(4) as usize,
                delay_ms: rng.below(3),
            },
            2 => Fault::TruncateRequest {
                after: 4 + rng.below(60) as usize,
            },
            _ => Fault::DelayResponse {
                delay_ms: 1 + rng.below(25),
            },
        }
    }

    /// A compact, stable text form (`trickle:2:1`).
    pub fn describe(&self) -> String {
        match self {
            Fault::Passthrough => "passthrough".into(),
            Fault::Trickle { chunk, delay_ms } => format!("trickle:{chunk}:{delay_ms}"),
            Fault::TruncateRequest { after } => format!("truncate:{after}"),
            Fault::DelayResponse { delay_ms } => format!("delay-response:{delay_ms}"),
        }
    }

    /// The serialized schedule the first `connections` connections under
    /// `seed` receive — one [`Self::describe`] line each. Replaying a
    /// seed must reproduce these bytes exactly; tests assert it.
    pub fn schedule_bytes(seed: u64, connections: u64) -> Vec<u8> {
        let mut out = Vec::new();
        for index in 0..connections {
            out.extend_from_slice(Self::for_connection(seed, index).describe().as_bytes());
            out.push(b'\n');
        }
        out
    }
}

/// Where a proxy's faults come from.
enum Plan {
    Seeded(u64),
    Scripted(Vec<Fault>),
}

impl Plan {
    fn fault_for(&self, index: u64) -> Fault {
        match self {
            Plan::Seeded(seed) => Fault::for_connection(*seed, index),
            Plan::Scripted(faults) => faults[(index as usize) % faults.len()].clone(),
        }
    }
}

/// The running proxy: accepts on an ephemeral local port and relays each
/// connection to `upstream` through its scheduled [`Fault`].
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    applied: Arc<Mutex<Vec<Fault>>>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy whose per-connection faults derive from `seed`.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start(upstream: SocketAddr, seed: u64) -> std::io::Result<ChaosProxy> {
        Self::spawn(upstream, Plan::Seeded(seed))
    }

    /// Starts a proxy applying `faults` round-robin in connection order
    /// (a single-element script applies it to every connection).
    ///
    /// # Errors
    /// Propagates bind failures. Panics if `faults` is empty.
    pub fn start_scripted(upstream: SocketAddr, faults: Vec<Fault>) -> std::io::Result<ChaosProxy> {
        assert!(!faults.is_empty(), "a script needs at least one fault");
        Self::spawn(upstream, Plan::Scripted(faults))
    }

    fn spawn(upstream: SocketAddr, plan: Plan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let applied = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let applied = Arc::clone(&applied);
            std::thread::Builder::new()
                .name("chaos-proxy".into())
                .spawn(move || {
                    let mut index = 0u64;
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        let Ok(client) = conn else { continue };
                        let fault = plan.fault_for(index);
                        index += 1;
                        applied.lock().expect("applied log").push(fault.clone());
                        std::thread::spawn(move || relay(client, upstream, &fault));
                    }
                })?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            applied,
            acceptor: Some(acceptor),
        })
    }

    /// The proxy's listening address — point test clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The faults applied so far, in connection-accept order.
    pub fn applied(&self) -> Vec<Fault> {
        self.applied.lock().expect("applied log").clone()
    }

    /// Stops accepting and joins the acceptor thread (relays already in
    /// flight finish on their own threads).
    pub fn stop(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

/// Relays one connection through `fault`: the request leg runs on its
/// own thread (so trickle delays overlap the response wait), the
/// response leg here.
fn relay(client: TcpStream, upstream: SocketAddr, fault: &Fault) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let deadline = Some(Duration::from_secs(10));
    let _ = client.set_read_timeout(deadline);
    let _ = server.set_read_timeout(deadline);
    let (Ok(client_read), Ok(server_write)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let uplink_fault = fault.clone();
    let uplink =
        std::thread::spawn(move || relay_request(client_read, server_write, &uplink_fault));
    if let Fault::DelayResponse { delay_ms } = fault {
        std::thread::sleep(Duration::from_millis(*delay_ms));
    }
    copy_until_eof(server, client);
    let _ = uplink.join();
}

/// Forwards the request bytes under `fault`, then closes the upload
/// direction so the upstream sees EOF exactly where the fault dictates.
fn relay_request(mut from: TcpStream, mut to: TcpStream, fault: &Fault) {
    let mut buf = [0u8; 4096];
    let mut forwarded = 0usize;
    'outer: loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let data = &buf[..n];
        match fault {
            Fault::TruncateRequest { after } => {
                let take = after.saturating_sub(forwarded).min(n);
                if take > 0 && to.write_all(&data[..take]).is_err() {
                    break;
                }
                forwarded += take;
                if forwarded >= *after {
                    break;
                }
            }
            Fault::Trickle { chunk, delay_ms } => {
                for piece in data.chunks((*chunk).max(1)) {
                    if to.write_all(piece).is_err() || to.flush().is_err() {
                        break 'outer;
                    }
                    std::thread::sleep(Duration::from_millis(*delay_ms));
                }
                forwarded += n;
            }
            Fault::Passthrough | Fault::DelayResponse { .. } => {
                if to.write_all(data).is_err() {
                    break;
                }
                forwarded += n;
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

fn copy_until_eof(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A byte-counting upstream: reads the request to EOF and answers
    /// with the decimal byte count, so tests can verify the fault's
    /// effect on the wire exactly.
    fn counting_upstream() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut stream) = conn else { break };
                let mut total = 0usize;
                let mut buf = [0u8; 1024];
                loop {
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => total += n,
                    }
                }
                let _ = stream.write_all(total.to_string().as_bytes());
                if total == 0 {
                    break; // the stop signal: an empty connection
                }
            }
        });
        (addr, handle)
    }

    fn roundtrip(proxy: &ChaosProxy, payload: &[u8]) -> usize {
        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.write_all(payload).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        reply.parse().unwrap()
    }

    fn stop_upstream(addr: SocketAddr, handle: JoinHandle<()>) {
        // An empty connection makes the counting upstream exit its loop.
        if let Ok(stream) = TcpStream::connect(addr) {
            let _ = stream.shutdown(Shutdown::Write);
            let mut sink = Vec::new();
            let mut stream = stream;
            let _ = stream.read_to_end(&mut sink);
        }
        let _ = handle.join();
    }

    #[test]
    fn passthrough_and_trickle_forward_every_byte() {
        let (addr, upstream) = counting_upstream();
        let proxy = ChaosProxy::start_scripted(
            addr,
            vec![
                Fault::Passthrough,
                Fault::Trickle {
                    chunk: 1,
                    delay_ms: 0,
                },
                Fault::DelayResponse { delay_ms: 5 },
            ],
        )
        .unwrap();
        for _ in 0..3 {
            assert_eq!(roundtrip(&proxy, b"hello chaos"), 11);
        }
        assert_eq!(proxy.applied().len(), 3);
        proxy.stop();
        stop_upstream(addr, upstream);
    }

    #[test]
    fn truncate_cuts_the_request_mid_body() {
        let (addr, upstream) = counting_upstream();
        let proxy =
            ChaosProxy::start_scripted(addr, vec![Fault::TruncateRequest { after: 5 }]).unwrap();
        assert_eq!(roundtrip(&proxy, b"0123456789"), 5);
        proxy.stop();
        stop_upstream(addr, upstream);
    }

    #[test]
    fn seeded_schedule_replays_byte_for_byte() {
        let bytes = Fault::schedule_bytes(0xC0FFEE, 32);
        assert_eq!(bytes, Fault::schedule_bytes(0xC0FFEE, 32));
        assert_ne!(bytes, Fault::schedule_bytes(0xC0FFED, 32));
        // The schedule covers every fault variant within a few dozen
        // connections (a degenerate schedule would blunt the suite).
        let text = String::from_utf8(bytes).unwrap();
        for needle in ["passthrough", "trickle:", "truncate:", "delay-response:"] {
            assert!(text.contains(needle), "{needle} missing from schedule");
        }
    }

    #[test]
    fn proxied_connections_record_the_seeded_schedule() {
        let (addr, upstream) = counting_upstream();
        let seed = 7;
        let proxy = ChaosProxy::start(addr, seed).unwrap();
        let connections = 6u64;
        for index in 0..connections {
            // Keep payloads longer than any truncation point irrelevant:
            // the applied-schedule check only needs the connection count.
            let _ = roundtrip(&proxy, format!("request number {index} padding").as_bytes());
        }
        let applied: Vec<Fault> = proxy.applied();
        let expected: Vec<Fault> = (0..connections)
            .map(|i| Fault::for_connection(seed, i))
            .collect();
        assert_eq!(applied, expected, "applied faults must match the schedule");
        proxy.stop();
        stop_upstream(addr, upstream);
    }
}
