//! The test kit's seeded generator: SplitMix64, the same tiny
//! constant-time generator the trainer's start-bag subsampling and the
//! vendored proptest use. One `u64` of state, full 2^64 period over
//! seeds, and — the property everything here leans on — a pure function
//! of the seed, so any recorded schedule replays exactly.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct TestkitRng(u64);

impl TestkitRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Derives an independent generator for stream `index` — fault
    /// schedules use one stream per connection so the fault applied to
    /// connection *n* depends only on `(seed, n)`, never on thread
    /// interleaving.
    pub fn stream(seed: u64, index: u64) -> Self {
        let mut rng = Self(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // One warm-up step decorrelates neighbouring stream indices.
        rng.next_u64();
        rng
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`bound` must be nonzero). The slight
    /// modulo bias is irrelevant for fault scheduling.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.next_u64() % bound
    }

    /// A float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = TestkitRng::new(42);
        let mut b = TestkitRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TestkitRng::new(1);
        let mut b = TestkitRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn streams_are_independent_of_draw_order() {
        // Stream n's output is a pure function of (seed, n).
        let first: Vec<u64> = (0..8)
            .map(|i| TestkitRng::stream(7, i).next_u64())
            .collect();
        let reversed: Vec<u64> = (0..8)
            .rev()
            .map(|i| TestkitRng::stream(7, i).next_u64())
            .collect();
        let mut reversed = reversed;
        reversed.reverse();
        assert_eq!(first, reversed);
    }

    #[test]
    fn below_and_unit_stay_in_range() {
        let mut rng = TestkitRng::new(99);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
