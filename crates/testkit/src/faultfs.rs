//! Fault-injecting [`StorageIo`] implementations.
//!
//! Each wraps the real filesystem and corrupts exactly one aspect of the
//! byte stream, modelling the classic snapshot failure modes:
//!
//! * [`TornWriteFs`] — the process "crashes" after `keep` bytes reach
//!   disk; writes past that point vanish but report success (no fsync
//!   barrier, the application believed the save worked).
//! * [`ShortReadFs`] — the file ends early at read time: reads past
//!   `limit` bytes return EOF.
//! * [`BitFlipFs`] — one bit at byte `offset` is flipped on the way in,
//!   the silent-corruption case only a checksum can catch.
//!
//! The storage layer's contract, which `crates/testkit/tests/faultfs.rs`
//! enforces over every fault and offset: each of these must surface as
//! [`milr_core::CoreError::Storage`] — never a panic, never a silently
//! wrong database.

use std::io::{Read, Write};
use std::path::Path;

use milr_core::storage::StorageIo;

/// Persists only the first `keep` bytes of whatever is saved; the rest
/// report success and vanish, like a crash before the cache flushed.
#[derive(Debug, Clone, Copy)]
pub struct TornWriteFs {
    /// Bytes that actually reach the file.
    pub keep: usize,
}

struct TornWriter {
    inner: std::fs::File,
    remaining: usize,
}

impl Write for TornWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let take = buf.len().min(self.remaining);
        if take > 0 {
            self.inner.write_all(&buf[..take])?;
            self.remaining -= take;
        }
        // Report full success: the torn bytes are silently lost.
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl StorageIo for TornWriteFs {
    fn reader(&self, path: &Path) -> std::io::Result<Box<dyn Read>> {
        Ok(Box::new(std::fs::File::open(path)?))
    }

    fn writer(&self, path: &Path) -> std::io::Result<Box<dyn Write>> {
        Ok(Box::new(TornWriter {
            inner: std::fs::File::create(path)?,
            remaining: self.keep,
        }))
    }
}

/// Reads report EOF after `limit` bytes even if the file continues.
#[derive(Debug, Clone, Copy)]
pub struct ShortReadFs {
    /// Bytes readable before the premature EOF.
    pub limit: usize,
}

struct ShortReader {
    inner: std::fs::File,
    remaining: usize,
}

impl Read for ShortReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.remaining == 0 {
            return Ok(0);
        }
        let cap = buf.len().min(self.remaining);
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n;
        Ok(n)
    }
}

impl StorageIo for ShortReadFs {
    fn reader(&self, path: &Path) -> std::io::Result<Box<dyn Read>> {
        Ok(Box::new(ShortReader {
            inner: std::fs::File::open(path)?,
            remaining: self.limit,
        }))
    }

    fn writer(&self, path: &Path) -> std::io::Result<Box<dyn Write>> {
        Ok(Box::new(std::fs::File::create(path)?))
    }
}

/// Flips one bit (`mask`, default the low bit) of the byte at `offset`
/// as it is read.
#[derive(Debug, Clone, Copy)]
pub struct BitFlipFs {
    /// Byte offset of the corrupted byte.
    pub offset: usize,
    /// XOR mask applied to that byte.
    pub mask: u8,
}

struct BitFlipReader {
    inner: std::fs::File,
    position: usize,
    offset: usize,
    mask: u8,
}

impl Read for BitFlipReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        if self.offset >= self.position && self.offset < self.position + n {
            buf[self.offset - self.position] ^= self.mask;
        }
        self.position += n;
        Ok(n)
    }
}

impl StorageIo for BitFlipFs {
    fn reader(&self, path: &Path) -> std::io::Result<Box<dyn Read>> {
        Ok(Box::new(BitFlipReader {
            inner: std::fs::File::open(path)?,
            position: 0,
            offset: self.offset,
            mask: self.mask,
        }))
    }

    fn writer(&self, path: &Path) -> std::io::Result<Box<dyn Write>> {
        Ok(Box::new(std::fs::File::create(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("milr_faultfs_unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn torn_writer_keeps_a_prefix_and_lies_about_the_rest() {
        let path = temp_path("torn.bin");
        let fs = TornWriteFs { keep: 4 };
        let mut w = fs.writer(&path).unwrap();
        w.write_all(b"0123456789").unwrap(); // reports success
        w.flush().unwrap();
        drop(w);
        assert_eq!(std::fs::read(&path).unwrap(), b"0123");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn short_reader_ends_early() {
        let path = temp_path("short.bin");
        std::fs::write(&path, b"0123456789").unwrap();
        let fs = ShortReadFs { limit: 6 };
        let mut r = fs.reader(&path).unwrap();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"012345");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bit_flipper_corrupts_exactly_one_byte() {
        let path = temp_path("flip.bin");
        std::fs::write(&path, b"0123456789").unwrap();
        let fs = BitFlipFs {
            offset: 3,
            mask: 0x01,
        };
        let mut r = fs.reader(&path).unwrap();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"0122456789"); // '3' ^ 0x01 == '2'
        std::fs::remove_file(path).ok();
    }
}
