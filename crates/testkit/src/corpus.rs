//! Deterministic synthetic retrieval corpora.
//!
//! Golden traces and chaos suites need a database that is (a) cheap —
//! no image decoding, no disk — and (b) a pure function of its seed, so
//! every run of every test sees bit-identical bags. Categories are
//! separated clusters in feature space with per-instance seeded jitter:
//! close enough to real §3.5 bags for training to behave, synthetic
//! enough to be instant.

use milr_core::RetrievalDatabase;
use milr_mil::Bag;

use crate::rng::TestkitRng;

/// Categories the synthetic corpus cycles through (image `i` belongs to
/// category `i % CATEGORIES`).
pub const CATEGORIES: usize = 4;

/// Instances per synthetic bag.
pub const INSTANCES_PER_BAG: usize = 3;

/// Builds a clustered synthetic database: `images` bags of dimension
/// `dim`, labels cycling over [`CATEGORIES`] categories, all features a
/// pure function of `seed`.
///
/// # Panics
/// Panics on degenerate arguments (`images == 0` or `dim == 0`) — the
/// corpus is test infrastructure and a bad call is a bug in the test.
pub fn synthetic_database(images: usize, dim: usize, seed: u64) -> RetrievalDatabase {
    assert!(images > 0 && dim > 0, "corpus needs images and dimensions");
    let mut rng = TestkitRng::new(seed);
    let mut bags = Vec::with_capacity(images);
    let mut labels = Vec::with_capacity(images);
    for i in 0..images {
        let category = i % CATEGORIES;
        let mut instances = Vec::with_capacity(INSTANCES_PER_BAG);
        for instance in 0..INSTANCES_PER_BAG {
            let mut features = Vec::with_capacity(dim);
            for d in 0..dim {
                // Cluster centres spread per (category, dimension,
                // instance); jitter keeps bags distinct without
                // overlapping clusters.
                let centre = ((category * 7 + d * 3 + instance) % 11) as f32 / 11.0 * 4.0 - 2.0;
                let jitter = (rng.unit_f64() as f32 - 0.5) * 0.3;
                features.push(centre + jitter);
            }
            instances.push(features);
        }
        bags.push(Bag::new(instances).expect("non-empty synthetic bag"));
        labels.push(category);
    }
    RetrievalDatabase::from_bags(bags, labels).expect("consistent synthetic corpus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_a_pure_function_of_its_seed() {
        let a = synthetic_database(16, 6, 5);
        let b = synthetic_database(16, 6, 5);
        assert_eq!(a.labels(), b.labels());
        for i in 0..a.len() {
            assert_eq!(a.bag(i).unwrap(), b.bag(i).unwrap());
        }
        let c = synthetic_database(16, 6, 6);
        assert_ne!(
            a.bag(0).unwrap(),
            c.bag(0).unwrap(),
            "different seeds must differ"
        );
    }

    #[test]
    fn corpus_shape_matches_the_request() {
        let db = synthetic_database(10, 5, 1);
        assert_eq!(db.len(), 10);
        assert_eq!(db.feature_dim(), 5);
        assert_eq!(db.category_count(), CATEGORIES);
        assert_eq!(db.labels()[..5], [0, 1, 2, 3, 0]);
    }
}
