//! The storage layer's fault contract, enforced exhaustively: every
//! torn write, short read, and single-bit flip a [`StorageIo`] fault
//! can inject must surface as [`CoreError::Storage`] — never a panic,
//! never a silently wrong database or concept.

use std::path::{Path, PathBuf};

use milr_core::storage::{OsFs, StorageIo, Store};
use milr_core::{CoreError, RetrievalDatabase};
use milr_mil::Concept;
use milr_testkit::{synthetic_database, BitFlipFs, ShortReadFs, TornWriteFs};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("milr_faultfs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn assert_storage_error<T: std::fmt::Debug>(result: Result<T, CoreError>, context: &str) {
    match result {
        Err(CoreError::Storage { path, reason }) => {
            assert!(!path.is_empty(), "{context}: error must name the file");
            assert!(!reason.is_empty(), "{context}: error must say what broke");
        }
        Err(other) => panic!("{context}: expected CoreError::Storage, got {other}"),
        Ok(_) => panic!("{context}: corrupt data loaded without an error"),
    }
}

fn saved_database(path: &Path) -> u64 {
    let db = synthetic_database(8, 4, 21);
    Store::new(&OsFs).save(&db, path).expect("clean save");
    std::fs::metadata(path).expect("saved file").len()
}

fn saved_concept(path: &Path) -> u64 {
    let concept = Concept::new(vec![0.25, -1.5, 3.0], vec![1.0, 0.5, 2.0]);
    Store::new(&OsFs).save(&concept, path).expect("clean save");
    std::fs::metadata(path).expect("saved file").len()
}

#[test]
fn torn_database_writes_never_load() {
    let path = scratch("torn_db.milr");
    let len = saved_database(&path) as usize;
    let db = synthetic_database(8, 4, 21);
    // Sweep the torn point across the whole file, including 0 (nothing
    // persisted) and len-1 (only the checksum torn off).
    for keep in (0..len).step_by(7).chain([0, len - 1]) {
        Store::new(&TornWriteFs { keep })
            .save(&db, &path)
            .expect("the torn writer lies");
        assert_storage_error(
            Store::new(&OsFs).open::<RetrievalDatabase>(&path),
            &format!("torn write at byte {keep}"),
        );
    }
}

#[test]
fn short_database_reads_never_load() {
    let path = scratch("short_db.milr");
    let len = saved_database(&path) as usize;
    for limit in (0..len).step_by(7).chain([0, len - 1]) {
        assert_storage_error(
            Store::new(&ShortReadFs { limit }).open::<RetrievalDatabase>(&path),
            &format!("read truncated at byte {limit}"),
        );
    }
}

#[test]
fn flipped_database_bits_never_load() {
    let path = scratch("flip_db.milr");
    let len = saved_database(&path) as usize;
    // Every byte, several masks: header, counts, floats, and the
    // checksum itself must all be caught.
    for offset in 0..len {
        for mask in [0x01u8, 0x80] {
            assert_storage_error(
                Store::new(&BitFlipFs { offset, mask }).open::<RetrievalDatabase>(&path),
                &format!("bit flip at byte {offset} mask {mask:#04x}"),
            );
        }
    }
}

#[test]
fn torn_concept_writes_never_load() {
    let path = scratch("torn_concept.milr");
    let len = saved_concept(&path) as usize;
    let concept = Concept::new(vec![0.25, -1.5, 3.0], vec![1.0, 0.5, 2.0]);
    for keep in (0..len).step_by(5).chain([0, len - 1]) {
        Store::new(&TornWriteFs { keep })
            .save(&concept, &path)
            .expect("the torn writer lies");
        assert_storage_error(
            Store::new(&OsFs).open::<Concept>(&path),
            &format!("torn write at byte {keep}"),
        );
    }
}

#[test]
fn short_concept_reads_never_load() {
    let path = scratch("short_concept.milr");
    let len = saved_concept(&path) as usize;
    for limit in (0..len).step_by(5).chain([0, len - 1]) {
        assert_storage_error(
            Store::new(&ShortReadFs { limit }).open::<Concept>(&path),
            &format!("read truncated at byte {limit}"),
        );
    }
}

#[test]
fn flipped_concept_bits_never_load() {
    let path = scratch("flip_concept.milr");
    let len = saved_concept(&path) as usize;
    for offset in 0..len {
        for mask in [0x01u8, 0x80] {
            assert_storage_error(
                Store::new(&BitFlipFs { offset, mask }).open::<Concept>(&path),
                &format!("bit flip at byte {offset} mask {mask:#04x}"),
            );
        }
    }
}

#[test]
fn clean_roundtrips_still_work_through_the_seam() {
    // The passthrough sanity check: the same paths the fault sweeps use
    // load fine when no fault is injected — the sweeps above fail
    // because of the faults, not the harness.
    let path = scratch("clean_db.milr");
    saved_database(&path);
    let db = Store::new(&OsFs)
        .open::<RetrievalDatabase>(&path)
        .expect("clean load");
    let original = synthetic_database(8, 4, 21);
    assert_eq!(db.len(), original.len());
    assert_eq!(db.labels(), original.labels());
    for i in 0..db.len() {
        assert_eq!(db.bag(i).unwrap(), original.bag(i).unwrap());
    }

    let concept_path = scratch("clean_concept.milr");
    saved_concept(&concept_path);
    let concept = Store::new(&OsFs)
        .open::<Concept>(&concept_path)
        .expect("clean load");
    assert_eq!(concept.point(), &[0.25, -1.5, 3.0]);
    assert_eq!(concept.weights(), &[1.0, 0.5, 2.0]);
}

/// A fault that can't exist is a silent hole in the suite: make sure
/// the seam is actually being exercised by checking that the injected
/// `StorageIo` is called (a passthrough typo would pass every sweep).
#[test]
fn fault_seam_actually_intercepts_io() {
    struct Refusing;
    impl StorageIo for Refusing {
        fn reader(&self, _: &Path) -> std::io::Result<Box<dyn std::io::Read>> {
            Err(std::io::Error::other("injected reader refusal"))
        }
        fn writer(&self, _: &Path) -> std::io::Result<Box<dyn std::io::Write>> {
            Err(std::io::Error::other("injected writer refusal"))
        }
    }
    let path = scratch("refused.milr");
    let db = synthetic_database(4, 3, 1);
    assert_storage_error(Store::new(&Refusing).save(&db, &path), "refused write");
    assert_storage_error(
        Store::new(&Refusing).open::<RetrievalDatabase>(&path),
        "refused read",
    );
}

/// Builds a sharded v4 store (manifest + shard files, each carrying a
/// persisted quantized tier) and returns its directory plus the length
/// of its largest file, so the sweeps below can cover every byte of
/// every file — header, bag payload, quantized-tier section, and
/// trailing checksum alike.
fn saved_sharded_store(tag: &str) -> (PathBuf, usize) {
    let dir = scratch(&format!("sharded_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    let db = synthetic_database(10, 4, 33);
    let mut store = milr_store::ShardedDatabase::from_database(&db, &dir, 3).expect("build store");
    store.flush().expect("clean flush");
    assert!(store.shard_count() >= 3, "fixture must span several shards");
    let max_len = std::fs::read_dir(&dir)
        .expect("store dir")
        .map(|e| e.expect("entry").metadata().expect("metadata").len() as usize)
        .max()
        .expect("store files");
    (dir, max_len)
}

#[test]
fn flipped_sharded_store_bits_never_load() {
    let (dir, max_len) = saved_sharded_store("flip");
    // Every file is read through the same seam, so one sweep position
    // corrupts whichever of the manifest / shard files reaches that
    // offset — including the v4 quantized-tier section at the tail of
    // each shard file. Each must be caught by a trailing checksum.
    for offset in (0..max_len).step_by(11) {
        for mask in [0x01, 0x80] {
            assert_storage_error(
                milr_store::ShardedDatabase::open_with(&BitFlipFs { offset, mask }, &dir),
                &format!("sharded bit flip at byte {offset} mask {mask:#04x}"),
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn short_sharded_store_reads_never_load() {
    let (dir, max_len) = saved_sharded_store("short");
    for limit in (0..max_len).step_by(13).chain([max_len - 1]) {
        assert_storage_error(
            milr_store::ShardedDatabase::open_with(&ShortReadFs { limit }, &dir),
            &format!("sharded short read at {limit} bytes"),
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The byte range of shard 0's v5 coarse-index section: it sits
/// between the quantized tier and the trailing 8-byte checksum, and
/// its length follows from the index geometry the clean open reports.
fn index_section_range(dir: &Path) -> std::ops::Range<usize> {
    let clean = milr_store::ShardedDatabase::open(dir).expect("clean open");
    let index = clean.shard_index(0).expect("sealed shards carry an index");
    let index_len = 16 // flag + cell count
        + index.centroids().len() * 4
        + index.radii().len() * 8
        + index.assignments().len() * 4;
    let shard_len = std::fs::metadata(dir.join(milr_store::shard_file_name(0)))
        .expect("shard file")
        .len() as usize;
    shard_len - 8 - index_len..shard_len - 8
}

#[test]
fn flipped_index_section_bits_never_load() {
    // Target the coarse-index section specifically, every byte, both
    // masks: centroid block, radii, and assignments are all covered by
    // the shard's trailing checksum, so each flip must surface as
    // `CoreError::Storage` — never a panic, and never a silent load
    // whose skip decisions could differ from the persisted geometry.
    // (Lazy rebuild is reserved for pre-v5 files that have no section
    // at all; a *corrupt* section always refuses to open.)
    let (dir, _) = saved_sharded_store("flip_index");
    for offset in index_section_range(&dir) {
        for mask in [0x01, 0x80] {
            assert_storage_error(
                milr_store::ShardedDatabase::open_with(&BitFlipFs { offset, mask }, &dir),
                &format!("index-section bit flip at byte {offset} mask {mask:#04x}"),
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn short_index_section_reads_never_load() {
    // Truncation anywhere inside the index section must be caught too
    // (the reader would otherwise run off the end mid-centroid).
    let (dir, _) = saved_sharded_store("short_index");
    for limit in index_section_range(&dir) {
        assert_storage_error(
            milr_store::ShardedDatabase::open_with(&ShortReadFs { limit }, &dir),
            &format!("index-section short read at {limit} bytes"),
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_sharded_flush_never_loads() {
    // Tear the flush itself: every file the store writes is truncated
    // at `keep` bytes. Any torn point must leave a store that refuses
    // to open — the manifest digests cross-check the shard files.
    let (clean_dir, max_len) = saved_sharded_store("torn_ref");
    std::fs::remove_dir_all(&clean_dir).ok();
    let db = synthetic_database(10, 4, 33);
    for keep in (0..max_len).step_by(17).chain([0, max_len - 1]) {
        let dir = scratch(&format!("sharded_torn_{keep}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut store =
            milr_store::ShardedDatabase::from_database(&db, &dir, 3).expect("build store");
        match store.flush_with(&TornWriteFs { keep }) {
            // A flush that already noticed the tear is an immediate pass.
            Err(_) => {}
            Ok(()) => assert_storage_error(
                milr_store::ShardedDatabase::open(&dir),
                &format!("torn sharded flush at byte {keep}"),
            ),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
