//! The baseline's SBN colour extractor as a [`FeatureBackend`], plus
//! the backend name registry.
//!
//! `milr-core` defines the trait and the default gray-block backend; the
//! baseline crate contributes the second implementation and the lookup
//! table (`milr-core` cannot depend on this crate), which is what the
//! CLI's `--backend` flag and the scenario benchmark resolve through.

use std::sync::Arc;

use milr_core::{CoreError, FeatureBackend, GrayBlockBackend, RetrievalConfig};
use milr_imgproc::{GrayImage, RgbImage};
use milr_mil::Bag;

use crate::sbn::{sbn_bag, BLOB, GRID, SBN_DIM};

/// Wire/CLI id of the SBN colour backend.
pub const SBN_ID: &str = "sbn";

/// Maron & Lakshmi Ratan's "single blob with neighbours" colour
/// extractor ([`sbn_bag`]) behind the [`FeatureBackend`] trait: 15-dim
/// instances (blob RGB + four neighbour differences) on an 8×8
/// mean-colour grid. Gray input replicates the luminance into all three
/// channels, so gray corpora remain usable — the colour differences then
/// measure pure intensity structure.
#[derive(Debug, Clone, Copy, Default)]
pub struct SbnBackend;

impl FeatureBackend for SbnBackend {
    fn id(&self) -> &'static str {
        SBN_ID
    }

    fn params(&self, _config: &RetrievalConfig) -> Vec<(String, f64)> {
        vec![
            ("grid".to_string(), GRID as f64),
            ("blob".to_string(), BLOB as f64),
        ]
    }

    fn feature_dim(&self, _config: &RetrievalConfig) -> usize {
        SBN_DIM
    }

    fn gray_bag(&self, image: &GrayImage, _config: &RetrievalConfig) -> Result<Bag, CoreError> {
        let rgb = RgbImage::from_fn(image.width(), image.height(), |x, y| [image.get(x, y); 3])
            .map_err(CoreError::Image)?;
        sbn_bag(&rgb).map_err(CoreError::Mil)
    }

    fn color_bag(&self, image: &RgbImage, _config: &RetrievalConfig) -> Result<Bag, CoreError> {
        sbn_bag(image).map_err(CoreError::Mil)
    }
}

/// Resolves a backend id to its implementation — `gray-block` and `sbn`
/// today. `None` for unknown ids; callers turn that into their own
/// clean reject (CLI usage error, daemon 400).
pub fn feature_backend(id: &str) -> Option<Arc<dyn FeatureBackend>> {
    match id {
        milr_core::backend::GRAY_BLOCK_ID => Some(Arc::new(GrayBlockBackend)),
        SBN_ID => Some(Arc::new(SbnBackend)),
        _ => None,
    }
}

/// Every registered backend id, in registry order (the scenario
/// benchmark's column order).
pub const BACKEND_IDS: [&str; 2] = [milr_core::backend::GRAY_BLOCK_ID, SBN_ID];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_listed_backend() {
        for id in BACKEND_IDS {
            let backend = feature_backend(id).unwrap_or_else(|| panic!("{id} must resolve"));
            assert_eq!(backend.id(), id);
        }
        assert!(feature_backend("histogram").is_none());
        assert!(feature_backend("").is_none());
    }

    #[test]
    fn sbn_backend_matches_the_direct_extractor() {
        let config = RetrievalConfig::default();
        let rgb = RgbImage::from_fn(32, 32, |x, y| {
            [(x * 8) as f32, (y * 8) as f32, ((x + y) * 4) as f32]
        })
        .unwrap();
        let via_backend = SbnBackend.color_bag(&rgb, &config).unwrap();
        assert_eq!(via_backend, sbn_bag(&rgb).unwrap());
        assert_eq!(via_backend.dim(), SBN_DIM);
        assert_eq!(SbnBackend.feature_dim(&config), SBN_DIM);
    }

    #[test]
    fn sbn_gray_input_replicates_luminance() {
        let config = RetrievalConfig::default();
        let gray = GrayImage::from_fn(32, 32, |x, y| ((x * 7 + y * 3) % 200) as f32).unwrap();
        let bag = SbnBackend.gray_bag(&gray, &config).unwrap();
        assert_eq!(bag.dim(), SBN_DIM);
        // Replicated channels ⇒ R = G = B in every instance's blob mean.
        for inst in bag.instances() {
            assert_eq!(inst[0], inst[1]);
            assert_eq!(inst[1], inst[2]);
        }
    }

    #[test]
    fn backend_tags_distinguish_the_two_pipelines() {
        let config = RetrievalConfig::default();
        let gray_tag = GrayBlockBackend.tag(&config);
        let sbn_tag = SbnBackend.tag(&config);
        assert_ne!(gray_tag.id, sbn_tag.id);
        assert_eq!(sbn_tag.params[0], ("grid".to_string(), 8.0));
    }
}
