//! The row colour-statistics bag generator.
//!
//! The second of Maron & Lakshmi Ratan's bag generators: the image is
//! reduced to a stack of [`ROWS`] horizontal bands; an instance describes
//! one interior band by its mean RGB together with the mean RGB of the
//! bands directly above and below — 9 dimensions. Natural scenes with
//! strong horizontal layering (fields, lakes, sunsets) are exactly what
//! this representation captures.

use milr_imgproc::{IntegralImage, RgbImage};
use milr_mil::{Bag, MilError};

/// Number of horizontal bands the image is reduced to.
pub const ROWS: usize = 8;

/// Dimensions of one row instance: row RGB + above RGB + below RGB.
pub const ROW_DIM: usize = 9;

/// Mean RGB (scaled to `[0, 1]`) of each horizontal band.
fn band_means(image: &RgbImage) -> Vec<[f64; 3]> {
    let integrals: Vec<IntegralImage> = (0..3)
        .map(|c| IntegralImage::new(&image.channel(c)))
        .collect();
    let w = image.width();
    let h = image.height();
    (0..ROWS)
        .map(|band| {
            let y0 = band * h / ROWS;
            let y1 = ((band + 1) * h / ROWS).max(y0 + 1).min(h);
            let mut mean = [0.0f64; 3];
            for (c, integral) in integrals.iter().enumerate() {
                mean[c] = integral.block_mean(0, y0, w, y1) / 255.0;
            }
            mean
        })
        .collect()
}

/// Builds the row bag for a colour image: one instance per interior band
/// (`ROWS − 2` instances).
///
/// # Errors
/// Returns [`MilError`] only for degenerate images that produce no
/// instances; any image of at least `ROWS` pixels height succeeds.
pub fn row_bag(image: &RgbImage) -> Result<Bag, MilError> {
    let bands = band_means(image);
    let mut instances = Vec::with_capacity(ROWS - 2);
    for band in 1..ROWS - 1 {
        let mut v = Vec::with_capacity(ROW_DIM);
        for source in [&bands[band], &bands[band - 1], &bands[band + 1]] {
            v.extend(source.iter().map(|&value| value as f32));
        }
        instances.push(v);
    }
    Bag::new(instances)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_bag_shape() {
        let img = RgbImage::filled(32, 32, [99.0; 3]).unwrap();
        let bag = row_bag(&img).unwrap();
        assert_eq!(bag.len(), ROWS - 2);
        assert_eq!(bag.dim(), ROW_DIM);
    }

    #[test]
    fn flat_image_instances_repeat_the_colour() {
        let img = RgbImage::filled(24, 24, [51.0, 102.0, 204.0]).unwrap();
        let bag = row_bag(&img).unwrap();
        let expected = [51.0 / 255.0, 102.0 / 255.0, 204.0 / 255.0];
        for inst in bag.instances() {
            for trio in inst.chunks_exact(3) {
                for (a, b) in trio.iter().zip(&expected) {
                    assert!((f64::from(*a) - b).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn horizontal_bands_are_captured() {
        // Bright top half, dark bottom half: the band at the boundary has
        // a bright "above" and dark "below".
        let img =
            RgbImage::from_fn(32, 32, |_, y| if y < 16 { [220.0; 3] } else { [30.0; 3] }).unwrap();
        let bag = row_bag(&img).unwrap();
        // Band 3 (rows 12..16) is bright; band 4 (16..20) dark. Instance
        // for band 4 (index 3): self dark, above bright.
        let inst = bag.instance(3);
        assert!(inst[0] < 0.2, "self should be dark: {inst:?}");
        assert!(inst[3] > 0.8, "above should be bright: {inst:?}");
        assert!(inst[6] < 0.2, "below should be dark: {inst:?}");
    }

    #[test]
    fn instances_differ_across_a_gradient() {
        let img = RgbImage::from_fn(16, 64, |_, y| [y as f32 * 4.0; 3]).unwrap();
        let bag = row_bag(&img).unwrap();
        let first = bag.instance(0)[0];
        let last = bag.instance(ROWS - 3)[0];
        assert!(
            last > first + 0.3,
            "gradient must separate bands: {first} vs {last}"
        );
    }

    #[test]
    fn short_images_clamp_bands() {
        let img = RgbImage::from_fn(10, 8, |_, y| [(y * 30) as f32; 3]).unwrap();
        let bag = row_bag(&img).unwrap();
        assert_eq!(bag.len(), ROWS - 2);
    }
}
