//! A QBIC-style global-histogram retrieval baseline.
//!
//! The paper's introduction dismisses global-feature queries: systems
//! like IBM QBIC "query an image database by average color, histogram,
//! texture…" but "image queries along these lines are not powerful
//! enough, and more complex queries (such as 'all pictures that contain
//! waterfalls') are hard to formulate." This baseline makes that claim
//! testable (`ext-qbic`): rank the database by gray-histogram
//! intersection with the *mean histogram of the positive examples*,
//! ignoring negatives, regions and learning entirely.

use milr_imgproc::{histogram::Histogram, GrayImage};

/// A database of per-image gray histograms.
#[derive(Debug, Clone)]
pub struct HistogramDatabase {
    histograms: Vec<Histogram>,
    labels: Vec<usize>,
}

impl HistogramDatabase {
    /// Histograms every image with `bins` bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` (propagated from [`Histogram::of`]).
    pub fn from_labelled_images(images: &[(GrayImage, usize)], bins: usize) -> Self {
        let histograms = images
            .iter()
            .map(|(img, _)| Histogram::of(img, bins))
            .collect();
        let labels = images.iter().map(|&(_, l)| l).collect();
        Self { histograms, labels }
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// Labels, in image order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Ranks `candidates` by descending histogram intersection with the
    /// mean histogram of the `positive_examples` (database indices).
    /// Returned pairs carry `1 − intersection` so that, like the DD
    /// ranking, *smaller is more similar*.
    ///
    /// # Panics
    /// Panics if `positive_examples` is empty or any index is out of
    /// range.
    pub fn rank(&self, positive_examples: &[usize], candidates: &[usize]) -> Vec<(usize, f64)> {
        assert!(
            !positive_examples.is_empty(),
            "QBIC baseline needs positive examples"
        );
        let examples: Vec<Histogram> = positive_examples
            .iter()
            .map(|&i| self.histograms[i].clone())
            .collect();
        let query = Histogram::mean_of(&examples);
        let mut scored: Vec<(usize, f64)> = candidates
            .iter()
            .map(|&i| (i, 1.0 - self.histograms[i].intersection(&query)))
            .collect();
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("intersection scores are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two populations with distinct global brightness distributions.
    fn images() -> Vec<(GrayImage, usize)> {
        let mut v = Vec::new();
        for i in 0..4 {
            // Dark population.
            v.push((
                GrayImage::from_fn(16, 16, move |x, y| ((x + y + i) % 60) as f32).unwrap(),
                0,
            ));
        }
        for i in 0..4 {
            // Bright population.
            v.push((
                GrayImage::from_fn(16, 16, move |x, y| 180.0 + ((x + y + i) % 60) as f32).unwrap(),
                1,
            ));
        }
        v
    }

    #[test]
    fn database_shape() {
        let db = HistogramDatabase::from_labelled_images(&images(), 16);
        assert_eq!(db.len(), 8);
        assert_eq!(db.labels(), &[0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn ranks_globally_similar_images_first() {
        let db = HistogramDatabase::from_labelled_images(&images(), 16);
        // Query with two dark examples; other dark images must lead.
        let ranking = db.rank(&[0, 1], &[2, 3, 4, 5, 6, 7]);
        assert_eq!(db.labels()[ranking[0].0], 0);
        assert_eq!(db.labels()[ranking[1].0], 0);
        assert_eq!(db.labels()[ranking[5].0], 1);
        // Scores ascend.
        for w in ranking.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn scores_are_distances_in_unit_range() {
        let db = HistogramDatabase::from_labelled_images(&images(), 16);
        let ranking = db.rank(&[0], &[0, 4]);
        for &(_, d) in &ranking {
            assert!((0.0..=1.0).contains(&d));
        }
        // Self-query distance is 0.
        assert_eq!(ranking[0], (0, 0.0));
    }

    #[test]
    #[should_panic(expected = "positive examples")]
    fn empty_query_rejected() {
        let db = HistogramDatabase::from_labelled_images(&images(), 16);
        let _ = db.rank(&[], &[0]);
    }

    #[test]
    fn global_histograms_cannot_localise() {
        // The motivating failure: two images with identical histograms
        // but opposite *spatial* layout are indistinguishable to this
        // baseline.
        let left_bright =
            GrayImage::from_fn(16, 16, |x, _| if x < 8 { 220.0 } else { 30.0 }).unwrap();
        let right_bright =
            GrayImage::from_fn(16, 16, |x, _| if x >= 8 { 220.0 } else { 30.0 }).unwrap();
        let db =
            HistogramDatabase::from_labelled_images(&[(left_bright, 0), (right_bright, 1)], 32);
        let ranking = db.rank(&[0], &[1]);
        assert!(
            ranking[0].1 < 1e-9,
            "identical histograms must look identical to the global baseline"
        );
    }
}
