//! The "single blob with neighbours" (SBN) colour bag generator.
//!
//! Following Maron & Lakshmi Ratan: the image is reduced to an 8×8 grid
//! of mean-colour cells; an instance describes one 2×2-cell *blob* by its
//! mean RGB plus the RGB differences to the 2×2 blobs directly above,
//! below, left and right — 15 dimensions in all. Every blob position
//! whose four neighbours fit inside the grid contributes one instance
//! (nine positions on an 8×8 grid).
//!
//! Channels are scaled to `[0, 1]` so the Gaussian bump
//! `exp(−‖·‖²)` of the DD model operates at a reasonable scale.

use milr_imgproc::{GrayImage, IntegralImage, RgbImage};
use milr_mil::{Bag, MilError};

/// Grid resolution the image is reduced to.
pub const GRID: usize = 8;

/// Cells per blob side (blobs are `BLOB × BLOB` cells).
pub const BLOB: usize = 2;

/// Dimensions of one SBN instance: blob RGB + 4 neighbour differences.
pub const SBN_DIM: usize = 15;

/// Mean-colour grid: `GRID × GRID` cells, 3 channels each, in `[0, 1]`.
fn color_grid(image: &RgbImage) -> Vec<[f64; 3]> {
    let integrals: Vec<IntegralImage> = (0..3)
        .map(|c| IntegralImage::new(&channel(image, c)))
        .collect();
    let w = image.width();
    let h = image.height();
    let mut grid = Vec::with_capacity(GRID * GRID);
    for gy in 0..GRID {
        for gx in 0..GRID {
            let x0 = gx * w / GRID;
            let x1 = ((gx + 1) * w / GRID).max(x0 + 1).min(w);
            let y0 = gy * h / GRID;
            let y1 = ((gy + 1) * h / GRID).max(y0 + 1).min(h);
            let mut cell = [0.0f64; 3];
            for (c, integral) in integrals.iter().enumerate() {
                cell[c] = integral.block_mean(x0, y0, x1, y1) / 255.0;
            }
            grid.push(cell);
        }
    }
    grid
}

fn channel(image: &RgbImage, c: usize) -> GrayImage {
    image.channel(c)
}

/// Mean colour of the `BLOB × BLOB` blob whose top-left cell is
/// `(gx, gy)`.
fn blob_mean(grid: &[[f64; 3]], gx: usize, gy: usize) -> [f64; 3] {
    let mut acc = [0.0f64; 3];
    for dy in 0..BLOB {
        for dx in 0..BLOB {
            let cell = grid[(gy + dy) * GRID + (gx + dx)];
            for c in 0..3 {
                acc[c] += cell[c];
            }
        }
    }
    let n = (BLOB * BLOB) as f64;
    [acc[0] / n, acc[1] / n, acc[2] / n]
}

/// Builds the SBN bag for a colour image.
///
/// # Errors
/// Returns [`MilError`] only if the image is degenerate enough to
/// produce no instances (images at least `GRID × GRID` pixels always
/// succeed).
pub fn sbn_bag(image: &RgbImage) -> Result<Bag, MilError> {
    let grid = color_grid(image);
    let mut instances = Vec::new();
    // Blob top-left positions such that all four neighbour blobs fit:
    // x−BLOB ≥ 0 and x+2·BLOB ≤ GRID.
    for gy in BLOB..=(GRID - 2 * BLOB) {
        for gx in BLOB..=(GRID - 2 * BLOB) {
            let center = blob_mean(&grid, gx, gy);
            let up = blob_mean(&grid, gx, gy - BLOB);
            let down = blob_mean(&grid, gx, gy + BLOB);
            let left = blob_mean(&grid, gx - BLOB, gy);
            let right = blob_mean(&grid, gx + BLOB, gy);
            let mut v = Vec::with_capacity(SBN_DIM);
            v.extend(center.iter().map(|&value| value as f32));
            for neighbour in [up, right, down, left] {
                v.extend(center.iter().zip(&neighbour).map(|(&c, &n)| (c - n) as f32));
            }
            instances.push(v);
        }
    }
    Bag::new(instances)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(rgb: [f32; 3]) -> RgbImage {
        RgbImage::filled(32, 32, rgb).unwrap()
    }

    #[test]
    fn sbn_bag_shape() {
        let bag = sbn_bag(&flat([128.0; 3])).unwrap();
        // Positions gx, gy ∈ {2, 3, 4} → 9 instances.
        assert_eq!(bag.len(), 9);
        assert_eq!(bag.dim(), SBN_DIM);
    }

    #[test]
    fn flat_image_has_zero_differences() {
        let bag = sbn_bag(&flat([100.0, 150.0, 200.0])).unwrap();
        for inst in bag.instances() {
            assert!((inst[0] - 100.0 / 255.0).abs() < 1e-5);
            assert!((inst[1] - 150.0 / 255.0).abs() < 1e-5);
            assert!((inst[2] - 200.0 / 255.0).abs() < 1e-5);
            for &d in &inst[3..] {
                assert!(d.abs() < 1e-6, "differences must vanish on a flat image");
            }
        }
    }

    #[test]
    fn vertical_gradient_shows_up_in_up_down_differences() {
        let img = RgbImage::from_fn(32, 32, |_, y| [y as f32 * 8.0; 3]).unwrap();
        let bag = sbn_bag(&img).unwrap();
        for inst in bag.instances() {
            // up difference (dims 3..6): center − up > 0 (brighter lower).
            assert!(inst[3] > 0.01, "up diff {:?}", &inst[3..6]);
            // down difference (dims 9..12): center − down < 0.
            assert!(inst[9] < -0.01, "down diff {:?}", &inst[9..12]);
            // left/right differences ≈ 0.
            assert!(inst[6].abs() < 1e-4);
            assert!(inst[12].abs() < 1e-4);
        }
    }

    #[test]
    fn channels_are_independent() {
        // A red-to-black horizontal gradient only moves the R channel.
        let img = RgbImage::from_fn(32, 32, |x, _| [x as f32 * 8.0, 30.0, 30.0]).unwrap();
        let bag = sbn_bag(&img).unwrap();
        for inst in bag.instances() {
            // right difference: R moves, G and B do not.
            assert!(inst[6].abs() > 0.005, "R right-diff should be nonzero");
            assert!(inst[7].abs() < 1e-4, "G right-diff should vanish");
            assert!(inst[8].abs() < 1e-4, "B right-diff should vanish");
        }
    }

    #[test]
    fn values_are_unit_scaled() {
        let img = RgbImage::from_fn(40, 40, |x, y| {
            [((x * y) % 256) as f32, (x % 256) as f32, (y % 256) as f32]
        })
        .unwrap();
        let bag = sbn_bag(&img).unwrap();
        for inst in bag.instances() {
            for &v in inst {
                assert!((-1.0..=1.0).contains(&v), "value {v} outside [-1, 1]");
            }
        }
    }

    #[test]
    fn small_images_still_work() {
        // Cells clamp to ≥1 pixel; an 8×8 image maps one pixel per cell.
        let img = RgbImage::from_fn(8, 8, |x, y| [(x * 30) as f32, (y * 30) as f32, 0.0]).unwrap();
        let bag = sbn_bag(&img).unwrap();
        assert_eq!(bag.len(), 9);
    }
}
