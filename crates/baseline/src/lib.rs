#![warn(missing_docs)]

//! # milr-baseline
//!
//! The comparison system of §4.2.4: Maron & Lakshmi Ratan's
//! colour-feature Diverse Density approach ("Multiple-instance learning
//! for natural scene classification", ICML 1998), which the paper calls
//! "a previous approach … specifically tuned to retrieving color natural
//! scene images".
//!
//! Two of their bag generators are implemented:
//!
//! * [`sbn`] — *single blob with neighbours*: each instance is the mean
//!   colour of a 2×2 cell blob plus colour differences with its four
//!   neighbouring blobs (15 dimensions);
//! * [`rows`] — row statistics: each instance is a row's mean colour
//!   together with its vertical neighbours' mean colours (9 dimensions).
//!
//! A third comparison point, [`histogram`], implements the QBIC-style
//! *global* gray-histogram retrieval the paper's introduction argues
//! against — no regions, no learning — so the motivating claim ("image
//! queries along these lines are not powerful enough") is testable.
//!
//! The generators produce [`milr_mil::Bag`]s, so the whole
//! `milr-core` query/feedback/evaluation machinery runs unchanged on
//! top of them ([`retrieval::color_retrieval_database`]). Because these
//! features discard all spatial gray structure, the baseline holds its
//! own on colour-coded natural scenes but collapses on the object
//! database — the paper's headline comparison (Figs. 4-20/4-21).

pub mod backend;
pub mod histogram;
pub mod retrieval;
pub mod rows;
pub mod sbn;

pub use backend::{feature_backend, SbnBackend, BACKEND_IDS, SBN_ID};
pub use histogram::HistogramDatabase;
pub use retrieval::{color_retrieval_database, ColorBagGenerator};
