//! Plugging the colour bag generators into the retrieval system.
//!
//! The baseline reuses the entire `milr-core` query/feedback/evaluation
//! stack — only the image → bag step differs. Building a
//! [`milr_core::RetrievalDatabase`] from colour bags therefore gives an
//! apples-to-apples comparison: same DD trainer, same ranking rule, same
//! protocol, different features (§4.2.4).

use milr_core::{CoreError, RetrievalDatabase};
use milr_imgproc::RgbImage;

use crate::rows::row_bag;
use crate::sbn::sbn_bag;

/// Which colour bag generator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorBagGenerator {
    /// Single blob with neighbours (15-dimensional instances).
    SingleBlobWithNeighbors,
    /// Row colour statistics (9-dimensional instances).
    Rows,
}

impl ColorBagGenerator {
    /// Human-readable name for experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Self::SingleBlobWithNeighbors => "SBN colour baseline",
            Self::Rows => "Row colour baseline",
        }
    }
}

/// Preprocesses labelled colour images into a retrieval database of
/// colour-feature bags.
///
/// # Errors
/// Propagates bag-construction failures (degenerate images) as
/// [`CoreError::Mil`].
pub fn color_retrieval_database(
    images: &[(RgbImage, usize)],
    generator: ColorBagGenerator,
) -> Result<RetrievalDatabase, CoreError> {
    let mut bags = Vec::with_capacity(images.len());
    let mut labels = Vec::with_capacity(images.len());
    for (image, label) in images {
        let bag = match generator {
            ColorBagGenerator::SingleBlobWithNeighbors => sbn_bag(image)?,
            ColorBagGenerator::Rows => row_bag(image)?,
        };
        bags.push(bag);
        labels.push(*label);
    }
    RetrievalDatabase::from_bags(bags, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_core::{QuerySession, RetrievalConfig};
    use milr_mil::WeightPolicy;

    /// Colour-coded "categories": 0 = warm orange scenes, 1 = cool blue
    /// scenes, with per-variant brightness jitter. Colour features
    /// separate these trivially.
    fn image(category: usize, variant: usize) -> RgbImage {
        let jitter = (variant as f32) * 6.0;
        RgbImage::from_fn(32, 32, move |_, y| {
            let fade = y as f32 * 2.0;
            match category {
                0 => [200.0 + jitter - fade * 0.3, 120.0 + jitter, 40.0],
                _ => [40.0, 120.0 + jitter, 200.0 + jitter - fade * 0.3],
            }
        })
        .unwrap()
    }

    fn images() -> Vec<(RgbImage, usize)> {
        let mut v = Vec::new();
        for variant in 0..6 {
            v.push((image(0, variant), 0));
        }
        for variant in 0..6 {
            v.push((image(1, variant), 1));
        }
        v
    }

    #[test]
    fn database_builds_for_both_generators() {
        for generator in [
            ColorBagGenerator::SingleBlobWithNeighbors,
            ColorBagGenerator::Rows,
        ] {
            let db = color_retrieval_database(&images(), generator).unwrap();
            assert_eq!(db.len(), 12);
            assert_eq!(db.category_count(), 2);
        }
    }

    #[test]
    fn feature_dims_match_generators() {
        let sbn = color_retrieval_database(&images(), ColorBagGenerator::SingleBlobWithNeighbors)
            .unwrap();
        assert_eq!(sbn.feature_dim(), crate::sbn::SBN_DIM);
        let rows = color_retrieval_database(&images(), ColorBagGenerator::Rows).unwrap();
        assert_eq!(rows.feature_dim(), crate::rows::ROW_DIM);
    }

    #[test]
    fn baseline_retrieves_colour_coded_categories() {
        let db = color_retrieval_database(&images(), ColorBagGenerator::SingleBlobWithNeighbors)
            .unwrap();
        let config = RetrievalConfig {
            threads: 1,
            max_iterations: 40,
            initial_positives: 2,
            initial_negatives: 2,
            feedback_rounds: 1,
            policy: WeightPolicy::Identical,
            ..RetrievalConfig::default()
        };
        let pool = vec![0, 1, 2, 6, 7, 8];
        let test = vec![3, 4, 5, 9, 10, 11];
        let mut session = QuerySession::builder(&db)
            .config(&config)
            .target(0)
            .pool(pool)
            .test(test)
            .build()
            .unwrap();
        let ranking = session.run().unwrap();
        let top3: Vec<usize> = ranking.iter().take(3).map(|&(i, _)| i).collect();
        for i in top3 {
            assert_eq!(
                i / 6,
                0,
                "orange images must outrank blue ones, got {ranking:?}"
            );
        }
    }

    #[test]
    fn labels_name_the_generator() {
        assert!(ColorBagGenerator::SingleBlobWithNeighbors
            .label()
            .contains("SBN"));
        assert!(ColorBagGenerator::Rows.label().contains("Row"));
    }
}
