//! Integration tests of a real coordinator + worker fleet over live
//! sockets, all in one process: wire-level bit-identity against the
//! single-node daemon, keep-alive socket reuse, bound forwarding,
//! generation-skew rejection/resync, eviction and rejoin, and the
//! join-time snapshot streaming path.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::Duration;

use milr_cluster::{Coordinator, CoordinatorOptions, Worker, WorkerOptions};
use milr_serve::client;
use milr_serve::{Json, ServeOptions};
use milr_store::ShardedDatabase;
use milr_testkit::corpus::synthetic_database;

const TIMEOUT: Duration = Duration::from_secs(10);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("milr_cluster_nodes")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A 24-image corpus sharded 6 bags per shard → 4 shards.
fn sharded_corpus(tag: &str) -> PathBuf {
    let db = synthetic_database(24, 8, 3);
    let dir = scratch_dir(tag);
    let mut store = ShardedDatabase::from_database(&db, &dir, 6).unwrap();
    store.flush().unwrap();
    dir
}

fn start_worker(dir: &Path, index: usize, count: usize) -> Worker {
    // The worker-side read timeout doubles as the keep-alive idle
    // timeout; keep it far above any debug-build training pause so the
    // socket-reuse assertions below stay deterministic.
    let node = milr_cluster::NodeOptions {
        read_timeout: Duration::from_secs(30),
        ..Default::default()
    };
    Worker::start(WorkerOptions {
        node,
        snapshot_dir: dir.to_path_buf(),
        worker_index: index,
        worker_count: count,
        ..WorkerOptions::default()
    })
    .unwrap()
}

fn coordinator_options(dir: &Path, workers: Vec<SocketAddr>) -> CoordinatorOptions {
    CoordinatorOptions {
        snapshot_dir: dir.to_path_buf(),
        workers,
        // Keep membership changes test-driven: probes only matter in
        // the tests that shorten this.
        health_interval: Duration::from_secs(60),
        worker_deadline: Duration::from_secs(5),
        ..CoordinatorOptions::default()
    }
}

fn rank(addr: SocketAddr, query: &str) -> Json {
    let response = client::get(addr, &format!("/cluster/rank?{query}"), TIMEOUT).unwrap();
    assert_eq!(
        response.status,
        200,
        "body: {}",
        String::from_utf8_lossy(&response.body)
    );
    response.json().unwrap()
}

fn ranking_pairs(json: &Json) -> Vec<(u64, u64)> {
    json.get("ranking")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|row| {
            (
                row.get("index").and_then(Json::as_u64).unwrap(),
                row.get("distance")
                    .and_then(Json::as_f64)
                    .unwrap()
                    .to_bits(),
            )
        })
        .collect()
}

fn cluster_counters(addr: SocketAddr) -> Json {
    let status = client::get(addr, "/cluster/status", TIMEOUT).unwrap();
    assert_eq!(status.status, 200);
    status.json().unwrap().get("cluster").unwrap().clone()
}

fn counter(json: &Json, key: &str) -> u64 {
    json.get(key).and_then(Json::as_u64).unwrap()
}

/// Every rank accounts for every shard, ranked or missing.
fn assert_conservation(addr: SocketAddr, total_shards: u64) {
    let counters = cluster_counters(addr);
    assert_eq!(
        counter(&counters, "shards_ranked_total") + counter(&counters, "shards_missing_total"),
        counter(&counters, "rank_total") * total_shards,
        "cluster shard conservation law: {counters:?}"
    );
}

#[test]
fn cluster_rank_is_bit_identical_to_single_node_over_the_wire() {
    let dir = sharded_corpus("identity");
    let worker_a = start_worker(&dir, 0, 2);
    let worker_b = start_worker(&dir, 1, 2);
    let coordinator = Coordinator::start(coordinator_options(
        &dir,
        vec![worker_a.addr(), worker_b.addr()],
    ))
    .unwrap();

    // The single-node daemon over the *same* snapshot (same generation,
    // so the two sides train identical concept-cache keys too).
    let loaded = milr_store::load_snapshot(&dir).unwrap();
    let single = milr_serve::Server::start_with_generation(
        loaded.database,
        loaded.generation,
        loaded.shards,
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            ..ServeOptions::default()
        },
    )
    .unwrap();

    for query in [
        "positives=0,4&k=6",
        "positives=1,9&negatives=2&k=10",
        "positives=3&negatives=0,5&k=24",
        "positives=0,4&k=6", // repeat: cache hit on both sides
    ] {
        let distributed = rank(coordinator.addr(), query);
        assert_eq!(
            distributed.get("partial").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            distributed
                .get("missing_shards")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(0)
        );
        let single_response =
            client::get(single.local_addr(), &format!("/rank?{query}"), TIMEOUT).unwrap();
        assert_eq!(single_response.status, 200);
        let single_json = single_response.json().unwrap();
        assert_eq!(
            ranking_pairs(&distributed),
            ranking_pairs(&single_json),
            "query {query} diverged"
        );
        // nldd comes out of the identical deterministic training run.
        assert_eq!(
            distributed
                .get("nldd")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
            single_json
                .get("nldd")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
        );
    }
    assert_conservation(coordinator.addr(), 4);

    single.shutdown();
    single.wait();
    coordinator.request_shutdown();
    coordinator.wait();
    worker_a.request_shutdown();
    worker_b.request_shutdown();
    worker_a.wait();
    worker_b.wait();
}

#[test]
fn sequential_ranks_reuse_one_worker_socket_and_forward_bounds() {
    let dir = sharded_corpus("keepalive");
    let worker_a = start_worker(&dir, 0, 2);
    let worker_b = start_worker(&dir, 1, 2);
    let mut options = coordinator_options(&dir, vec![worker_a.addr(), worker_b.addr()]);
    // Deterministic scatter order: worker 1 always sees worker 0's
    // k-th-best bound.
    options.sequential_fanout = true;
    let coordinator = Coordinator::start(options).unwrap();

    for round in 0..6 {
        let json = rank(
            coordinator.addr(),
            &format!("positives=0,{}&k=3", round + 1),
        );
        assert_eq!(json.get("partial").and_then(Json::as_bool), Some(false));
    }

    // Keep-alive regression: six scatters, still exactly one TCP
    // connection accepted by each worker.
    assert_eq!(worker_a.metrics().accepted_total.get(), 1);
    assert_eq!(worker_b.metrics().accepted_total.get(), 1);

    // Bound forwarding proof, both ends of the wire: the coordinator
    // forwarded finite bounds and saw them tighten; the later worker
    // observed seeded bounds. (Worker 0 owns shards with ≥ k bags, so
    // every scatter tightens at least once after its page lands.)
    let counters = cluster_counters(coordinator.addr());
    assert!(counter(&counters, "bound_forwarded_total") >= 6);
    assert!(counter(&counters, "bound_tightenings_total") >= 6);
    let worker_metrics = client::get(worker_b.addr(), "/metrics", TIMEOUT)
        .unwrap()
        .json()
        .unwrap();
    let seeded = worker_metrics
        .get("worker")
        .and_then(|w| w.get("bound_seeded_total"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(seeded >= 6, "worker 1 never saw a forwarded bound");
    assert_conservation(coordinator.addr(), 4);

    coordinator.request_shutdown();
    coordinator.wait();
    worker_a.request_shutdown();
    worker_b.request_shutdown();
    worker_a.wait();
    worker_b.wait();
}

#[test]
fn generation_skew_is_rejected_then_resynced_never_merged() {
    let dir = sharded_corpus("skew");
    let worker_a = start_worker(&dir, 0, 2);
    let worker_b = start_worker(&dir, 1, 2);
    let coordinator = Coordinator::start(coordinator_options(
        &dir,
        vec![worker_a.addr(), worker_b.addr()],
    ))
    .unwrap();
    let old_generation = coordinator.generation();

    // Advance the snapshot on disk and reload the coordinator only —
    // the workers are now one generation behind.
    let mut store = ShardedDatabase::open(&dir).unwrap();
    store.flush().unwrap();
    let reload = client::post_json(
        coordinator.addr(),
        "/snapshot/reload",
        &Json::Obj(Vec::new()),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(reload.status, 200);
    assert_eq!(coordinator.generation(), old_generation + 1);

    // The next rank hits 409s from both workers; the coordinator must
    // resync them and retry — serving the *new* generation in full,
    // never a silent cross-generation merge.
    let json = rank(coordinator.addr(), "positives=0,4&k=6");
    assert_eq!(json.get("partial").and_then(Json::as_bool), Some(false));
    assert_eq!(
        json.get("generation").and_then(Json::as_u64),
        Some(old_generation + 1)
    );

    let counters = cluster_counters(coordinator.addr());
    assert!(counter(&counters, "generation_mismatch_total") >= 1);
    assert!(counter(&counters, "worker_resyncs_total") >= 1);
    let worker_metrics = client::get(worker_a.addr(), "/metrics", TIMEOUT)
        .unwrap()
        .json()
        .unwrap();
    assert!(
        worker_metrics
            .get("worker")
            .and_then(|w| w.get("generation_rejects_total"))
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
    assert_conservation(coordinator.addr(), 4);

    coordinator.request_shutdown();
    coordinator.wait();
    worker_a.request_shutdown();
    worker_b.request_shutdown();
    worker_a.wait();
    worker_b.wait();
}

#[test]
fn lost_worker_degrades_then_eviction_and_rejoin_restore_full_pages() {
    let dir = sharded_corpus("evict");
    let worker_a = start_worker(&dir, 0, 2);
    let worker_b = start_worker(&dir, 1, 2);
    let worker_b_shards = worker_b.shard_ids();
    let mut options = coordinator_options(&dir, vec![worker_a.addr(), worker_b.addr()]);
    options.health_interval = Duration::from_millis(50);
    options.worker_deadline = Duration::from_millis(500);
    options.eviction_threshold = 2;
    let coordinator = Coordinator::start(options).unwrap();

    assert_eq!(
        rank(coordinator.addr(), "positives=0,4&k=6")
            .get("partial")
            .and_then(Json::as_bool),
        Some(false)
    );

    // Kill worker 1. Clients keep getting well-formed degraded pages.
    worker_b.request_shutdown();
    worker_b.wait();
    let degraded = rank(coordinator.addr(), "positives=0,4&k=6");
    assert_eq!(degraded.get("partial").and_then(Json::as_bool), Some(true));
    let missing: Vec<u64> = degraded
        .get("missing_shards")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert_eq!(missing, worker_b_shards);
    assert!(!degraded
        .get("missing_ranges")
        .and_then(Json::as_array)
        .unwrap()
        .is_empty());

    // The health loop evicts the dead worker.
    let deadline = std::time::Instant::now() + TIMEOUT;
    loop {
        let status = client::get(coordinator.addr(), "/cluster/status", TIMEOUT)
            .unwrap()
            .json()
            .unwrap();
        let healthy = status.get("workers").and_then(Json::as_array).unwrap()[1]
            .get("healthy")
            .and_then(Json::as_bool)
            .unwrap();
        if !healthy {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker 1 was never evicted"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let counters = cluster_counters(coordinator.addr());
    assert!(counter(&counters, "worker_evictions_total") >= 1);

    // A replacement worker rejoins at a *new* address by re-registering.
    let replacement = start_worker(&dir, 1, 2);
    let registered = client::post_json(
        coordinator.addr(),
        "/cluster/workers",
        &Json::Obj(vec![
            ("index".into(), Json::num(1.0)),
            ("addr".into(), Json::str(replacement.addr().to_string())),
        ]),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(registered.status, 200);
    let restored = rank(coordinator.addr(), "positives=0,4&k=6");
    assert_eq!(restored.get("partial").and_then(Json::as_bool), Some(false));
    let counters = cluster_counters(coordinator.addr());
    assert!(counter(&counters, "worker_rejoins_total") >= 1);
    assert_conservation(coordinator.addr(), 4);

    coordinator.request_shutdown();
    coordinator.wait();
    worker_a.request_shutdown();
    worker_a.wait();
    replacement.request_shutdown();
    replacement.wait();
}

#[test]
fn worker_streams_its_shard_subset_from_the_coordinator_on_join() {
    let dir = sharded_corpus("join");
    // Worker 0 has the snapshot locally; the coordinator starts first
    // so worker 1 can bootstrap from it.
    let worker_a = start_worker(&dir, 0, 2);
    // The coordinator's slot for worker 1 is filled in by
    // re-registration after the join; start with a placeholder.
    let placeholder: SocketAddr = "127.0.0.1:1".parse().unwrap();
    let coordinator = Coordinator::start(coordinator_options(
        &dir,
        vec![worker_a.addr(), placeholder],
    ))
    .unwrap();

    // Worker 1 joins from an *empty* directory, streaming the manifest
    // plus its assigned shards (checksum-verified at subset open).
    let empty = scratch_dir("join_empty");
    let worker_b = Worker::start(WorkerOptions {
        snapshot_dir: empty.clone(),
        worker_index: 1,
        worker_count: 2,
        join: Some(coordinator.addr()),
        ..WorkerOptions::default()
    })
    .unwrap();
    assert_eq!(worker_b.generation(), coordinator.generation());
    // Only its own assignment was fetched: shards 1 and 3 of 4.
    assert_eq!(worker_b.shard_ids(), vec![1, 3]);
    let fetched: Vec<String> = std::fs::read_dir(&empty)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(fetched.contains(&"manifest.milr".to_string()));
    assert!(fetched.contains(&"shard-000001.milr".to_string()));
    assert!(!fetched.contains(&"shard-000000.milr".to_string()));

    let registered = client::post_json(
        coordinator.addr(),
        "/cluster/workers",
        &Json::Obj(vec![
            ("index".into(), Json::num(1.0)),
            ("addr".into(), Json::str(worker_b.addr().to_string())),
        ]),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(registered.status, 200);
    let json = rank(coordinator.addr(), "positives=0,4&k=8");
    assert_eq!(json.get("partial").and_then(Json::as_bool), Some(false));
    assert_conservation(coordinator.addr(), 4);

    coordinator.request_shutdown();
    coordinator.wait();
    worker_a.request_shutdown();
    worker_b.request_shutdown();
    worker_a.wait();
    worker_b.wait();
}
