//! Property tests of the cluster's central promises, driven through the
//! pure scatter/gather layer (no sockets — the wire is exercised by the
//! node integration tests and the cross-process e2e suite):
//!
//! * a healthy cluster's merged ranking is **bit-identical** to the
//!   single-node scatter, for any shard layout and any shard→worker
//!   assignment;
//! * a degraded cluster returns the exact top-k over the surviving
//!   shards, `partial` iff any worker dropped;
//! * seeding workers with a k-th-best bound never changes the merge;
//! * rankings survive the JSON wire bit-exactly.

use proptest::prelude::*;

use milr_cluster::protocol::{
    assign_shards, gather, ranking_from_json, ranking_to_json, GatherInput,
};
use milr_core::{RankRequest, RetrievalDatabase};
use milr_mil::{Bag, Concept};
use milr_store::{read_manifest, ShardSubset, ShardedDatabase};

const DIM: usize = 5;

/// Strategy: a database of 1..=40 bags, each with 1..=4 instances of
/// dimension [`DIM`], labels over three categories.
fn db_strategy() -> impl Strategy<Value = RetrievalDatabase> {
    proptest::collection::vec(
        (
            proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, DIM), 1..5),
            0usize..3,
        ),
        1..41,
    )
    .prop_map(|raw| {
        let mut bags = Vec::with_capacity(raw.len());
        let mut labels = Vec::with_capacity(raw.len());
        for (instances, label) in raw {
            bags.push(Bag::new(instances).unwrap());
            labels.push(label);
        }
        RetrievalDatabase::from_bags(bags, labels).unwrap()
    })
}

/// Strategy: a concept point and strictly positive weights.
fn concept_strategy() -> impl Strategy<Value = Concept> {
    (
        proptest::collection::vec(-10.0f64..10.0, DIM),
        proptest::collection::vec(0.05f64..3.0, DIM),
    )
        .prop_map(|(point, weights)| Concept::new(point, weights))
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("milr_cluster_proptests")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Writes `db` as a sharded snapshot spread over (up to) `shards`
/// shards and returns the directory.
fn sharded_dir(db: &RetrievalDatabase, shards: usize, tag: &str) -> std::path::PathBuf {
    let dir = scratch_dir(tag);
    let capacity = db.len().div_ceil(shards);
    let mut store = ShardedDatabase::from_database(db, &dir, capacity).unwrap();
    store.flush().unwrap();
    dir
}

/// Simulates the healthy scatter in-process: every worker opens its
/// assigned subset and ranks with the given initial bound.
fn scatter_inputs(
    dir: &std::path::Path,
    assignment: &[Vec<u64>],
    concept: &Concept,
    k: usize,
    bound: f64,
) -> Vec<GatherInput> {
    assignment
        .iter()
        .map(|ids| {
            let subset = ShardSubset::open(dir, ids).unwrap();
            let scan = subset
                .rank_top_k_with(concept, k, bound, 1, milr_mil::BagAggregator::MinDistance)
                .unwrap();
            GatherInput {
                shard_ids: ids.clone(),
                ranking: Some(scan.ranking),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// THE tentpole contract: for any shard layout and any number of
    /// workers, assigning shards round-robin, ranking each subset
    /// independently, and gather-merging the per-worker pages is
    /// bit-identical — index for index, bit for bit on every distance —
    /// to the single-node scatter over the same snapshot.
    #[test]
    fn healthy_gather_is_bit_identical_to_single_node(
        db in db_strategy(),
        concept in concept_strategy(),
        shards in 1usize..9,
        workers in 1usize..6,
        k in 0usize..12,
    ) {
        let dir = sharded_dir(&db, shards, "identity");
        let store = ShardedDatabase::open(&dir).unwrap();
        let summary = read_manifest(&dir).unwrap();
        let ids: Vec<u64> = summary.shards.iter().map(|s| s.id).collect();
        let assignment = assign_shards(&ids, workers);

        let inputs = scatter_inputs(&dir, &assignment, &concept, k, f64::INFINITY);
        let gathered = gather(inputs, k);
        prop_assert!(!gathered.partial);
        prop_assert!(gathered.missing_shards.is_empty());

        let single = store.rank(&concept, &RankRequest::all().top(k)).unwrap();
        prop_assert_eq!(gathered.ranking.len(), single.len());
        for (a, b) in gathered.ranking.iter().zip(&single) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    /// Degraded merges: drop any non-empty subset of workers. The
    /// result must be the exact top-k over the surviving shards'
    /// bags (the single-node ranking restricted to those indices), and
    /// `partial` must hold iff at least one worker dropped.
    #[test]
    fn degraded_gather_is_exact_over_survivors(
        db in db_strategy(),
        concept in concept_strategy(),
        shards in 1usize..9,
        workers in 1usize..6,
        k in 0usize..12,
        drop_mask in 0u32..32,
    ) {
        let dir = sharded_dir(&db, shards, "degraded");
        let summary = read_manifest(&dir).unwrap();
        let ids: Vec<u64> = summary.shards.iter().map(|s| s.id).collect();
        let assignment = assign_shards(&ids, workers);

        let mut inputs = scatter_inputs(&dir, &assignment, &concept, k, f64::INFINITY);
        let mut dropped_any = false;
        let mut missing = Vec::new();
        for (index, input) in inputs.iter_mut().enumerate() {
            if drop_mask & (1 << index) != 0 {
                input.ranking = None;
                dropped_any = true;
                missing.extend(input.shard_ids.iter().copied());
            }
        }
        missing.sort_unstable();

        let gathered = gather(inputs, k);
        prop_assert_eq!(gathered.partial, dropped_any);
        prop_assert_eq!(&gathered.missing_shards, &missing);

        // Survivors' global bag indices, from the manifest layout.
        let surviving: Vec<usize> = summary
            .shards
            .iter()
            .filter(|shard| !missing.contains(&shard.id))
            .flat_map(|shard| shard.base..shard.base + shard.bag_count)
            .collect();
        let expected = if surviving.is_empty() {
            Vec::new()
        } else {
            let full = db.rank(&concept, &RankRequest::over(surviving)).unwrap();
            full[..k.min(full.len())].to_vec()
        };
        prop_assert_eq!(gathered.ranking.len(), expected.len());
        for (a, b) in gathered.ranking.iter().zip(&expected) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    /// Bound-forwarding soundness: seeding every worker with the global
    /// k-th best distance (the tightest bound the coordinator can ever
    /// legitimately forward) changes nothing about the merged page.
    #[test]
    fn forwarded_bound_never_changes_the_merge(
        db in db_strategy(),
        concept in concept_strategy(),
        shards in 1usize..9,
        workers in 1usize..6,
        k in 1usize..12,
    ) {
        let dir = sharded_dir(&db, shards, "bound");
        let store = ShardedDatabase::open(&dir).unwrap();
        let summary = read_manifest(&dir).unwrap();
        let ids: Vec<u64> = summary.shards.iter().map(|s| s.id).collect();
        let assignment = assign_shards(&ids, workers);

        let single = store.rank(&concept, &RankRequest::all().top(k)).unwrap();
        let bound = if single.len() >= k {
            single[k - 1].1
        } else {
            f64::INFINITY
        };

        let seeded = gather(
            scatter_inputs(&dir, &assignment, &concept, k, bound),
            k,
        );
        prop_assert!(!seeded.partial);
        prop_assert_eq!(seeded.ranking.len(), single.len());
        for (a, b) in seeded.ranking.iter().zip(&single) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    /// The ranking wire codec is lossless: any finite non-negative
    /// distances round-trip through JSON text bit-exactly.
    #[test]
    fn ranking_survives_the_wire_bit_exactly(
        pairs in proptest::collection::vec((0usize..10_000, 0.0f64..1e12), 0..40),
    ) {
        let json = ranking_to_json(&pairs);
        let text = json.dump();
        let parsed = ranking_from_json(&milr_serve::Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(parsed.len(), pairs.len());
        for (a, b) in parsed.iter().zip(&pairs) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }
}
