//! The coordinator milrd: trains concepts locally on the full snapshot,
//! scatters `POST /worker/rank` calls over the worker fleet (each
//! worker owning the shard subset [`assign_shards`] gives it), and
//! k-way-merges the per-worker top-k pages with the same
//! [`merge_rankings`](milr_store::merge_rankings) the single-node
//! scatter uses — so a healthy
//! cluster's ranking is **bit-identical** to single-node ranking by
//! construction.
//!
//! Robustness model:
//!
//! * every worker call carries a deadline; a transport failure is
//!   retried once on a fresh dial, a `409` generation rejection is
//!   answered by resyncing the worker (`POST /snapshot/reload`) and
//!   retrying once — cross-generation results never merge silently;
//! * a worker whose failures reach `eviction_threshold` consecutively
//!   is evicted: skipped by the scatter (its shards are reported
//!   missing instantly) until a health probe succeeds and it rejoins;
//! * a crashed worker can also rejoin at a **new** address with
//!   `POST /cluster/workers` — re-registration clears the slot's
//!   connection pool and failure count;
//! * when any worker drops out of a scatter the client still gets a
//!   well-formed page: the exact top-k over the surviving shards,
//!   flagged `"partial": true` with the missing shard ids and bag-index
//!   ranges attached.
//!
//! The conservation law tying it together (asserted by the chaos
//! suite): every rank accounts for every shard, ranked or missing —
//! `shards_ranked_total + shards_missing_total ==
//! rank_total × total_shards`.
//!
//! Bound forwarding: the scatter carries the coordinator's running
//! k-th-best distance into each worker request, seeding the worker's
//! [`SharedBound`] so its shard scans prune against results gathered
//! elsewhere in the cluster. Soundness: a forwarded bound is always
//! backed by `k` real candidates from an already-gathered response,
//! and that response is always part of the final merge.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use milr_core::database::Ranking;
use milr_core::error::CoreError;
use milr_core::storage::storage_err;
use milr_core::{QuerySession, RetrievalConfig, RetrievalDatabase};
use milr_mil::{BagAggregator, Concept};
use milr_serve::cache::{CachedConcept, ConceptCache, ConceptKey};
use milr_serve::client;
use milr_serve::http::Request;
use milr_serve::metrics::Metrics;
use milr_serve::{parse_policy, Json};
use milr_store::{
    read_manifest, shard_file_name, ManifestSummary, ShardedDatabase, SharedBound, MANIFEST_FILE,
};

use crate::node::{Action, Node, NodeOptions, Reply};
use crate::protocol::{
    assign_shards, gather, missing_ranges, GatherInput, WorkerRankRequest, WorkerRankResponse,
};

/// Everything tunable about a coordinator daemon.
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Server-loop options (bind address, pool sizes, timeouts).
    pub node: NodeOptions,
    /// The sharded snapshot directory (for local training and for
    /// streaming shards to joining workers).
    pub snapshot_dir: PathBuf,
    /// Worker addresses; list position is the worker's index in the
    /// shard assignment.
    pub workers: Vec<SocketAddr>,
    /// Training/ranking configuration.
    pub retrieval: RetrievalConfig,
    /// Concept-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Ranking page size when a request names no `k`.
    pub default_page: usize,
    /// Deadline per worker exchange (connect + write + read).
    pub worker_deadline: Duration,
    /// Interval between health probes of the fleet.
    pub health_interval: Duration,
    /// Consecutive failures after which a worker is evicted.
    pub eviction_threshold: u64,
    /// Scatter workers one at a time in index order instead of in
    /// parallel — slower, but makes bound forwarding deterministic
    /// (worker `i+1` always sees worker `i`'s k-th best). The bound
    /// propagation tests rely on this.
    pub sequential_fanout: bool,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        Self {
            node: NodeOptions::default(),
            snapshot_dir: PathBuf::new(),
            workers: Vec::new(),
            retrieval: RetrievalConfig::default(),
            cache_capacity: 128,
            default_page: 10,
            worker_deadline: Duration::from_secs(2),
            health_interval: Duration::from_millis(500),
            eviction_threshold: 2,
            sequential_fanout: false,
        }
    }
}

/// One worker's slot in the fleet: address (re-registration may move
/// it), health state, and the keep-alive connection pool.
struct WorkerSlot {
    index: usize,
    addr: Mutex<SocketAddr>,
    healthy: AtomicBool,
    consecutive_failures: AtomicU64,
    /// Generation last reported by a health probe (0 before the first).
    seen_generation: AtomicU64,
    /// Idle keep-alive connections to this worker. A checkout pops,
    /// a clean exchange pushes back — so sequential traffic reuses one
    /// socket and concurrent traffic grows the pool organically.
    pool: Mutex<Vec<client::Connection>>,
    latency_us: Arc<milr_obs::Histogram>,
}

impl WorkerSlot {
    fn checkout(&self, deadline: Duration) -> client::Connection {
        let pooled = self.pool.lock().expect("worker pool mutex").pop();
        pooled
            .unwrap_or_else(|| client::Connection::new(*self.addr.lock().expect("addr"), deadline))
    }

    fn checkin(&self, conn: client::Connection) {
        // An address change (re-registration) while this connection was
        // out invalidates it; drop instead of pooling.
        if conn.addr() == *self.addr.lock().expect("addr") {
            self.pool.lock().expect("worker pool mutex").push(conn);
        }
    }
}

/// One loaded snapshot epoch. In-flight requests pin it via `Arc`, so a
/// reload never tears ranking out from under a scatter.
struct CoordinatorEpoch {
    /// Live (tombstone-compacted) view for local concept training.
    db: Arc<RetrievalDatabase>,
    summary: ManifestSummary,
    /// Manifest generation **verbatim** (not bumped like the single-node
    /// daemon's reload counter) so coordinator and workers reading the
    /// same directory converge on the same number.
    generation: u64,
    /// `assignment[i]` = shard ids owned by worker `i`.
    assignment: Vec<Vec<u64>>,
}

struct ClusterCounters {
    rank_total: Arc<milr_obs::Counter>,
    partial_responses_total: Arc<milr_obs::Counter>,
    shards_ranked_total: Arc<milr_obs::Counter>,
    shards_missing_total: Arc<milr_obs::Counter>,
    bound_forwarded_total: Arc<milr_obs::Counter>,
    bound_tightenings_total: Arc<milr_obs::Counter>,
    worker_retries_total: Arc<milr_obs::Counter>,
    worker_evictions_total: Arc<milr_obs::Counter>,
    worker_rejoins_total: Arc<milr_obs::Counter>,
    generation_mismatch_total: Arc<milr_obs::Counter>,
    worker_resyncs_total: Arc<milr_obs::Counter>,
}

struct CoordinatorDaemon {
    options: CoordinatorOptions,
    config: Arc<RetrievalConfig>,
    epoch: Mutex<Arc<CoordinatorEpoch>>,
    cache: Mutex<ConceptCache>,
    slots: Vec<WorkerSlot>,
    counters: ClusterCounters,
    metrics: Arc<Metrics>,
    stop: AtomicBool,
    started: Instant,
}

impl CoordinatorDaemon {
    fn epoch(&self) -> Arc<CoordinatorEpoch> {
        Arc::clone(&self.epoch.lock().expect("coordinator epoch mutex"))
    }

    fn load_epoch(options: &CoordinatorOptions) -> Result<CoordinatorEpoch, CoreError> {
        let summary = read_manifest(&options.snapshot_dir)?;
        let store = ShardedDatabase::open(&options.snapshot_dir)?;
        let db = Arc::new(store.to_database()?);
        let assignment = assign_shards(
            &summary.shards.iter().map(|s| s.id).collect::<Vec<_>>(),
            options.workers.len(),
        );
        let generation = summary.generation;
        Ok(CoordinatorEpoch {
            db,
            summary,
            generation,
            assignment,
        })
    }

    fn reload(&self) -> Result<(u64, usize), CoreError> {
        match Self::load_epoch(&self.options) {
            Ok(epoch) => {
                let generation = epoch.generation;
                let shards = epoch.summary.shards.len();
                *self.epoch.lock().expect("coordinator epoch mutex") = Arc::new(epoch);
                self.metrics.snapshot_reloads_total.inc();
                self.metrics.snapshot_generation.set(generation as f64);
                self.metrics.snapshot_shards.set(shards as f64);
                Ok((generation, shards))
            }
            Err(err) => {
                self.metrics.snapshot_reload_failures_total.inc();
                Err(err)
            }
        }
    }

    fn note_success(&self, slot: &WorkerSlot) {
        slot.consecutive_failures.store(0, Ordering::Relaxed);
        if !slot.healthy.swap(true, Ordering::Relaxed) {
            self.counters.worker_rejoins_total.inc();
        }
    }

    fn note_failure(&self, slot: &WorkerSlot) {
        let failures = slot.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if failures >= self.options.eviction_threshold
            && slot.healthy.swap(false, Ordering::Relaxed)
        {
            self.counters.worker_evictions_total.inc();
        }
    }

    /// Asks `slot`'s worker to reload its subset from the snapshot
    /// directory (or from us, if it joined with `--join`).
    fn resync_worker(&self, slot: &WorkerSlot) -> Result<(), String> {
        self.counters.worker_resyncs_total.inc();
        let mut conn = slot.checkout(self.options.worker_deadline);
        let result = conn.post_json("/snapshot/reload", &Json::Obj(Vec::new()));
        match result {
            Ok(response) if response.status == 200 => {
                slot.checkin(conn);
                Ok(())
            }
            Ok(response) => Err(format!("worker resync answered {}", response.status)),
            Err(e) => Err(format!("worker resync failed: {e}")),
        }
    }

    /// One worker exchange of the scatter: send, and on failure retry
    /// once — resync-then-retry for a `409` generation rejection, a
    /// fresh dial for a transport error. Returns the worker's subset
    /// top-k, or [`None`] when the worker is degraded out of this rank.
    #[allow(clippy::too_many_arguments)]
    fn query_worker(
        &self,
        slot: &WorkerSlot,
        epoch: &CoordinatorEpoch,
        concept: &Concept,
        k: usize,
        shared: &SharedBound,
        aggregator: BagAggregator,
    ) -> Option<Ranking> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // The shared k-th-best bound is a *min-distance* pruning
            // aid; non-min keys are exact folds that never prune, so
            // the coordinator neither forwards nor collects bounds for
            // them (the bound_* counters stay pinned at zero).
            let bound = if aggregator.is_min() {
                shared.get()
            } else {
                f64::INFINITY
            };
            if bound.is_finite() {
                self.counters.bound_forwarded_total.inc();
            }
            let request = WorkerRankRequest {
                generation: epoch.generation,
                k,
                bound,
                concept: concept.clone(),
                aggregator,
            };
            let mut conn = slot.checkout(self.options.worker_deadline);
            let start = Instant::now();
            let outcome = conn.post_json("/worker/rank", &request.to_json());
            match outcome {
                Ok(response) if response.status == 200 => {
                    let parsed = response
                        .json()
                        .and_then(|json| WorkerRankResponse::from_json(&json));
                    match parsed {
                        Ok(reply) if reply.generation == epoch.generation => {
                            slot.latency_us.record(
                                start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                            );
                            slot.checkin(conn);
                            self.note_success(slot);
                            if aggregator.is_min() && k > 0 && reply.ranking.len() >= k {
                                let kth = reply.ranking[k - 1].1;
                                if shared.tighten(kth) {
                                    self.counters.bound_tightenings_total.inc();
                                }
                            }
                            return Some(reply.ranking);
                        }
                        // A malformed body or a generation that changed
                        // between gate and reply: treat as a failed
                        // attempt like any other.
                        _ => {}
                    }
                }
                Ok(response) if response.status == 409 => {
                    self.counters.generation_mismatch_total.inc();
                    if attempt == 1 && self.resync_worker(slot).is_ok() {
                        continue;
                    }
                }
                Ok(_) | Err(_) => {}
            }
            if attempt == 1 {
                self.counters.worker_retries_total.inc();
                continue;
            }
            self.note_failure(slot);
            return None;
        }
    }

    /// Fans the concept out over the fleet and returns the per-worker
    /// gather inputs in slot order. Unhealthy workers and workers that
    /// fail both attempts surface as `ranking: None`.
    fn scatter(
        &self,
        epoch: &CoordinatorEpoch,
        concept: &Concept,
        k: usize,
        aggregator: BagAggregator,
    ) -> Vec<GatherInput> {
        let shared = SharedBound::new();
        let jobs: Vec<&WorkerSlot> = self
            .slots
            .iter()
            .filter(|slot| !epoch.assignment[slot.index].is_empty())
            .collect();
        let mut results: Vec<Option<Ranking>> = Vec::with_capacity(jobs.len());
        if self.options.sequential_fanout {
            for slot in &jobs {
                results.push(if slot.healthy.load(Ordering::Relaxed) {
                    self.query_worker(slot, epoch, concept, k, &shared, aggregator)
                } else {
                    None
                });
            }
        } else {
            results = std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .iter()
                    .map(|slot| {
                        let shared = &shared;
                        scope.spawn(move || {
                            if slot.healthy.load(Ordering::Relaxed) {
                                self.query_worker(slot, epoch, concept, k, shared, aggregator)
                            } else {
                                None
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scatter thread"))
                    .collect()
            });
        }
        let mut by_index: Vec<Option<Ranking>> = vec![Some(Vec::new()); self.slots.len()];
        for (slot, ranking) in jobs.iter().zip(results) {
            by_index[slot.index] = ranking;
        }
        // Shards assigned past the worker list (no slot to serve them —
        // possible only when the worker list is empty) are missing.
        epoch
            .assignment
            .iter()
            .enumerate()
            .map(|(index, shard_ids)| GatherInput {
                shard_ids: shard_ids.clone(),
                ranking: if shard_ids.is_empty() {
                    Some(Vec::new())
                } else if index < by_index.len() {
                    by_index[index].take()
                } else {
                    None
                },
            })
            .collect()
    }

    fn handle_cluster_rank(&self, req: &Request) -> Reply {
        let _span = milr_obs::span::enter("cluster.rank");
        let positives = match parse_index_list(req.query_param("positives").unwrap_or("")) {
            Ok(list) => list,
            Err(msg) => return Reply::error(400, msg),
        };
        let negatives = match parse_index_list(req.query_param("negatives").unwrap_or("")) {
            Ok(list) => list,
            Err(msg) => return Reply::error(400, msg),
        };
        if positives.is_empty() {
            return Reply::error(400, "at least one positive example index is required");
        }
        let k = match req.query_param("k") {
            None => self.options.default_page,
            Some(v) => match v.parse::<usize>() {
                Ok(k) => k,
                Err(_) => return Reply::error(400, format!("invalid k {v:?}")),
            },
        };
        let aggregator = match req.query_param("aggregator") {
            None => BagAggregator::MinDistance,
            Some(label) => match BagAggregator::parse(label) {
                Some(agg) => agg,
                None => return Reply::error(400, format!("unknown aggregator {label:?}")),
            },
        };
        let (config, policy_label) = match req.query_param("policy") {
            None => (Arc::clone(&self.config), self.config.policy.label()),
            Some(spec) => {
                let policy = match parse_policy(spec).and_then(|p| p.validate().map(|()| p)) {
                    Ok(policy) => policy,
                    Err(msg) => return Reply::error(400, msg),
                };
                let label = policy.label();
                let mut config = (*self.config).clone();
                config.policy = policy;
                (Arc::new(config), label)
            }
        };
        let epoch = self.epoch();
        let key = ConceptKey::new(&positives, &negatives, &policy_label, epoch.generation);
        let cached = self.cache.lock().expect("concept cache mutex").get(&key);
        let (cached, cache_hit) = match cached {
            Some(hit) => (hit, true),
            None => {
                // Train outside the cache lock; identical concurrent
                // misses converge on the same deterministic concept.
                let trained = (|| -> Result<CachedConcept, CoreError> {
                    let mut session = QuerySession::builder(Arc::clone(&epoch.db))
                        .config(config)
                        .positives(positives.clone())
                        .negatives(negatives.clone())
                        .pool(Vec::new())
                        .build()?;
                    session.train_round()?;
                    Ok(CachedConcept {
                        concept: session.shared_concept().expect("just trained"),
                        nldd: session.nldd(),
                    })
                })();
                match trained {
                    Ok(fresh) => {
                        self.cache
                            .lock()
                            .expect("concept cache mutex")
                            .insert(key, fresh.clone());
                        (fresh, false)
                    }
                    Err(err) => return Reply::error(core_error_status(&err), err.to_string()),
                }
            }
        };
        let inputs = self.scatter(&epoch, &cached.concept, k, aggregator);
        for input in &inputs {
            let owned = input.shard_ids.len() as u64;
            if input.ranking.is_some() {
                self.counters.shards_ranked_total.add(owned);
            } else {
                self.counters.shards_missing_total.add(owned);
            }
        }
        let gathered = gather(inputs, k);
        self.counters.rank_total.inc();
        if gathered.partial {
            self.counters.partial_responses_total.inc();
        }
        // Workers rank in the global (tombstone-including) index space;
        // clients address the live view, exactly like single-node
        // `/rank`.
        let mut live_ranking = Vec::with_capacity(gathered.ranking.len());
        for &(global, distance) in &gathered.ranking {
            match epoch.summary.live_rank(global) {
                Some(live) => live_ranking.push((live, distance)),
                None => {
                    return Reply::error(
                        502,
                        format!("worker returned tombstoned or out-of-range bag index {global}"),
                    )
                }
            }
        }
        let ranges = missing_ranges(&epoch.summary, &gathered.missing_shards);
        Reply::json(
            200,
            Json::Obj(vec![
                ("ranking".into(), ranking_json(&live_ranking)),
                ("aggregator".into(), Json::str(aggregator.label())),
                ("cache_hit".into(), Json::Bool(cache_hit)),
                ("nldd".into(), Json::Num(cached.nldd)),
                ("partial".into(), Json::Bool(gathered.partial)),
                ("generation".into(), Json::num(epoch.generation as f64)),
                (
                    "missing_shards".into(),
                    Json::Arr(
                        gathered
                            .missing_shards
                            .iter()
                            .map(|&id| Json::num(id as f64))
                            .collect(),
                    ),
                ),
                (
                    "missing_ranges".into(),
                    Json::Arr(
                        ranges
                            .iter()
                            .map(|&(start, end)| {
                                Json::Obj(vec![
                                    ("start".into(), Json::num(start as f64)),
                                    ("end".into(), Json::num(end as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        )
    }

    fn handle_status(&self) -> Reply {
        let epoch = self.epoch();
        let workers = self
            .slots
            .iter()
            .map(|slot| {
                let latency = slot.latency_us.snapshot();
                Json::Obj(vec![
                    ("index".into(), Json::num(slot.index as f64)),
                    (
                        "addr".into(),
                        Json::str(slot.addr.lock().expect("addr").to_string()),
                    ),
                    (
                        "healthy".into(),
                        Json::Bool(slot.healthy.load(Ordering::Relaxed)),
                    ),
                    (
                        "consecutive_failures".into(),
                        Json::num(slot.consecutive_failures.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "generation".into(),
                        Json::num(slot.seen_generation.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "shards".into(),
                        Json::Arr(
                            epoch.assignment[slot.index]
                                .iter()
                                .map(|&id| Json::num(id as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "latency_us".into(),
                        Json::Obj(vec![
                            ("count".into(), Json::num(latency.count() as f64)),
                            ("mean".into(), Json::num(latency.mean())),
                            (
                                "p99".into(),
                                Json::num(latency.quantile_upper_bound(0.99) as f64),
                            ),
                            ("max".into(), Json::num(latency.max() as f64)),
                        ]),
                    ),
                ])
            })
            .collect();
        Reply::json(
            200,
            Json::Obj(vec![
                ("role".into(), Json::str("coordinator")),
                ("generation".into(), Json::num(epoch.generation as f64)),
                (
                    "total_shards".into(),
                    Json::num(epoch.summary.shards.len() as f64),
                ),
                (
                    "live_bags".into(),
                    Json::num(epoch.summary.live_len() as f64),
                ),
                ("workers".into(), Json::Arr(workers)),
                ("cluster".into(), self.cluster_counters_json()),
            ]),
        )
    }

    fn cluster_counters_json(&self) -> Json {
        let c = &self.counters;
        Json::Obj(vec![
            ("rank_total".into(), Json::num(c.rank_total.get() as f64)),
            (
                "partial_responses_total".into(),
                Json::num(c.partial_responses_total.get() as f64),
            ),
            (
                "shards_ranked_total".into(),
                Json::num(c.shards_ranked_total.get() as f64),
            ),
            (
                "shards_missing_total".into(),
                Json::num(c.shards_missing_total.get() as f64),
            ),
            (
                "bound_forwarded_total".into(),
                Json::num(c.bound_forwarded_total.get() as f64),
            ),
            (
                "bound_tightenings_total".into(),
                Json::num(c.bound_tightenings_total.get() as f64),
            ),
            (
                "worker_retries_total".into(),
                Json::num(c.worker_retries_total.get() as f64),
            ),
            (
                "worker_evictions_total".into(),
                Json::num(c.worker_evictions_total.get() as f64),
            ),
            (
                "worker_rejoins_total".into(),
                Json::num(c.worker_rejoins_total.get() as f64),
            ),
            (
                "generation_mismatch_total".into(),
                Json::num(c.generation_mismatch_total.get() as f64),
            ),
            (
                "worker_resyncs_total".into(),
                Json::num(c.worker_resyncs_total.get() as f64),
            ),
        ])
    }

    fn handle_register_worker(&self, req: &Request) -> Reply {
        let body = match std::str::from_utf8(&req.body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(Json::parse)
        {
            Ok(json) => json,
            Err(msg) => return Reply::error(400, msg),
        };
        let Some(index) = body.get("index").and_then(Json::as_u64) else {
            return Reply::error(400, "missing worker index");
        };
        let index = index as usize;
        let Some(slot) = self.slots.get(index) else {
            return Reply::error(
                400,
                format!(
                    "worker index {index} out of range for {} slots",
                    self.slots.len()
                ),
            );
        };
        let Some(addr) = body
            .get("addr")
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<SocketAddr>().ok())
        else {
            return Reply::error(400, "missing or invalid worker addr");
        };
        *slot.addr.lock().expect("addr") = addr;
        slot.pool.lock().expect("worker pool mutex").clear();
        slot.consecutive_failures.store(0, Ordering::Relaxed);
        if !slot.healthy.swap(true, Ordering::Relaxed) {
            self.counters.worker_rejoins_total.inc();
        }
        Reply::json(
            200,
            Json::Obj(vec![
                ("status".into(), Json::str("registered")),
                ("index".into(), Json::num(index as f64)),
                ("addr".into(), Json::str(addr.to_string())),
            ]),
        )
    }

    fn handle_manifest(&self) -> Reply {
        match std::fs::read(self.options.snapshot_dir.join(MANIFEST_FILE)) {
            Ok(bytes) => Reply::bytes(200, "application/octet-stream", bytes),
            Err(e) => Reply::error(500, format!("read manifest: {e}")),
        }
    }

    fn handle_shard(&self, path: &str) -> Reply {
        let Some(id) = path
            .strip_prefix("/cluster/shard/")
            .and_then(|s| s.parse::<u64>().ok())
        else {
            return Reply::error(400, "invalid shard id");
        };
        let epoch = self.epoch();
        if !epoch.summary.shards.iter().any(|s| s.id == id) {
            return Reply::error(404, format!("no shard {id} in the current manifest"));
        }
        match std::fs::read(self.options.snapshot_dir.join(shard_file_name(id))) {
            Ok(bytes) => Reply::bytes(200, "application/octet-stream", bytes),
            Err(e) => Reply::error(500, format!("read shard {id}: {e}")),
        }
    }

    fn healthz(&self) -> Json {
        let epoch = self.epoch();
        let healthy = self
            .slots
            .iter()
            .filter(|s| s.healthy.load(Ordering::Relaxed))
            .count();
        Json::Obj(vec![
            ("status".into(), Json::str("ok")),
            ("role".into(), Json::str("coordinator")),
            ("generation".into(), Json::num(epoch.generation as f64)),
            (
                "total_shards".into(),
                Json::num(epoch.summary.shards.len() as f64),
            ),
            (
                "live_bags".into(),
                Json::num(epoch.summary.live_len() as f64),
            ),
            ("workers".into(), Json::num(self.slots.len() as f64)),
            ("healthy_workers".into(), Json::num(healthy as f64)),
            (
                "uptime_s".into(),
                Json::num(self.started.elapsed().as_secs_f64()),
            ),
        ])
    }

    fn metrics_json(&self) -> Json {
        Json::Obj(vec![
            ("role".into(), Json::str("coordinator")),
            (
                "accepted_total".into(),
                Json::num(self.metrics.accepted_total.get() as f64),
            ),
            (
                "completed_total".into(),
                Json::num(self.metrics.completed_total.get() as f64),
            ),
            (
                "read_error_total".into(),
                Json::num(self.metrics.read_error_total.get() as f64),
            ),
            (
                "closed_total".into(),
                Json::num(self.metrics.closed_total.get() as f64),
            ),
            (
                "shed_total".into(),
                Json::num(self.metrics.shed_total.get() as f64),
            ),
            (
                "deadline_shed_total".into(),
                Json::num(self.metrics.deadline_shed_total.get() as f64),
            ),
            ("cluster".into(), self.cluster_counters_json()),
            ("endpoints".into(), self.metrics.endpoints_json()),
        ])
    }

    fn route(&self, req: &Request) -> (&'static str, Action) {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/cluster/rank") => (
                "/cluster/rank",
                Action::Reply(self.handle_cluster_rank(req)),
            ),
            ("GET", "/cluster/status") => ("/cluster/status", Action::Reply(self.handle_status())),
            ("GET", "/cluster/manifest") => {
                ("/cluster/manifest", Action::Reply(self.handle_manifest()))
            }
            ("GET", path) if path.starts_with("/cluster/shard/") => {
                ("/cluster/shard", Action::Reply(self.handle_shard(path)))
            }
            ("POST", "/cluster/workers") => (
                "/cluster/workers",
                Action::Reply(self.handle_register_worker(req)),
            ),
            ("GET", "/healthz") => ("/healthz", Action::Reply(Reply::json(200, self.healthz()))),
            ("GET", "/metrics") => {
                let reply = if req.query_param("format") == Some("prometheus") {
                    let mut out = self.metrics.registry().render_prometheus();
                    out.push_str(&milr_obs::global().render_prometheus());
                    Reply::bytes(200, "text/plain; version=0.0.4", out.into_bytes())
                } else {
                    Reply::json(200, self.metrics_json())
                };
                ("/metrics", Action::Reply(reply))
            }
            ("POST", "/snapshot/reload") => {
                let reply = match self.reload() {
                    Ok((generation, shards)) => Reply::json(
                        200,
                        Json::Obj(vec![
                            ("generation".into(), Json::num(generation as f64)),
                            ("shards".into(), Json::num(shards as f64)),
                        ]),
                    ),
                    Err(err) => Reply::error(500, err.to_string()),
                };
                ("/snapshot/reload", Action::Reply(reply))
            }
            ("POST", "/admin/shutdown") => (
                "/admin/shutdown",
                Action::Shutdown(Reply::json(
                    200,
                    Json::Obj(vec![("status".into(), Json::str("draining"))]),
                )),
            ),
            _ => ("other", Action::Reply(Reply::error(404, "no such route"))),
        }
    }

    /// One probe round over the fleet.
    fn probe_workers(&self) {
        let epoch = self.epoch();
        for slot in &self.slots {
            let mut conn = slot.checkout(self.options.worker_deadline);
            let outcome = conn.get("/healthz");
            match outcome {
                Ok(response) if response.status == 200 => {
                    slot.checkin(conn);
                    self.note_success(slot);
                    let generation = response
                        .json()
                        .ok()
                        .and_then(|json| json.get("generation").and_then(Json::as_u64))
                        .unwrap_or(0);
                    slot.seen_generation.store(generation, Ordering::Relaxed);
                    if generation != epoch.generation {
                        // Idle skew (no rank traffic to trip the 409
                        // path): push the worker back in sync.
                        let _ = self.resync_worker(slot);
                    }
                }
                _ => self.note_failure(slot),
            }
        }
    }
}

fn health_loop(daemon: &Arc<CoordinatorDaemon>) {
    let tick = Duration::from_millis(25);
    loop {
        let mut slept = Duration::ZERO;
        while slept < daemon.options.health_interval {
            if daemon.stop.load(Ordering::Relaxed) {
                return;
            }
            let step = tick.min(daemon.options.health_interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
        if daemon.stop.load(Ordering::Relaxed) {
            return;
        }
        daemon.probe_workers();
    }
}

/// A running coordinator daemon.
pub struct Coordinator {
    node: Node,
    daemon: Arc<CoordinatorDaemon>,
    health: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Opens the snapshot, builds the worker slots, and starts serving
    /// plus the health-probe loop.
    ///
    /// # Errors
    /// [`CoreError::Storage`] on snapshot problems, or the bind failure
    /// mapped through the same type.
    pub fn start(options: CoordinatorOptions) -> Result<Self, CoreError> {
        let epoch = CoordinatorDaemon::load_epoch(&options)?;
        let metrics = Arc::new(Metrics::default());
        metrics.snapshot_generation.set(epoch.generation as f64);
        metrics
            .snapshot_shards
            .set(epoch.summary.shards.len() as f64);
        let registry = metrics.registry();
        let counters = ClusterCounters {
            rank_total: registry.counter("milrd_cluster_rank_total"),
            partial_responses_total: registry.counter("milrd_cluster_partial_responses_total"),
            shards_ranked_total: registry.counter("milrd_cluster_shards_ranked_total"),
            shards_missing_total: registry.counter("milrd_cluster_shards_missing_total"),
            bound_forwarded_total: registry.counter("milrd_cluster_bound_forwarded_total"),
            bound_tightenings_total: registry.counter("milrd_cluster_bound_tightenings_total"),
            worker_retries_total: registry.counter("milrd_cluster_worker_retries_total"),
            worker_evictions_total: registry.counter("milrd_cluster_worker_evictions_total"),
            worker_rejoins_total: registry.counter("milrd_cluster_worker_rejoins_total"),
            generation_mismatch_total: registry.counter("milrd_cluster_generation_mismatch_total"),
            worker_resyncs_total: registry.counter("milrd_cluster_worker_resyncs_total"),
        };
        let slots = options
            .workers
            .iter()
            .enumerate()
            .map(|(index, &addr)| WorkerSlot {
                index,
                addr: Mutex::new(addr),
                healthy: AtomicBool::new(true),
                consecutive_failures: AtomicU64::new(0),
                seen_generation: AtomicU64::new(0),
                pool: Mutex::new(Vec::new()),
                latency_us: registry.histogram(&milr_obs::labelled(
                    "milrd_cluster_worker_latency_us",
                    &[("worker", &index.to_string())],
                )),
            })
            .collect();
        let daemon = Arc::new(CoordinatorDaemon {
            config: Arc::new(options.retrieval.clone()),
            epoch: Mutex::new(Arc::new(epoch)),
            cache: Mutex::new(ConceptCache::new(options.cache_capacity)),
            slots,
            counters,
            metrics: Arc::clone(&metrics),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            options: options.clone(),
        });
        let router = {
            let daemon = Arc::clone(&daemon);
            Box::new(move |req: &Request| daemon.route(req))
        };
        let node = Node::start(options.node.clone(), metrics, router)
            .map_err(|e| storage_err(&options.snapshot_dir, format!("bind: {e}")))?;
        let health = {
            let daemon = Arc::clone(&daemon);
            std::thread::Builder::new()
                .name("milrd-health".into())
                .spawn(move || health_loop(&daemon))
                .expect("spawn health thread")
        };
        Ok(Self {
            node,
            daemon,
            health: Some(health),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.node.addr()
    }

    /// The node's connection/endpoint metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.daemon.metrics
    }

    /// The generation of the currently-loaded snapshot.
    pub fn generation(&self) -> u64 {
        self.daemon.epoch().generation
    }

    /// Flips the shutdown flag and unblocks the acceptor.
    pub fn request_shutdown(&self) {
        self.daemon.stop.store(true, Ordering::Relaxed);
        self.node.request_shutdown();
    }

    /// Blocks until the node has drained, then stops the health loop.
    pub fn wait(mut self) {
        self.node.wait();
        self.daemon.stop.store(true, Ordering::Relaxed);
        if let Some(health) = self.health.take() {
            let _ = health.join();
        }
    }
}

fn core_error_status(err: &CoreError) -> u16 {
    match err {
        CoreError::IndexOutOfBounds { .. }
        | CoreError::NoExamples
        | CoreError::NotTrained
        | CoreError::UnknownCategory { .. }
        | CoreError::NoTargetCategory => 400,
        CoreError::Mil(milr_mil::MilError::DimensionMismatch { .. }) => 400,
        _ => 500,
    }
}

fn ranking_json(ranking: &[(usize, f64)]) -> Json {
    Json::Arr(
        ranking
            .iter()
            .map(|&(index, distance)| {
                Json::Obj(vec![
                    ("index".into(), Json::num(index as f64)),
                    ("distance".into(), Json::Num(distance)),
                ])
            })
            .collect(),
    )
}

/// Parses a comma-separated index list (`"3,1,4"`), mirroring the
/// single-node daemon's query grammar.
fn parse_index_list(text: &str) -> Result<Vec<usize>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| format!("invalid index {part:?}"))
        })
        .collect()
}
