//! The cluster node server loop: the same bounded-queue concurrency
//! model as the single-node daemon (one acceptor, `workers` handler
//! threads, `503` shedding past `queue_depth`), but speaking
//! **HTTP/1.1 keep-alive** — a handler thread serves requests off one
//! connection in a loop until the peer closes, asks to close, idles
//! past the read timeout, or the node drains. That is what makes the
//! coordinator's pooled worker connections worth pooling.
//!
//! Connection accounting keeps the single-node conservation law, with
//! outcomes adjusted for connection reuse — every admitted connection
//! resolves exactly once:
//!
//! * `completed` — served at least one request and ended cleanly
//!   (peer EOF/idle expiry after a response, `Connection: close`,
//!   shutdown, or a write failure after routing);
//! * `closed` — peer closed (or idled out) before ever sending a
//!   request;
//! * `read_error` — a request failed to parse mid-connection;
//! * `deadline_shed` — overstayed the queue and was answered `503`.
//!
//! So at quiescence `accepted == completed + closed + read_error +
//! deadline_shed`, exactly the identity the chaos suite asserts
//! per node when it extends the law across the cluster.

use std::collections::VecDeque;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use milr_serve::http::{self, ReadError, Request};
use milr_serve::metrics::Metrics;
use milr_serve::Json;

/// Everything tunable about a cluster node's server loop.
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// Bind address (port `0` picks an ephemeral one).
    pub addr: String,
    /// Handler threads.
    pub workers: usize,
    /// Accepted connections allowed to wait; beyond this the acceptor
    /// sheds with `503`.
    pub queue_depth: usize,
    /// Socket read **and** write deadline — doubling as the keep-alive
    /// idle timeout between requests on one connection.
    pub read_timeout: Duration,
    /// Longest a connection may wait in the queue and still be served.
    pub handle_deadline: Duration,
    /// Requests served per scheduling turn before a keep-alive worker
    /// checks the accept queue and yields (`Connection: close`) if
    /// other connections wait — without it one chatty peer pins a
    /// handler thread forever and every other connection starves for
    /// the whole phase. `0` checks after every request.
    pub keepalive_burst: usize,
    /// Worker time a connection may consume before every further
    /// response also checks the queue — request counts don't bound
    /// latency when one coordinator train costs seconds while a shard
    /// rank costs microseconds.
    pub keepalive_turn: Duration,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
}

impl Default for NodeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(2),
            handle_deadline: Duration::from_secs(10),
            keepalive_burst: 32,
            keepalive_turn: Duration::from_millis(50),
            max_body: 8 * 1024 * 1024,
        }
    }
}

/// A response body: JSON for the protocol proper, raw bytes for the
/// shard-streaming endpoints.
#[derive(Debug)]
pub enum Body {
    /// A JSON payload (`application/json`).
    Json(Json),
    /// A binary payload with an explicit content type.
    Bytes(&'static str, Vec<u8>),
}

/// One routed reply.
#[derive(Debug)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Body,
}

impl Reply {
    /// A JSON reply.
    pub fn json(status: u16, body: Json) -> Self {
        Self {
            status,
            body: Body::Json(body),
        }
    }

    /// A raw-bytes reply.
    pub fn bytes(status: u16, content_type: &'static str, data: Vec<u8>) -> Self {
        Self {
            status,
            body: Body::Bytes(content_type, data),
        }
    }

    /// The uniform `{"error": …}` reply.
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        Self::json(status, http::error_body(message))
    }
}

/// What the router wants done after a reply: keep serving, or drain the
/// node (the `/admin/shutdown` path — the reply is still delivered,
/// with `Connection: close`).
#[derive(Debug)]
pub enum Action {
    /// Send the reply and keep the node serving.
    Reply(Reply),
    /// Send the reply, then drain and stop the node.
    Shutdown(Reply),
}

/// The routing callback: label (for the per-endpoint metrics — dynamic
/// path segments must collapse into placeholders) plus the action.
pub type Router = dyn Fn(&Request) -> (&'static str, Action) + Send + Sync;

struct Inner {
    options: NodeOptions,
    metrics: Arc<Metrics>,
    router: Box<Router>,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    available: Condvar,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A running cluster node server.
pub struct Node {
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Node {
    /// Binds and starts the accept loop plus the handler pool.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(
        options: NodeOptions,
        metrics: Arc<Metrics>,
        router: Box<Router>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&options.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            options,
            metrics,
            router,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            addr,
        });
        let workers = (0..inner.options.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&listener, &inner))
        };
        Ok(Self {
            inner,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The node's connection/endpoint metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag and unblocks the acceptor.
    pub fn request_shutdown(&self) {
        request_shutdown(&self.inner);
    }

    /// Blocks until the acceptor and every handler thread has drained.
    pub fn wait(mut self) {
        if let Some(handle) = self.acceptor.take() {
            handle.join().ok();
        }
        for handle in self.workers.drain(..) {
            handle.join().ok();
        }
    }
}

fn request_shutdown(inner: &Inner) {
    if inner.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Unblock the acceptor with a throwaway self-connection.
    TcpStream::connect(inner.addr).ok();
    inner.available.notify_all();
}

fn accept_loop(listener: &TcpListener, inner: &Inner) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        stream
            .set_read_timeout(Some(inner.options.read_timeout))
            .ok();
        stream
            .set_write_timeout(Some(inner.options.read_timeout))
            .ok();
        // Responses go out in one write; never let Nagle hold the tail
        // of one exchange hostage to the next request's ACK.
        stream.set_nodelay(true).ok();
        let mut queue = inner.queue.lock().expect("node queue mutex");
        if queue.len() >= inner.options.queue_depth {
            drop(queue);
            inner.metrics.shed_total.inc();
            // Refuse on a throwaway thread so a slow peer cannot stall
            // the acceptor.
            std::thread::spawn(move || {
                let mut stream = stream;
                http::respond_json(&mut stream, 503, &http::error_body("node overloaded")).ok();
                drain_before_close(&mut stream);
            });
            continue;
        }
        inner.metrics.accepted_total.inc();
        queue.push_back((stream, Instant::now()));
        inner.metrics.set_queue_depth(queue.len());
        drop(queue);
        inner.available.notify_one();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let popped = {
            let mut queue = inner.queue.lock().expect("node queue mutex");
            loop {
                if let Some(item) = queue.pop_front() {
                    inner.metrics.set_queue_depth(queue.len());
                    break Some(item);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = inner
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("node queue mutex");
                queue = guard;
            }
        };
        let Some((stream, enqueued)) = popped else {
            return;
        };
        handle_connection(inner, stream, enqueued);
    }
}

/// Serves one connection to completion, counting exactly one outcome.
fn handle_connection(inner: &Inner, mut stream: TcpStream, enqueued: Instant) {
    if enqueued.elapsed() > inner.options.handle_deadline {
        inner.metrics.deadline_shed_total.inc();
        http::respond_json(
            &mut stream,
            503,
            &http::error_body("queue deadline exceeded"),
        )
        .ok();
        drain_before_close(&mut stream);
        return;
    }
    let mut served = 0usize;
    let turn_started = Instant::now();
    loop {
        match http::read_request(&mut stream, inner.options.max_body) {
            Ok(req) => {
                let started = Instant::now();
                let (endpoint, action) = (inner.router)(&req);
                let (reply, wants_drain) = match action {
                    Action::Reply(reply) => (reply, false),
                    Action::Shutdown(reply) => (reply, true),
                };
                served += 1;
                // Burst-boundary yield: a keep-alive peer that never
                // pauses would otherwise pin this handler thread while
                // queued connections starve to their deadline. Both a
                // request-count and a worker-time boundary, because
                // request costs span microseconds to seconds.
                let at_burst_boundary = served.is_multiple_of(inner.options.keepalive_burst.max(1))
                    || turn_started.elapsed() >= inner.options.keepalive_turn;
                let keep = !wants_drain
                    && !client_wants_close(&req)
                    && !inner.shutdown.load(Ordering::SeqCst)
                    && (!at_burst_boundary
                        || inner.queue.lock().expect("node queue mutex").is_empty());
                inner
                    .metrics
                    .record(endpoint, reply.status, started.elapsed().as_micros() as u64);
                let io = match &reply.body {
                    Body::Json(json) => {
                        http::respond_json_conn(&mut stream, reply.status, json, keep)
                    }
                    Body::Bytes(content_type, data) => {
                        http::respond_bytes(&mut stream, reply.status, content_type, data, keep)
                    }
                };
                if wants_drain {
                    request_shutdown(inner);
                }
                if io.is_err() || !keep {
                    inner.metrics.completed_total.inc();
                    drain_before_close(&mut stream);
                    return;
                }
            }
            Err(ReadError::Closed) => {
                // Peer EOF at a request boundary: a completed keep-alive
                // exchange if anything was served, a prober otherwise.
                if served > 0 {
                    inner.metrics.completed_total.inc();
                } else {
                    inner.metrics.closed_total.inc();
                }
                return;
            }
            Err(ReadError::Timeout) if served > 0 => {
                // Keep-alive idle expiry between requests.
                inner.metrics.completed_total.inc();
                drain_before_close(&mut stream);
                return;
            }
            Err(err) => {
                let (status, message) = match err {
                    ReadError::Timeout => (408, "request timed out".to_string()),
                    ReadError::HeadTooLarge => (431, "request head too large".to_string()),
                    ReadError::BodyTooLarge => (413, "request body too large".to_string()),
                    ReadError::Malformed(msg) => (400, msg),
                    ReadError::Closed => unreachable!("handled above"),
                };
                inner.metrics.read_error_total.inc();
                http::respond_json(&mut stream, status, &http::error_body(message)).ok();
                drain_before_close(&mut stream);
                return;
            }
        }
    }
}

fn client_wants_close(req: &Request) -> bool {
    req.header("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
}

/// Half-closes the write side and swallows whatever the peer still has
/// in flight, so its final ACK round-trip never turns into an RST that
/// races our response out of the peer's receive buffer.
fn drain_before_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 4096];
    for _ in 0..16 {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => continue,
            _ => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_serve::client;

    fn start_echo_node() -> Node {
        let metrics = Arc::new(Metrics::default());
        Node::start(
            NodeOptions {
                read_timeout: Duration::from_millis(400),
                ..NodeOptions::default()
            },
            metrics,
            Box::new(|req: &Request| match req.path.as_str() {
                "/echo" => (
                    "/echo",
                    Action::Reply(Reply::json(
                        200,
                        Json::Obj(vec![("len".into(), Json::num(req.body.len() as f64))]),
                    )),
                ),
                "/admin/shutdown" => (
                    "/admin/shutdown",
                    Action::Shutdown(Reply::json(200, Json::Obj(vec![]))),
                ),
                _ => ("other", Action::Reply(Reply::error(404, "no such route"))),
            }),
        )
        .expect("node starts")
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_socket() {
        let node = start_echo_node();
        let mut conn = client::Connection::new(node.addr(), Duration::from_secs(2));
        for i in 0..16 {
            let response = conn
                .post_json("/echo", &Json::Obj(vec![("i".into(), Json::num(i as f64))]))
                .expect("keep-alive request");
            assert_eq!(response.status, 200);
        }
        assert_eq!(conn.dials(), 1, "all 16 requests reuse one socket");
        assert_eq!(node.metrics().accepted_total.get(), 1);
        // Idle past the read timeout: the node counts the connection
        // completed and the law balances at quiescence.
        std::thread::sleep(Duration::from_millis(600));
        assert!(node.metrics().connections_balanced());
        assert_eq!(node.metrics().completed_total.get(), 1);
        node.request_shutdown();
        node.wait();
    }

    #[test]
    fn connection_close_and_probes_resolve_distinctly() {
        let node = start_echo_node();
        // One-shot client sends Connection: close → completed.
        let response = client::get(node.addr(), "/echo", Duration::from_secs(2)).expect("one-shot");
        assert_eq!(response.status, 200);
        // A probe that connects and closes without a byte → closed.
        drop(TcpStream::connect(node.addr()).expect("probe connects"));
        // Garbage → read_error (and a 400).
        let mut garbage = TcpStream::connect(node.addr()).expect("garbage connects");
        use std::io::Write;
        garbage.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut raw = Vec::new();
        garbage.read_to_end(&mut raw).ok();
        assert!(String::from_utf8_lossy(&raw).contains("400"), "{raw:?}");
        drop(garbage);
        let deadline = Instant::now() + Duration::from_secs(5);
        while !(node.metrics().connections_balanced() && node.metrics().accepted_total.get() == 3) {
            assert!(Instant::now() < deadline, "node never quiesced");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(node.metrics().completed_total.get(), 1);
        assert_eq!(node.metrics().closed_total.get(), 1);
        assert_eq!(node.metrics().read_error_total.get(), 1);
        node.request_shutdown();
        node.wait();
    }

    #[test]
    fn shutdown_endpoint_drains_the_node() {
        let node = start_echo_node();
        let addr = node.addr();
        let response = client::post_json(
            addr,
            "/admin/shutdown",
            &Json::Obj(vec![]),
            Duration::from_secs(2),
        )
        .expect("shutdown accepted");
        assert_eq!(response.status, 200);
        node.wait();
        assert!(
            client::get(addr, "/echo", Duration::from_millis(300)).is_err(),
            "drained node no longer serves"
        );
    }
}
