//! The coordinator↔worker wire protocol and the pure planning/merge
//! functions behind it.
//!
//! Everything numeric crosses the wire as JSON through `milr-serve`'s
//! codec, whose `f64` rendering is shortest-round-trip: a distance or
//! concept coordinate parsed back on the other side carries the exact
//! bit pattern it left with. That is what lets the cluster promise
//! *bit*-identity with single-node ranking rather than mere closeness.
//!
//! The planning half is deliberately pure (no sockets, no clocks):
//! [`assign_shards`] decides which worker owns which shard, and
//! [`gather`] merges per-worker top-k rankings — both are driven
//! directly by proptests against the single-node scatter.

use milr_core::database::Ranking;
use milr_mil::{BagAggregator, Concept};
use milr_serve::Json;
use milr_store::{merge_rankings, ManifestSummary};

/// Assigns the manifest's shards to `worker_count` workers round-robin
/// by manifest position: shard at position `p` belongs to worker
/// `p % worker_count`. Deterministic, derivable by a worker from the
/// manifest alone, and stable for existing shards when new shards are
/// appended *and* the worker count is unchanged.
pub fn assign_shards(shard_ids: &[u64], worker_count: usize) -> Vec<Vec<u64>> {
    let mut assignment = vec![Vec::new(); worker_count.max(1)];
    for (position, &id) in shard_ids.iter().enumerate() {
        assignment[position % worker_count.max(1)].push(id);
    }
    assignment
}

/// A `POST /worker/rank` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerRankRequest {
    /// The snapshot generation the coordinator is serving; the worker
    /// rejects the request (409) when its own generation differs —
    /// cross-generation rankings must never merge silently.
    pub generation: u64,
    /// How many results the worker should return.
    pub k: usize,
    /// The coordinator's current k-th-best distance, forwarded so the
    /// worker's scan prunes against results gathered elsewhere
    /// ([`f64::INFINITY`] when the coordinator has none yet).
    pub bound: f64,
    /// The trained concept to rank against.
    pub concept: Concept,
    /// How each bag's instance distances reduce to its ranking key.
    /// Emitted on the wire only when non-default, so scatter requests
    /// to workers predating the field are byte-identical to before;
    /// a missing field parses as min-distance.
    pub aggregator: BagAggregator,
}

impl WorkerRankRequest {
    /// Serialises the request body.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("generation".into(), Json::num(self.generation as f64)),
            ("k".into(), Json::num(self.k as f64)),
        ];
        if self.bound.is_finite() {
            fields.push(("bound".into(), Json::Num(self.bound)));
        }
        if !self.aggregator.is_min() {
            fields.push(("aggregator".into(), Json::str(self.aggregator.label())));
        }
        fields.push((
            "point".into(),
            Json::Arr(self.concept.point().iter().map(|&v| Json::Num(v)).collect()),
        ));
        fields.push((
            "weights".into(),
            Json::Arr(
                self.concept
                    .weights()
                    .iter()
                    .map(|&v| Json::Num(v))
                    .collect(),
            ),
        ));
        Json::Obj(fields)
    }

    /// Parses a request body.
    ///
    /// # Errors
    /// A description of the missing or malformed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let generation = json
            .get("generation")
            .and_then(Json::as_u64)
            .ok_or("missing generation")?;
        let k = json.get("k").and_then(Json::as_u64).ok_or("missing k")? as usize;
        let bound = match json.get("bound") {
            None => f64::INFINITY,
            Some(v) => v.as_f64().ok_or("bound must be a number")?,
        };
        if !(bound.is_finite() && bound >= 0.0) && bound != f64::INFINITY {
            return Err("bound must be a non-negative finite number".into());
        }
        let number_list = |field: &str| -> Result<Vec<f64>, String> {
            json.get(field)
                .and_then(Json::as_array)
                .ok_or(format!("missing {field}"))?
                .iter()
                .map(|v| v.as_f64().ok_or(format!("{field} must hold numbers")))
                .collect()
        };
        let point = number_list("point")?;
        let weights = number_list("weights")?;
        if point.is_empty() || point.len() != weights.len() {
            return Err("point and weights must be equal-length and non-empty".into());
        }
        // Trained DD concepts may zero out features entirely, so zero
        // weights are legitimate; only negatives and non-finites are
        // malformed.
        if weights.iter().any(|&w| !(w.is_finite() && w >= 0.0)) {
            return Err("weights must be non-negative finite numbers".into());
        }
        if point.iter().any(|v| !v.is_finite()) {
            return Err("point must hold finite numbers".into());
        }
        let aggregator = match json.get("aggregator") {
            None => BagAggregator::MinDistance,
            Some(v) => {
                let label = v.as_str().ok_or("aggregator must be a string")?;
                BagAggregator::parse(label)
                    .ok_or_else(|| format!("unknown aggregator '{label}'"))?
            }
        };
        Ok(Self {
            generation,
            k,
            bound,
            concept: Concept::new(point, weights),
            aggregator,
        })
    }
}

/// A `POST /worker/rank` success response body.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerRankResponse {
    /// The generation the worker ranked at (always equal to the
    /// request's — mismatches are rejected before ranking).
    pub generation: u64,
    /// The worker's top-k over its shard subset, in the *global*
    /// (tombstone-inclusive) index space.
    pub ranking: Ranking,
    /// Shared-threshold tightenings inside the worker's scan (counts
    /// tightenings of the forwarded bound too — the propagation proof).
    pub tightenings: u64,
    /// Whether the request carried a finite forwarded bound.
    pub bound_seeded: bool,
}

impl WorkerRankResponse {
    /// Serialises the response body.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("generation".into(), Json::num(self.generation as f64)),
            ("ranking".into(), ranking_to_json(&self.ranking)),
            ("tightenings".into(), Json::num(self.tightenings as f64)),
            ("bound_seeded".into(), Json::Bool(self.bound_seeded)),
        ])
    }

    /// Parses a response body.
    ///
    /// # Errors
    /// A description of the missing or malformed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        Ok(Self {
            generation: json
                .get("generation")
                .and_then(Json::as_u64)
                .ok_or("missing generation")?,
            ranking: ranking_from_json(json.get("ranking").ok_or("missing ranking")?)?,
            tightenings: json
                .get("tightenings")
                .and_then(Json::as_u64)
                .ok_or("missing tightenings")?,
            bound_seeded: json
                .get("bound_seeded")
                .and_then(Json::as_bool)
                .ok_or("missing bound_seeded")?,
        })
    }
}

/// Serialises a ranking as `[{"index": i, "distance": d}, …]` — the
/// same shape the single-node `/rank` endpoint answers with.
pub fn ranking_to_json(ranking: &Ranking) -> Json {
    Json::Arr(
        ranking
            .iter()
            .map(|&(index, distance)| {
                Json::Obj(vec![
                    ("index".into(), Json::num(index as f64)),
                    ("distance".into(), Json::Num(distance)),
                ])
            })
            .collect(),
    )
}

/// Parses a ranking serialised by [`ranking_to_json`].
///
/// # Errors
/// A description of the malformed entry.
pub fn ranking_from_json(json: &Json) -> Result<Ranking, String> {
    json.as_array()
        .ok_or("ranking must be an array")?
        .iter()
        .map(|entry| {
            let index = entry
                .get("index")
                .and_then(Json::as_u64)
                .ok_or("ranking entry missing index")? as usize;
            let distance = entry
                .get("distance")
                .and_then(Json::as_f64)
                .ok_or("ranking entry missing distance")?;
            if !distance.is_finite() || distance < 0.0 {
                return Err("ranking distance must be non-negative and finite".into());
            }
            Ok((index, distance))
        })
        .collect()
}

/// One worker's contribution to a gather: its assigned shard ids plus
/// its ranking — [`None`] when the worker dropped (timed out, refused,
/// or answered a different generation after the resync retry).
#[derive(Debug, Clone)]
pub struct GatherInput {
    /// Shards assigned to this worker.
    pub shard_ids: Vec<u64>,
    /// The worker's subset top-k, or [`None`] for a dropped worker.
    pub ranking: Option<Ranking>,
}

/// A merged cluster ranking plus its degradation contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Gathered {
    /// Top-k over every *surviving* worker's shards, by ascending
    /// `(distance, global index)`.
    pub ranking: Ranking,
    /// Set iff any worker dropped — the result may be missing bags.
    pub partial: bool,
    /// Shard ids owned by dropped workers, ascending.
    pub missing_shards: Vec<u64>,
}

/// The gather half of a cluster rank: k-way merge of the surviving
/// workers' rankings through the *same* [`merge_rankings`] the
/// single-node scatter uses, plus the explicit degraded-result
/// contract. With every worker present this is bit-identical to the
/// single-node top-k; with workers missing it is the exact top-k over
/// the surviving shards — both proptested.
pub fn gather(inputs: Vec<GatherInput>, k: usize) -> Gathered {
    let mut missing_shards = Vec::new();
    let mut partial = false;
    let mut rankings = Vec::with_capacity(inputs.len());
    for input in inputs {
        match input.ranking {
            Some(ranking) => rankings.push(ranking),
            None => {
                partial = true;
                missing_shards.extend(input.shard_ids);
            }
        }
    }
    missing_shards.sort_unstable();
    Gathered {
        ranking: merge_rankings(rankings, Some(k)),
        partial,
        missing_shards,
    }
}

/// Collapses missing shard ids into coalesced global-index ranges
/// `[start, end)` using the manifest's per-shard bases — what the
/// degraded `/cluster/rank` response reports so a client knows exactly
/// which stretch of the corpus its page may be missing.
pub fn missing_ranges(summary: &ManifestSummary, missing_shards: &[u64]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = summary
        .shards
        .iter()
        .filter(|entry| missing_shards.contains(&entry.id))
        .map(|entry| (entry.base, entry.base + entry.bag_count))
        .collect();
    ranges.sort_unstable();
    let mut coalesced: Vec<(usize, usize)> = Vec::with_capacity(ranges.len());
    for (start, end) in ranges {
        match coalesced.last_mut() {
            Some((_, last_end)) if *last_end == start => *last_end = end,
            _ => coalesced.push((start, end)),
        }
    }
    coalesced
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_round_robin_and_total() {
        let ids = [10, 11, 12, 13, 14];
        let assignment = assign_shards(&ids, 2);
        assert_eq!(assignment, vec![vec![10, 12, 14], vec![11, 13]]);
        let flat: Vec<u64> = assignment.into_iter().flatten().collect();
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, ids);
        // More workers than shards leaves the surplus empty-handed.
        let sparse = assign_shards(&ids[..1], 3);
        assert_eq!(sparse, vec![vec![10], vec![], vec![]]);
    }

    #[test]
    fn appending_shards_keeps_existing_assignments() {
        let before = assign_shards(&[0, 1, 2, 3], 3);
        let after = assign_shards(&[0, 1, 2, 3, 4, 5], 3);
        for (b, a) in before.iter().zip(&after) {
            assert!(a.starts_with(b), "{before:?} → {after:?}");
        }
    }

    #[test]
    fn rank_request_round_trips_exactly() {
        let request = WorkerRankRequest {
            generation: 7,
            k: 5,
            bound: 0.1 + 0.2, // a value with no short decimal form
            concept: Concept::new(vec![1.5, -2.25, 1e-300], vec![0.1, 2.0, 3.5]),
            aggregator: BagAggregator::MinDistance,
        };
        let json = Json::parse(&request.to_json().dump()).unwrap();
        // The default aggregator is omitted on the wire: the scatter
        // request is byte-compatible with workers predating the field.
        assert!(json.get("aggregator").is_none());
        let back = WorkerRankRequest::from_json(&json).unwrap();
        assert_eq!(back.generation, 7);
        assert_eq!(back.k, 5);
        assert_eq!(back.bound.to_bits(), request.bound.to_bits());
        assert_eq!(back.aggregator, BagAggregator::MinDistance);
        for (a, b) in back.concept.point().iter().zip(request.concept.point()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // An infinite bound is simply omitted on the wire.
        let unbounded = WorkerRankRequest {
            bound: f64::INFINITY,
            ..request.clone()
        };
        let json = Json::parse(&unbounded.to_json().dump()).unwrap();
        assert!(json.get("bound").is_none());
        assert_eq!(
            WorkerRankRequest::from_json(&json).unwrap().bound,
            f64::INFINITY
        );
        // Non-default aggregators ride the wire by label and round-trip.
        for aggregator in BagAggregator::ALL {
            let tagged = WorkerRankRequest {
                aggregator,
                ..request.clone()
            };
            let json = Json::parse(&tagged.to_json().dump()).unwrap();
            assert_eq!(
                WorkerRankRequest::from_json(&json).unwrap().aggregator,
                aggregator
            );
        }
    }

    #[test]
    fn unknown_aggregators_are_rejected() {
        for raw in [
            r#"{"generation": 0, "k": 1, "aggregator": "softmax", "point": [1], "weights": [1]}"#,
            r#"{"generation": 0, "k": 1, "aggregator": 3, "point": [1], "weights": [1]}"#,
        ] {
            let json = Json::parse(raw).unwrap();
            assert!(WorkerRankRequest::from_json(&json).is_err(), "{raw}");
        }
    }

    #[test]
    fn malformed_rank_requests_are_rejected() {
        for raw in [
            r#"{"k": 1, "point": [1], "weights": [1]}"#,
            r#"{"generation": 0, "k": 1, "point": [], "weights": []}"#,
            r#"{"generation": 0, "k": 1, "point": [1, 2], "weights": [1]}"#,
            r#"{"generation": 0, "k": 1, "point": [1], "weights": [-2]}"#,
            r#"{"generation": 0, "k": 1, "bound": -1, "point": [1], "weights": [1]}"#,
        ] {
            let json = Json::parse(raw).unwrap();
            assert!(WorkerRankRequest::from_json(&json).is_err(), "{raw}");
        }
    }

    #[test]
    fn rank_response_round_trips_exactly() {
        let response = WorkerRankResponse {
            generation: 3,
            ranking: vec![(4, 0.125), (9, 1.0 / 3.0)],
            tightenings: 2,
            bound_seeded: true,
        };
        let json = Json::parse(&response.to_json().dump()).unwrap();
        let back = WorkerRankResponse::from_json(&json).unwrap();
        assert_eq!(back.generation, 3);
        assert_eq!(back.tightenings, 2);
        assert!(back.bound_seeded);
        assert_eq!(back.ranking.len(), 2);
        for (a, b) in back.ranking.iter().zip(&response.ranking) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn gather_flags_partial_iff_any_worker_dropped() {
        let full = gather(
            vec![
                GatherInput {
                    shard_ids: vec![0],
                    ranking: Some(vec![(0, 0.5)]),
                },
                GatherInput {
                    shard_ids: vec![1],
                    ranking: Some(vec![(5, 0.25)]),
                },
            ],
            2,
        );
        assert!(!full.partial);
        assert!(full.missing_shards.is_empty());
        assert_eq!(full.ranking, vec![(5, 0.25), (0, 0.5)]);

        let degraded = gather(
            vec![
                GatherInput {
                    shard_ids: vec![0, 2],
                    ranking: Some(vec![(0, 0.5)]),
                },
                GatherInput {
                    shard_ids: vec![1],
                    ranking: None,
                },
            ],
            2,
        );
        assert!(degraded.partial);
        assert_eq!(degraded.missing_shards, vec![1]);
        assert_eq!(degraded.ranking, vec![(0, 0.5)]);
    }

    #[test]
    fn missing_ranges_coalesce_adjacent_shards() {
        use milr_store::ManifestShard;
        let summary = ManifestSummary {
            feature_dim: 4,
            generation: 1,
            shard_capacity: 10,
            shards: vec![
                ManifestShard {
                    id: 0,
                    base: 0,
                    bag_count: 10,
                    instance_count: 10,
                    digest: 0,
                },
                ManifestShard {
                    id: 1,
                    base: 10,
                    bag_count: 10,
                    instance_count: 10,
                    digest: 0,
                },
                ManifestShard {
                    id: 2,
                    base: 20,
                    bag_count: 4,
                    instance_count: 4,
                    digest: 0,
                },
            ],
            tombstones: Default::default(),
            backend: Default::default(),
        };
        assert_eq!(missing_ranges(&summary, &[0, 1]), vec![(0, 20)]);
        assert_eq!(missing_ranges(&summary, &[0, 2]), vec![(0, 10), (20, 24)]);
        assert!(missing_ranges(&summary, &[]).is_empty());
    }
}
