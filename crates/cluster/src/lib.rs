#![warn(missing_docs)]

//! # milr-cluster
//!
//! Distributed scatter-gather serving over the sharded snapshot
//! format: one **coordinator** milrd fans each rank request out to N
//! **worker** milrds, each owning the subset of shards the manifest
//! assigns it, and k-way-merges the per-worker top-k pages.
//!
//! Design invariants (each one tested):
//!
//! * **Bit-identity** — a healthy cluster returns the same bytes as a
//!   single node. Workers scan with the same per-shard kernel, return
//!   exact `f64` distances through a shortest-round-trip JSON codec,
//!   and the coordinator merges with the same `(distance, index)`
//!   total-order merge the single-node scatter uses.
//! * **Graceful degradation** — a lost worker never fails the client
//!   request: the response is the exact top-k over the surviving
//!   shards, flagged `"partial": true` with the missing shard ids and
//!   bag ranges attached.
//! * **Generation discipline** — a worker serving a different snapshot
//!   generation answers `409`; the coordinator resyncs it and retries
//!   once. Cross-generation pages never merge silently.
//! * **Bound forwarding** — the coordinator's running k-th-best
//!   distance rides along in each worker request and seeds the
//!   worker's shared scatter threshold, so cluster-wide pruning
//!   composes with the single-node optimisation.
//! * **Conservation** — every rank accounts for every shard:
//!   `shards_ranked_total + shards_missing_total = rank_total ×
//!   total_shards`, balanced across nodes even under fault injection.
//!
//! Module map:
//!
//! * [`protocol`] — wire types, shard assignment, the pure gather
//!   merge.
//! * [`node`] — the shared keep-alive HTTP server loop both roles run
//!   on.
//! * [`worker`] — the worker daemon: subset open, `/worker/rank`,
//!   snapshot sync from the coordinator.
//! * [`coordinator`] — the coordinator daemon: training, scatter,
//!   merge, membership, health probing, shard streaming.

pub mod coordinator;
pub mod node;
pub mod protocol;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorOptions};
pub use node::{Action, Body, Node, NodeOptions, Reply, Router};
pub use protocol::{assign_shards, gather, missing_ranges, GatherInput, Gathered};
pub use worker::{sync_from_coordinator, Worker, WorkerOptions};
