//! The worker milrd: owns a subset of the snapshot's shards (assigned
//! round-robin from the manifest) and answers `POST /worker/rank` with
//! its subset top-k in the global index space.
//!
//! A worker never trains — concepts arrive fully formed from the
//! coordinator — so its request path is exactly one
//! [`ShardSubset::rank_top_k`] call. Generation discipline is strict:
//! a request stamped with a different generation than the loaded
//! subset is answered `409` before any ranking happens, so
//! cross-generation results can never merge silently; the coordinator
//! reacts by asking the worker to `POST /snapshot/reload` and retrying
//! once.
//!
//! A worker can also bootstrap its snapshot directory from the
//! coordinator ([`sync_from_coordinator`]): sealed shards are immutable
//! and digest-pinned by the manifest, so distribution is a plain byte
//! copy that [`ShardSubset`] re-verifies at open.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use milr_core::error::CoreError;
use milr_core::storage::storage_err;
use milr_serve::client;
use milr_serve::http::Request;
use milr_serve::metrics::Metrics;
use milr_serve::Json;
use milr_store::{read_manifest, shard_file_name, ManifestSummary, ShardSubset};

use crate::node::{Action, Node, NodeOptions, Reply};
use crate::protocol::{assign_shards, WorkerRankRequest, WorkerRankResponse};

/// Everything tunable about a worker daemon.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Server-loop options (bind address, pool sizes, timeouts).
    pub node: NodeOptions,
    /// The sharded snapshot directory to serve from.
    pub snapshot_dir: PathBuf,
    /// This worker's position in the coordinator's worker list.
    pub worker_index: usize,
    /// Total workers the assignment is split across.
    pub worker_count: usize,
    /// Rank threads per request (the subset scatter fan-out).
    pub threads: usize,
    /// Coordinator address to stream missing shard files from (at
    /// startup and on every reload). [`None`] requires the snapshot
    /// directory to be complete locally.
    pub join: Option<SocketAddr>,
    /// Timeout for shard-streaming fetches from the coordinator.
    pub join_timeout: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            node: NodeOptions::default(),
            snapshot_dir: PathBuf::new(),
            worker_index: 0,
            worker_count: 1,
            threads: 1,
            join: None,
            join_timeout: Duration::from_secs(10),
        }
    }
}

/// One loaded epoch: the shard subset pinned by in-flight requests.
struct WorkerEpoch {
    subset: ShardSubset,
}

/// Shared state behind the worker's router.
struct WorkerDaemon {
    options: WorkerOptions,
    epoch: Mutex<Arc<WorkerEpoch>>,
    metrics: Arc<Metrics>,
    ranks_total: Arc<milr_obs::Counter>,
    bound_seeded_total: Arc<milr_obs::Counter>,
    generation_rejects_total: Arc<milr_obs::Counter>,
    aggregator_rejects_total: Arc<milr_obs::Counter>,
    started: Instant,
}

impl WorkerDaemon {
    fn epoch(&self) -> Arc<WorkerEpoch> {
        Arc::clone(&self.epoch.lock().expect("worker epoch mutex"))
    }

    /// (Re)opens this worker's shard subset from the snapshot
    /// directory, streaming missing shard files from the coordinator
    /// first when a join address is configured.
    fn load_epoch(options: &WorkerOptions) -> Result<WorkerEpoch, CoreError> {
        if let Some(coordinator) = options.join {
            sync_from_coordinator(
                coordinator,
                &options.snapshot_dir,
                options.worker_index,
                options.worker_count,
                options.join_timeout,
            )
            .map_err(|e| storage_err(&options.snapshot_dir, e))?;
        }
        let summary = read_manifest(&options.snapshot_dir)?;
        let assignment = assign_shards(
            &summary.shards.iter().map(|s| s.id).collect::<Vec<_>>(),
            options.worker_count,
        );
        let ids = assignment
            .get(options.worker_index)
            .cloned()
            .unwrap_or_default();
        let subset = ShardSubset::from_manifest_with(
            &milr_core::storage::OsFs,
            &options.snapshot_dir,
            &summary,
            &ids,
        )?;
        Ok(WorkerEpoch { subset })
    }

    fn reload(&self) -> Result<(u64, usize), CoreError> {
        match Self::load_epoch(&self.options) {
            Ok(epoch) => {
                let generation = epoch.subset.generation();
                let shards = epoch.subset.shard_ids().len();
                *self.epoch.lock().expect("worker epoch mutex") = Arc::new(epoch);
                self.metrics.snapshot_reloads_total.inc();
                self.metrics.snapshot_generation.set(generation as f64);
                self.metrics.snapshot_shards.set(shards as f64);
                Ok((generation, shards))
            }
            Err(err) => {
                self.metrics.snapshot_reload_failures_total.inc();
                Err(err)
            }
        }
    }

    fn handle_rank(&self, req: &Request) -> Reply {
        let json = match std::str::from_utf8(&req.body)
            .map_err(|_| "body is not UTF-8".to_string())
            .and_then(Json::parse)
        {
            Ok(json) => json,
            Err(msg) => return Reply::error(400, msg),
        };
        // An aggregator label this worker does not recognise is protocol
        // skew (a newer coordinator), not a malformed request: reject it
        // 409-style like a generation mismatch, so the coordinator
        // degrades to a clean partial page instead of merging a page
        // this worker would have scored under a different key.
        if let Some(label) = json.get("aggregator").and_then(Json::as_str) {
            if milr_mil::BagAggregator::parse(label).is_none() {
                self.aggregator_rejects_total.inc();
                return Reply::json(
                    409,
                    Json::Obj(vec![(
                        "error".into(),
                        Json::str(format!("unknown aggregator '{label}'")),
                    )]),
                );
            }
        }
        let body = match WorkerRankRequest::from_json(&json) {
            Ok(parsed) => parsed,
            Err(msg) => return Reply::error(400, msg),
        };
        let epoch = self.epoch();
        let generation = epoch.subset.generation();
        if body.generation != generation {
            self.generation_rejects_total.inc();
            return Reply::json(
                409,
                Json::Obj(vec![
                    (
                        "error".into(),
                        Json::str(format!(
                            "generation skew: worker at {generation}, request at {}",
                            body.generation
                        )),
                    ),
                    ("generation".into(), Json::num(generation as f64)),
                ]),
            );
        }
        let bound_seeded = body.bound.is_finite();
        let scan = match epoch.subset.rank_top_k_with(
            &body.concept,
            body.k,
            body.bound,
            self.options.threads,
            body.aggregator,
        ) {
            Ok(scan) => scan,
            Err(err) => return Reply::error(400, err.to_string()),
        };
        self.ranks_total.inc();
        if bound_seeded {
            self.bound_seeded_total.inc();
        }
        Reply::json(
            200,
            WorkerRankResponse {
                generation,
                ranking: scan.ranking,
                tightenings: scan.tightenings,
                bound_seeded,
            }
            .to_json(),
        )
    }

    fn healthz(&self) -> Json {
        let epoch = self.epoch();
        Json::Obj(vec![
            ("status".into(), Json::str("ok")),
            ("role".into(), Json::str("worker")),
            (
                "generation".into(),
                Json::num(epoch.subset.generation() as f64),
            ),
            (
                "shards".into(),
                Json::num(epoch.subset.shard_ids().len() as f64),
            ),
            (
                "total_shards".into(),
                Json::num(epoch.subset.total_shards() as f64),
            ),
            (
                "live_bags".into(),
                Json::num(epoch.subset.live_len() as f64),
            ),
            (
                "worker_index".into(),
                Json::num(self.options.worker_index as f64),
            ),
            (
                "worker_count".into(),
                Json::num(self.options.worker_count as f64),
            ),
            (
                "uptime_s".into(),
                Json::num(self.started.elapsed().as_secs_f64()),
            ),
        ])
    }

    fn metrics_json(&self) -> Json {
        let epoch = self.epoch();
        Json::Obj(vec![
            ("role".into(), Json::str("worker")),
            (
                "accepted_total".into(),
                Json::num(self.metrics.accepted_total.get() as f64),
            ),
            (
                "completed_total".into(),
                Json::num(self.metrics.completed_total.get() as f64),
            ),
            (
                "read_error_total".into(),
                Json::num(self.metrics.read_error_total.get() as f64),
            ),
            (
                "closed_total".into(),
                Json::num(self.metrics.closed_total.get() as f64),
            ),
            (
                "shed_total".into(),
                Json::num(self.metrics.shed_total.get() as f64),
            ),
            (
                "deadline_shed_total".into(),
                Json::num(self.metrics.deadline_shed_total.get() as f64),
            ),
            (
                "worker".into(),
                Json::Obj(vec![
                    (
                        "generation".into(),
                        Json::num(epoch.subset.generation() as f64),
                    ),
                    (
                        "shards".into(),
                        Json::num(epoch.subset.shard_ids().len() as f64),
                    ),
                    (
                        "ranks_total".into(),
                        Json::num(self.ranks_total.get() as f64),
                    ),
                    (
                        "bound_seeded_total".into(),
                        Json::num(self.bound_seeded_total.get() as f64),
                    ),
                    (
                        "generation_rejects_total".into(),
                        Json::num(self.generation_rejects_total.get() as f64),
                    ),
                    (
                        "aggregator_rejects_total".into(),
                        Json::num(self.aggregator_rejects_total.get() as f64),
                    ),
                ]),
            ),
            ("rank".into(), milr_serve::metrics::rank_counters_json()),
            ("endpoints".into(), self.metrics.endpoints_json()),
        ])
    }

    fn route(&self, req: &Request) -> (&'static str, Action) {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/worker/rank") => ("/worker/rank", Action::Reply(self.handle_rank(req))),
            ("GET", "/healthz") => ("/healthz", Action::Reply(Reply::json(200, self.healthz()))),
            ("GET", "/metrics") => {
                let reply = if req.query_param("format") == Some("prometheus") {
                    let mut out = self.metrics.registry().render_prometheus();
                    out.push_str(&milr_obs::global().render_prometheus());
                    Reply::bytes(200, "text/plain; version=0.0.4", out.into_bytes())
                } else {
                    Reply::json(200, self.metrics_json())
                };
                ("/metrics", Action::Reply(reply))
            }
            ("POST", "/snapshot/reload") => {
                let reply = match self.reload() {
                    Ok((generation, shards)) => Reply::json(
                        200,
                        Json::Obj(vec![
                            ("generation".into(), Json::num(generation as f64)),
                            ("shards".into(), Json::num(shards as f64)),
                        ]),
                    ),
                    Err(err) => Reply::error(500, err.to_string()),
                };
                ("/snapshot/reload", Action::Reply(reply))
            }
            ("POST", "/admin/shutdown") => (
                "/admin/shutdown",
                Action::Shutdown(Reply::json(
                    200,
                    Json::Obj(vec![("status".into(), Json::str("draining"))]),
                )),
            ),
            _ => ("other", Action::Reply(Reply::error(404, "no such route"))),
        }
    }
}

/// A running worker daemon.
pub struct Worker {
    node: Node,
    daemon: Arc<WorkerDaemon>,
}

impl Worker {
    /// Loads the shard subset (streaming missing shards from the
    /// coordinator when joining) and starts serving.
    ///
    /// # Errors
    /// [`CoreError::Storage`] on snapshot problems, or the bind failure
    /// mapped through the same type.
    pub fn start(options: WorkerOptions) -> Result<Self, CoreError> {
        if options.worker_index >= options.worker_count {
            return Err(storage_err(
                &options.snapshot_dir,
                format!(
                    "worker index {} out of range for {} workers",
                    options.worker_index, options.worker_count
                ),
            ));
        }
        let epoch = WorkerDaemon::load_epoch(&options)?;
        let metrics = Arc::new(Metrics::default());
        metrics
            .snapshot_generation
            .set(epoch.subset.generation() as f64);
        metrics
            .snapshot_shards
            .set(epoch.subset.shard_ids().len() as f64);
        let registry = metrics.registry();
        let daemon = Arc::new(WorkerDaemon {
            ranks_total: registry.counter("milrd_worker_ranks_total"),
            bound_seeded_total: registry.counter("milrd_worker_bound_seeded_total"),
            generation_rejects_total: registry.counter("milrd_worker_generation_rejects_total"),
            aggregator_rejects_total: registry.counter("milrd_worker_aggregator_rejects_total"),
            epoch: Mutex::new(Arc::new(epoch)),
            metrics: Arc::clone(&metrics),
            options: options.clone(),
            started: Instant::now(),
        });
        let router = {
            let daemon = Arc::clone(&daemon);
            Box::new(move |req: &Request| daemon.route(req))
        };
        let node = Node::start(options.node.clone(), metrics, router)
            .map_err(|e| storage_err(&options.snapshot_dir, format!("bind: {e}")))?;
        Ok(Self { node, daemon })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.node.addr()
    }

    /// The node's connection/endpoint metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.daemon.metrics
    }

    /// The generation of the currently-loaded subset.
    pub fn generation(&self) -> u64 {
        self.daemon.epoch().subset.generation()
    }

    /// Shard ids this worker owns.
    pub fn shard_ids(&self) -> Vec<u64> {
        self.daemon.epoch().subset.shard_ids()
    }

    /// Flips the shutdown flag and unblocks the acceptor.
    pub fn request_shutdown(&self) {
        self.node.request_shutdown();
    }

    /// Blocks until the node has drained.
    pub fn wait(self) {
        self.node.wait();
    }
}

/// Streams the manifest plus this worker's assigned shard files from a
/// coordinator into `dir`. Only files that are missing locally are
/// fetched — sealed shards are immutable, and any stale or truncated
/// copy is caught when [`ShardSubset`] digest-verifies the directory
/// against the freshly-fetched manifest.
///
/// Returns the synced manifest summary.
///
/// # Errors
/// A description of any transport failure, non-200 response, or local
/// write failure.
pub fn sync_from_coordinator(
    coordinator: SocketAddr,
    dir: &Path,
    worker_index: usize,
    worker_count: usize,
    timeout: Duration,
) -> Result<ManifestSummary, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut conn = client::Connection::new(coordinator, timeout);
    let manifest = conn.get("/cluster/manifest")?;
    if manifest.status != 200 {
        return Err(format!(
            "coordinator answered {} for /cluster/manifest",
            manifest.status
        ));
    }
    let manifest_path = dir.join(milr_store::MANIFEST_FILE);
    std::fs::write(&manifest_path, &manifest.body)
        .map_err(|e| format!("write {}: {e}", manifest_path.display()))?;
    let summary = read_manifest(dir).map_err(|e| e.to_string())?;
    let assignment = assign_shards(
        &summary.shards.iter().map(|s| s.id).collect::<Vec<_>>(),
        worker_count,
    );
    let ids = assignment.get(worker_index).cloned().unwrap_or_default();
    for id in ids {
        let path = dir.join(shard_file_name(id));
        if path.is_file() {
            continue;
        }
        let response = conn.get(&format!("/cluster/shard/{id}"))?;
        if response.status != 200 {
            return Err(format!(
                "coordinator answered {} for shard {id}",
                response.status
            ));
        }
        std::fs::write(&path, &response.body)
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(summary)
}
