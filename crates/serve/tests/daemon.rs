//! End-to-end tests of the `milrd` daemon: a real subprocess (via
//! `CARGO_BIN_EXE_milrd`) on an ephemeral port, driven over real
//! sockets.
//!
//! The flagship assertion is *bit-identity*: rankings served over the
//! wire must equal an in-process [`QuerySession`] on the same snapshot
//! exactly — distances compared with `f64` equality, not tolerance —
//! which holds because training is deterministic and the JSON codec
//! prints `f64` with shortest-round-trip formatting.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use milr_baseline::feature_backend;
use milr_core::storage::Store;
use milr_core::{QuerySession, RankRequest, RetrievalConfig, RetrievalDatabase};
use milr_imgproc::{pnm, GrayImage, Rect};
use milr_mil::{Bag, BagAggregator};
use milr_serve::{base64, client, Json};

const TIMEOUT: Duration = Duration::from_secs(30);

/// Deterministic clustered test database: `images` bags of 3 instances,
/// category `i % 4` centred at its own point so DD training separates
/// them quickly.
fn test_database(images: usize, dim: usize) -> RetrievalDatabase {
    let mut state = 0x243F_6A88_85A3_08D3_u64;
    let mut noise = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u32 << 24) as f32 // in [0, 1)
    };
    let mut bags = Vec::new();
    let mut labels = Vec::new();
    for i in 0..images {
        let category = i % 4;
        let instances: Vec<Vec<f32>> = (0..3)
            .map(|_| {
                (0..dim)
                    .map(|d| {
                        let centre = if d % 4 == category { 2.0 } else { 0.0 };
                        centre + 0.3 * noise()
                    })
                    .collect()
            })
            .collect();
        bags.push(Bag::new(instances).expect("non-empty instances"));
        labels.push(category);
    }
    RetrievalDatabase::from_bags(bags, labels).expect("valid test database")
}

/// Writes the shared test snapshot (once per test binary run) and
/// returns its path.
fn snapshot_path(name: &str, images: usize) -> PathBuf {
    let dir = std::env::temp_dir().join("milrd_daemon_tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{name}_{}.milr", std::process::id()));
    Store::default()
        .save(&test_database(images, 16), &path)
        .expect("save test snapshot");
    path
}

/// A running `milrd` subprocess, killed on drop.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    /// Spawns `milrd --snapshot <snapshot> --addr 127.0.0.1:0 <extra>`
    /// and parses the bound address from its first stdout line.
    fn spawn(snapshot: &PathBuf, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_milrd"))
            .arg("--snapshot")
            .arg(snapshot)
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn milrd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read milrd banner");
        // "milrd listening on 127.0.0.1:PORT (...)"
        let addr = line
            .split_whitespace()
            .nth(3)
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"));
        Daemon { child, addr }
    }

    fn get(&self, target: &str) -> client::Response {
        client::get(self.addr, target, TIMEOUT).expect("GET")
    }

    fn post(&self, target: &str, body: &str) -> client::Response {
        client::request(self.addr, "POST", target, Some(body.as_bytes()), TIMEOUT).expect("POST")
    }

    /// Asks for a graceful drain and waits (bounded) for process exit.
    fn drain(mut self) {
        let response = self.post("/admin/shutdown", "");
        assert_eq!(response.status, 200);
        let deadline = Instant::now() + TIMEOUT;
        loop {
            if self.child.try_wait().expect("try_wait").is_some() {
                return;
            }
            assert!(Instant::now() < deadline, "milrd did not drain in time");
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Extracts `(index, distance)` pairs from a response's `ranking` field.
fn ranking_of(json: &Json) -> Vec<(usize, f64)> {
    json.get("ranking")
        .and_then(Json::as_array)
        .expect("ranking array")
        .iter()
        .map(|row| {
            (
                row.get("index").and_then(Json::as_u64).expect("index") as usize,
                row.get("distance")
                    .and_then(Json::as_f64)
                    .expect("distance"),
            )
        })
        .collect()
}

#[test]
fn healthz_reports_the_snapshot() {
    let snapshot = snapshot_path("health", 24);
    let daemon = Daemon::spawn(&snapshot, &[]);
    let response = daemon.get("/healthz");
    assert_eq!(response.status, 200);
    let json = response.json().unwrap();
    assert_eq!(json.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(json.get("images").unwrap().as_u64(), Some(24));
    assert_eq!(json.get("feature_dim").unwrap().as_u64(), Some(16));
    daemon.drain();
}

#[test]
fn multi_round_feedback_is_bit_identical_to_in_process() {
    let snapshot = snapshot_path("bitident", 24);
    let daemon = Daemon::spawn(&snapshot, &[]);

    // In-process reference: same snapshot file, same defaults as the
    // daemon (single-threaded — results are thread-count-invariant).
    let db = Arc::new(
        Store::default()
            .open::<RetrievalDatabase>(&snapshot)
            .unwrap(),
    );
    let config = Arc::new(RetrievalConfig {
        threads: 1,
        ..RetrievalConfig::default()
    });
    let pool: Vec<usize> = (0..db.len()).collect();
    let mut reference = QuerySession::builder(Arc::clone(&db))
        .config(Arc::clone(&config))
        .positives(vec![0, 4])
        .negatives(vec![1])
        .pool(pool.clone())
        .build()
        .unwrap();

    // Round 1: create the session, ask for the first page.
    let created = daemon.post("/sessions", r#"{"positives": [0, 4], "negatives": [1]}"#);
    assert_eq!(created.status, 201, "{:?}", created.body);
    let id = created.json().unwrap().get("id").unwrap().as_u64().unwrap();
    let page1 = daemon.post(&format!("/sessions/{id}/feedback"), r#"{"k": 12}"#);
    assert_eq!(page1.status, 200);
    reference.train_round().unwrap();
    let expected1 = reference.rank(&RankRequest::pool().top(12)).unwrap();
    assert_eq!(
        ranking_of(&page1.json().unwrap()),
        expected1,
        "round 1 must be bit-identical over the wire"
    );

    // Round 2: new marks on both sides, including a mind-change (index 4
    // positive -> negative).
    let page2 = daemon.post(
        &format!("/sessions/{id}/feedback"),
        r#"{"positives": [8], "negatives": [4, 2], "k": 12}"#,
    );
    assert_eq!(page2.status, 200);
    reference.add_positives(&[8]).unwrap();
    reference.add_negatives(&[4, 2]).unwrap();
    reference.train_round().unwrap();
    let expected2 = reference.rank(&RankRequest::pool().top(12)).unwrap();
    let json2 = page2.json().unwrap();
    assert_eq!(json2.get("round").unwrap().as_u64(), Some(2));
    assert_eq!(
        ranking_of(&json2),
        expected2,
        "round 2 must be bit-identical over the wire"
    );

    // Stateless /rank agrees with the same machinery.
    let rank = daemon.get("/rank?positives=0,4&negatives=1&k=12");
    assert_eq!(rank.status, 200);
    let concept = {
        let mut s = QuerySession::builder(Arc::clone(&db))
            .config(Arc::clone(&config))
            .positives(vec![0, 4])
            .negatives(vec![1])
            .pool(Vec::new())
            .build()
            .unwrap();
        s.train_round().unwrap();
        s.shared_concept().unwrap()
    };
    let via_db = db
        .rank(&concept, &RankRequest::all().top(12).threads(1))
        .unwrap();
    assert_eq!(ranking_of(&rank.json().unwrap()), via_db);

    daemon.drain();
}

#[test]
fn concurrent_rank_requests_all_succeed_and_hit_the_cache() {
    let snapshot = snapshot_path("concurrent", 32);
    let daemon = Daemon::spawn(&snapshot, &[]);

    // Warm the cache so the concurrent wave measures the hit path.
    let warm = daemon.get("/rank?positives=0,4&negatives=1&k=8");
    assert_eq!(warm.status, 200);
    assert_eq!(
        warm.json().unwrap().get("cache_hit").unwrap().as_bool(),
        Some(false)
    );

    let addr = daemon.addr;
    let clients: Vec<_> = (0..32)
        .map(|_| {
            std::thread::spawn(move || {
                // Same sets, different order: the canonical cache key
                // must make these identical.
                client::get(addr, "/rank?positives=4,0&negatives=1&k=8", TIMEOUT)
                    .expect("concurrent GET")
            })
        })
        .collect();
    let mut rankings = Vec::new();
    for handle in clients {
        let response = handle.join().expect("client thread");
        assert_eq!(response.status, 200, "no drops below the shed threshold");
        let json = response.json().unwrap();
        assert_eq!(json.get("cache_hit").unwrap().as_bool(), Some(true));
        rankings.push(ranking_of(&json));
    }
    assert!(rankings.windows(2).all(|w| w[0] == w[1]));

    let metrics = daemon.get("/metrics").json().unwrap();
    let cache = metrics.get("concept_cache").unwrap();
    assert!(
        cache.get("hits").unwrap().as_u64().unwrap() >= 32,
        "metrics must show the concept-cache hits"
    );
    assert_eq!(metrics.get("shed_total").unwrap().as_u64(), Some(0));
    daemon.drain();
}

#[test]
fn overload_sheds_with_503_not_timeouts() {
    let snapshot = snapshot_path("shed", 24);
    let daemon = Daemon::spawn(
        &snapshot,
        &["--workers", "1", "--queue-depth", "2", "--debug-endpoints"],
    );
    let addr = daemon.addr;

    // Pin the lone worker, then give it a moment to dequeue the sleeper.
    let sleeper =
        std::thread::spawn(move || client::get(addr, "/debug/sleep?ms=2000", TIMEOUT).unwrap());
    std::thread::sleep(Duration::from_millis(300));

    let flood: Vec<_> = (0..8)
        .map(|_| std::thread::spawn(move || client::get(addr, "/healthz", TIMEOUT).unwrap()))
        .collect();
    let statuses: Vec<u16> = flood
        .into_iter()
        .map(|h| h.join().expect("flood thread").status)
        .collect();
    assert!(
        statuses.iter().all(|&s| s == 200 || s == 503),
        "only 200 or 503 allowed, got {statuses:?}"
    );
    assert!(
        statuses.contains(&503),
        "queue depth 2 must shed some of 8 requests: {statuses:?}"
    );
    assert!(
        statuses.contains(&200),
        "queued requests must still be served: {statuses:?}"
    );
    assert_eq!(sleeper.join().expect("sleeper").status, 200);

    let metrics = daemon.get("/metrics").json().unwrap();
    assert!(metrics.get("shed_total").unwrap().as_u64().unwrap() >= 1);
    daemon.drain();
}

#[test]
fn overload_sheds_uncached_rank_but_serves_the_cached_one() {
    let snapshot = snapshot_path("priority_shed", 24);
    // Threshold = ceil(0.25 * 8) = 2 queued connections; the accept
    // queue itself (8) never fills, so plain shed_total stays 0 and any
    // 503 here is the priority path.
    let daemon = Daemon::spawn(
        &snapshot,
        &[
            "--workers",
            "1",
            "--queue-depth",
            "8",
            "--priority-shed-fill",
            "0.25",
            "--debug-endpoints",
        ],
    );
    let addr = daemon.addr;

    // Train the cacheable concept while the daemon is idle.
    let warm = daemon.get("/rank?positives=0,4&negatives=1&k=8");
    assert_eq!(warm.status, 200);
    let unloaded_page = ranking_of(&warm.json().unwrap());

    // Pin the lone worker, then park a queue: the two ranks go in first,
    // with filler requests behind them so the queue is still past the
    // threshold when the worker gets to each rank.
    let sleeper =
        std::thread::spawn(move || client::get(addr, "/debug/sleep?ms=2000", TIMEOUT).unwrap());
    std::thread::sleep(Duration::from_millis(300));
    let uncached =
        std::thread::spawn(move || client::get(addr, "/rank?positives=1,5&negatives=0", TIMEOUT));
    std::thread::sleep(Duration::from_millis(150));
    let cached = std::thread::spawn(move || {
        client::get(addr, "/rank?positives=0,4&negatives=1&k=8", TIMEOUT)
    });
    std::thread::sleep(Duration::from_millis(150));
    let fillers: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || client::get(addr, "/healthz", TIMEOUT).unwrap()))
        .collect();

    // The uncached rank would buy a DD training run — shed with 503.
    let response = uncached.join().expect("uncached thread").expect("response");
    assert_eq!(response.status, 503, "uncached rank must be shed first");
    assert!(
        String::from_utf8_lossy(&response.body).contains("shed"),
        "priority shed response must say so"
    );
    // The cached rank is one bounded scan — served, and bit-identical to
    // the unloaded page.
    let response = cached.join().expect("cached thread").expect("response");
    assert_eq!(response.status, 200, "cached rank must survive overload");
    let json = response.json().unwrap();
    assert_eq!(json.get("cache_hit").unwrap().as_bool(), Some(true));
    assert_eq!(ranking_of(&json), unloaded_page);
    for filler in fillers {
        assert_eq!(filler.join().expect("filler").status, 200);
    }
    assert_eq!(sleeper.join().expect("sleeper").status, 200);

    let metrics = daemon.get("/metrics").json().unwrap();
    assert!(
        metrics
            .get("priority_shed_total")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1,
        "priority shed must be counted"
    );
    assert_eq!(
        metrics.get("shed_total").unwrap().as_u64(),
        Some(0),
        "the accept queue never filled — every 503 is the priority path"
    );
    daemon.drain();
}

#[test]
fn protocol_violations_get_4xx_never_a_hang() {
    let snapshot = snapshot_path("protocol", 24);
    let daemon = Daemon::spawn(&snapshot, &["--max-body", "512"]);

    // Unknown route and method mismatch.
    assert_eq!(daemon.get("/nosuch").status, 404);
    assert_eq!(daemon.post("/healthz", "").status, 405);
    assert_eq!(daemon.get("/sessions/notanumber").status, 404);
    assert_eq!(daemon.get("/sessions/99").status, 404);

    // Malformed JSON bodies.
    assert_eq!(daemon.post("/sessions", "{not json").status, 400);
    assert_eq!(
        daemon.post("/sessions", r#"{"positives": "zero"}"#).status,
        400
    );
    // Valid JSON, invalid arguments.
    assert_eq!(
        daemon.post("/sessions", r#"{"negatives": [1]}"#).status,
        400
    );
    assert_eq!(
        daemon.post("/sessions", r#"{"positives": [9999]}"#).status,
        400
    );
    assert_eq!(
        daemon.get("/rank?positives=0&policy=frobnicate").status,
        400
    );
    assert_eq!(daemon.get("/rank?positives=abc").status, 400);
    assert_eq!(daemon.get("/rank?positives=").status, 400);

    // Declared body above the --max-body limit.
    let oversized = daemon.post("/sessions", &format!("{{\"x\": \"{}\"}}", "y".repeat(2048)));
    assert_eq!(oversized.status, 413);

    // Raw garbage instead of HTTP.
    let mut stream = TcpStream::connect(daemon.addr).unwrap();
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    assert!(
        String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 400"),
        "garbage must get 400, got {:?}",
        String::from_utf8_lossy(&raw)
    );

    // Truncated request: half a head, then EOF on the write side.
    let mut stream = TcpStream::connect(daemon.addr).unwrap();
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.1\r\nHost:").unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    assert!(
        String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 400"),
        "truncated head must get 400, got {:?}",
        String::from_utf8_lossy(&raw)
    );

    // The daemon survived all of it.
    assert_eq!(daemon.get("/healthz").status, 200);
    daemon.drain();
}

#[test]
fn sessions_expire_after_their_ttl() {
    let snapshot = snapshot_path("ttl", 24);
    let daemon = Daemon::spawn(&snapshot, &["--session-ttl-s", "1"]);
    let created = daemon.post("/sessions", r#"{"positives": [0]}"#);
    assert_eq!(created.status, 201);
    let id = created.json().unwrap().get("id").unwrap().as_u64().unwrap();
    assert_eq!(daemon.get(&format!("/sessions/{id}")).status, 200);
    std::thread::sleep(Duration::from_millis(1600));
    assert_eq!(
        daemon.get(&format!("/sessions/{id}")).status,
        404,
        "session must expire after its TTL"
    );
    let metrics = daemon.get("/metrics").json().unwrap();
    let sessions = metrics.get("sessions").unwrap();
    assert_eq!(sessions.get("expired_total").unwrap().as_u64(), Some(1));
    daemon.drain();
}

#[test]
fn session_crud_works_over_the_wire() {
    let snapshot = snapshot_path("crud", 24);
    let daemon = Daemon::spawn(&snapshot, &[]);
    let created = daemon.post("/sessions", r#"{"positives": [0, 4], "negatives": [1]}"#);
    assert_eq!(created.status, 201);
    let id = created.json().unwrap().get("id").unwrap().as_u64().unwrap();

    let info = daemon.get(&format!("/sessions/{id}")).json().unwrap();
    let positives: Vec<u64> = info
        .get("positives")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(Json::as_u64)
        .collect();
    assert_eq!(positives, vec![0, 4]);
    assert_eq!(info.get("rounds_run").unwrap().as_u64(), Some(0));

    let deleted = client::request(
        daemon.addr,
        "DELETE",
        &format!("/sessions/{id}"),
        None,
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(deleted.status, 200);
    assert_eq!(daemon.get(&format!("/sessions/{id}")).status, 404);
    daemon.drain();
}

#[test]
fn metrics_render_as_prometheus_text_on_request() {
    let snapshot = snapshot_path("prom", 24);
    let daemon = Daemon::spawn(&snapshot, &[]);
    // Generate some traffic so counters and latency series exist.
    assert_eq!(daemon.get("/healthz").status, 200);
    assert_eq!(
        daemon.get("/rank?positives=0,4&negatives=1&k=5").status,
        200
    );

    // Default shape stays JSON (back-compat for chaos/loadgen suites).
    let json = daemon.get("/metrics").json().unwrap();
    assert!(json.get("accepted_total").unwrap().as_u64().unwrap() >= 2);

    let prom = daemon.get("/metrics?format=prometheus");
    assert_eq!(prom.status, 200);
    let text = std::str::from_utf8(&prom.body).expect("prometheus body is UTF-8");
    assert!(text.parse::<f64>().is_err(), "text exposition, not JSON");
    assert!(
        text.contains("milrd_connections_total{outcome=\"accepted\"}"),
        "{text}"
    );
    assert!(
        text.contains("# TYPE milrd_request_latency_us histogram"),
        "{text}"
    );
    assert!(
        text.contains("milrd_request_latency_us_bucket{endpoint=\"/rank\",le=\""),
        "{text}"
    );
    // Engine metrics from the process-wide registry ride along: the /rank
    // request above trained a concept and ranked the pool.
    assert!(text.contains("milr_multistart_starts_total"), "{text}");
    assert!(text.contains("milr_rank_topk_latency_us"), "{text}");
    daemon.drain();
}

#[test]
fn trace_returns_recent_spans_as_json() {
    let snapshot = snapshot_path("trace", 24);
    let daemon = Daemon::spawn(&snapshot, &[]);
    assert_eq!(
        daemon.get("/rank?positives=0,4&negatives=1&k=5").status,
        200
    );
    let response = daemon.get("/trace?n=512");
    assert_eq!(response.status, 200);
    let spans = response
        .json()
        .unwrap()
        .get("spans")
        .and_then(Json::as_array)
        .expect("spans array")
        .to_vec();
    assert!(!spans.is_empty(), "the /rank request must have left spans");
    let names: Vec<String> = spans
        .iter()
        .map(|s| {
            s.get("name")
                .and_then(Json::as_str)
                .expect("name")
                .to_string()
        })
        .collect();
    assert!(names.iter().any(|n| n == "serve.request"), "{names:?}");
    assert!(names.iter().any(|n| n == "train.dd"), "{names:?}");
    assert!(
        spans
            .iter()
            .all(|s| s.get("dur_ns").and_then(Json::as_f64).is_some()),
        "every span carries a duration"
    );
    // The n cap is honoured.
    let capped = daemon.get("/trace?n=1").json().unwrap();
    assert!(capped.get("spans").and_then(Json::as_array).unwrap().len() <= 1);
    daemon.drain();
}

#[test]
fn sharded_snapshot_serves_bit_identically_to_monolithic() {
    // The same database, served once from a monolithic v2 file and once
    // from a sharded v3 directory: the wire rankings must be identical.
    let snapshot = snapshot_path("shardeq_mono", 24);
    let db = Store::default()
        .open::<RetrievalDatabase>(&snapshot)
        .unwrap();
    let dir = std::env::temp_dir()
        .join("milrd_daemon_tests")
        .join(format!("shardeq_v3_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut store = milr_store::ShardedDatabase::from_database(&db, &dir, 5).unwrap();
    store.flush().unwrap();
    assert!(store.shard_count() >= 4, "the e2e must cover >= 4 shards");

    let mono = Daemon::spawn(&snapshot, &[]);
    let sharded = Daemon::spawn(&dir, &[]);

    let health = sharded.get("/healthz").json().unwrap();
    assert_eq!(health.get("images").unwrap().as_u64(), Some(24));
    assert_eq!(health.get("shards").unwrap().as_u64(), Some(5));
    assert_eq!(health.get("generation").unwrap().as_u64(), Some(1));

    let target = "/rank?positives=0,4&negatives=1&k=12";
    let from_mono = ranking_of(&mono.get(target).json().unwrap());
    let from_sharded = ranking_of(&sharded.get(target).json().unwrap());
    assert_eq!(
        from_sharded, from_mono,
        "sharded serving must be bit-identical over the wire"
    );

    mono.drain();
    sharded.drain();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_reload_swaps_epochs_without_dropping_requests() {
    // The hot-reload contract: while clients hammer the daemon, the
    // snapshot is rewritten and reloaded live — every request (old epoch
    // or new) must succeed; zero errors, zero connection resets.
    let snapshot = snapshot_path("reload", 24);
    let daemon = Daemon::spawn(&snapshot, &[]);

    let before = daemon.get("/healthz").json().unwrap();
    assert_eq!(before.get("images").unwrap().as_u64(), Some(24));
    assert_eq!(before.get("generation").unwrap().as_u64(), Some(0));

    // Reloading is refused gracefully mid-flood? No — milrd always has a
    // snapshot path, so reload is enabled; flood while swapping.
    let addr = daemon.addr;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut completed = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let health = client::get(addr, "/healthz", TIMEOUT)
                        .expect("no connection may be reset during reload");
                    assert_eq!(health.status, 200, "no errors during reload");
                    let rank = client::get(addr, "/rank?positives=0,4&negatives=1&k=6", TIMEOUT)
                        .expect("no connection may be reset during reload");
                    assert_eq!(rank.status, 200, "no errors during reload");
                    completed += 2;
                }
                completed
            })
        })
        .collect();

    // Swap the snapshot under the daemon several times: grow it to 32
    // images, then 40, reloading after each rewrite.
    for (round, images) in [(1u64, 32usize), (2, 40)] {
        std::thread::sleep(Duration::from_millis(150));
        Store::default()
            .save(&test_database(images, 16), &snapshot)
            .expect("rewrite snapshot");
        let reload = daemon.post("/snapshot/reload", "");
        assert_eq!(reload.status, 200, "{:?}", reload.body);
        let json = reload.json().unwrap();
        assert_eq!(json.get("images").unwrap().as_u64(), Some(images as u64));
        assert_eq!(json.get("generation").unwrap().as_u64(), Some(round));
    }
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = clients
        .into_iter()
        .map(|h| h.join().expect("no client thread may panic"))
        .sum();
    assert!(total > 0, "the flood must have exercised the daemon");

    // The new epoch serves, and the books balance: every accepted
    // connection was completed (no read errors, closes, or sheds).
    let after = daemon.get("/healthz").json().unwrap();
    assert_eq!(after.get("images").unwrap().as_u64(), Some(40));
    assert_eq!(after.get("generation").unwrap().as_u64(), Some(2));
    let metrics = daemon.get("/metrics").json().unwrap();
    assert_eq!(metrics.get("read_error_total").unwrap().as_u64(), Some(0));
    assert_eq!(metrics.get("shed_total").unwrap().as_u64(), Some(0));
    assert_eq!(
        metrics.get("deadline_shed_total").unwrap().as_u64(),
        Some(0)
    );
    daemon.drain();
}

#[test]
fn snapshot_watcher_reloads_automatically() {
    let snapshot = snapshot_path("watch", 24);
    let daemon = Daemon::spawn(
        &snapshot,
        &["--watch-snapshot", "--watch-interval-ms", "50"],
    );
    assert_eq!(
        daemon
            .get("/healthz")
            .json()
            .unwrap()
            .get("images")
            .unwrap()
            .as_u64(),
        Some(24)
    );
    // Rewrite the snapshot; the watcher must pick it up by itself.
    std::thread::sleep(Duration::from_millis(120));
    Store::default()
        .save(&test_database(32, 16), &snapshot)
        .expect("rewrite snapshot");
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let health = daemon.get("/healthz").json().unwrap();
        if health.get("images").unwrap().as_u64() == Some(32) {
            assert!(health.get("generation").unwrap().as_u64().unwrap() >= 1);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watcher never reloaded the snapshot"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    daemon.drain();
}

#[test]
fn keepalive_connection_is_bit_identical_to_fresh_connections_across_reload() {
    // One keep-alive connection interleaving cache misses (train) and
    // cache hits must see exactly the pages a fresh connection sees —
    // before, during, and after a live snapshot reload — without ever
    // redialling.
    let snapshot = snapshot_path("keepalive_identity", 24);
    let daemon = Daemon::spawn(&snapshot, &[]);
    let t0 = "/rank?positives=0,4&negatives=1&k=12";
    let t1 = "/rank?positives=1,5&negatives=2&k=12";
    let t2 = "/rank?positives=2,6&negatives=3&k=12";

    let mut conn = client::Connection::new(daemon.addr, TIMEOUT);
    // Misses first on the keep-alive socket: t0/t1 train here, then the
    // fresh one-shot connections must reproduce them from the cache.
    let ka_t0 = {
        let (response, _) = conn.get_with_info(t0).expect("keep-alive rank");
        assert_eq!(response.status, 200);
        ranking_of(&response.json().unwrap())
    };
    let ka_t1 = {
        let (response, _) = conn.get_with_info(t1).expect("keep-alive rank");
        assert_eq!(response.status, 200);
        ranking_of(&response.json().unwrap())
    };
    assert_eq!(
        ranking_of(&daemon.get(t0).json().unwrap()),
        ka_t0,
        "fresh connection must reproduce the keep-alive-trained page"
    );
    assert_eq!(
        ranking_of(&daemon.get(t1).json().unwrap()),
        ka_t1,
        "fresh connection must reproduce the keep-alive-trained page"
    );
    // Miss on a fresh connection, hit on the keep-alive socket: the
    // other direction of the same identity.
    let fresh_t2 = ranking_of(&daemon.get(t2).json().unwrap());
    let (response, _) = conn.get_with_info(t2).expect("keep-alive rank");
    assert_eq!(response.status, 200);
    let body = response.json().unwrap();
    assert_eq!(body.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(ranking_of(&body), fresh_t2);
    assert_eq!(conn.dials(), 1, "an idle daemon must keep the socket open");

    // Live reload through the same keep-alive socket; the connection
    // survives and serves the new epoch bit-identically to a fresh one.
    Store::default()
        .save(&test_database(32, 16), &snapshot)
        .expect("rewrite snapshot");
    let (reload, _) = conn
        .request_with_info("POST", "/snapshot/reload", None)
        .expect("reload over keep-alive");
    assert_eq!(reload.status, 200, "{:?}", reload.body);
    assert_eq!(
        reload.json().unwrap().get("images").and_then(Json::as_u64),
        Some(32)
    );
    let (after, _) = conn.get_with_info(t0).expect("rank on the new epoch");
    assert_eq!(after.status, 200);
    let ka_after = ranking_of(&after.json().unwrap());
    assert_eq!(
        ranking_of(&daemon.get(t0).json().unwrap()),
        ka_after,
        "new-epoch pages must match across connection styles"
    );
    assert_ne!(
        ka_after, ka_t0,
        "the reload must actually have swapped epochs"
    );
    assert_eq!(
        conn.dials(),
        1,
        "cached and uncached ranks, a reload, and an epoch swap must all \
         ride one TCP connection"
    );

    let metrics = daemon.get("/metrics").json().unwrap();
    let reused = metrics
        .get("keepalive_reused_total")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(
        reused >= 4,
        "reuse counter must reflect the shared socket: {reused}"
    );
    daemon.drain();
}

#[test]
fn mixed_aggregators_on_one_keepalive_socket_never_cross_contaminate() {
    // The batcher keys pending ranks on (generation, aggregator): a
    // keep-alive socket interleaving min-distance and logsumexp
    // requests — and a concurrent wave racing both folds — must always
    // get each aggregator's own page, bit for bit.
    const MIN: &str = "/rank?positives=0,4&negatives=1&k=12";
    const LSE: &str = "/rank?positives=0,4&negatives=1&k=12&aggregator=logsumexp";
    let snapshot = snapshot_path("mixed_agg", 24);
    let daemon = Daemon::spawn(&snapshot, &[]);

    // Fresh-connection references, one per aggregator.
    let min_page = ranking_of(&daemon.get(MIN).json().unwrap());
    let lse_body = daemon.get(LSE).json().unwrap();
    assert_eq!(
        lse_body.get("aggregator").and_then(Json::as_str),
        Some("logsumexp"),
        "{}",
        lse_body.dump()
    );
    let lse_page = ranking_of(&lse_body);
    assert_ne!(
        min_page, lse_page,
        "multi-instance bags must fold to different distances"
    );

    // Interleave the folds on one keep-alive socket, never redialling.
    let mut conn = client::Connection::new(daemon.addr, TIMEOUT);
    for turn in 0..6 {
        let (target, expected, label) = if turn % 2 == 0 {
            (MIN, &min_page, "min-distance")
        } else {
            (LSE, &lse_page, "logsumexp")
        };
        let (response, _) = conn.get_with_info(target).expect("keep-alive rank");
        assert_eq!(response.status, 200, "turn {turn}");
        let json = response.json().unwrap();
        assert_eq!(
            json.get("aggregator").and_then(Json::as_str),
            Some(label),
            "turn {turn} echoed the wrong aggregator: {}",
            json.dump()
        );
        assert_eq!(
            &ranking_of(&json),
            expected,
            "turn {turn}: the {label} page was contaminated by the other fold"
        );
    }
    assert_eq!(conn.dials(), 1, "the interleaving must ride one socket");

    // A concurrent wave racing both folds through the shared cache and
    // rank batcher: every response matches its own reference exactly.
    let addr = daemon.addr;
    let wave: Vec<_> = (0..16)
        .map(|i| {
            std::thread::spawn(move || {
                let target = if i % 2 == 0 { MIN } else { LSE };
                (i, client::get(addr, target, TIMEOUT).expect("wave GET"))
            })
        })
        .collect();
    for handle in wave {
        let (i, response) = handle.join().expect("wave thread");
        assert_eq!(response.status, 200, "request {i}");
        let expected = if i % 2 == 0 { &min_page } else { &lse_page };
        assert_eq!(
            &ranking_of(&response.json().unwrap()),
            expected,
            "concurrent request {i} mixed folds"
        );
    }
    daemon.drain();
}

/// Deterministic striped gray image for the region e2e: category
/// `index % 4` picks the stripe direction and pitch. Pixels are
/// integer-valued so the 8-bit PGM upload round-trips bit-exactly —
/// the daemon featurises exactly the image the test featurises.
fn test_image(index: usize) -> GrayImage {
    let category = index % 4;
    GrayImage::from_fn(24, 18, |x, y| {
        ((x * (3 + 2 * category) + y * (11 - 2 * category) + 17 * index) * 13 % 256) as f32
    })
    .expect("valid dimensions")
}

/// Encodes a gray image as the wire's base64 binary PGM.
fn pgm_b64(image: &GrayImage) -> String {
    let mut bytes = Vec::new();
    pnm::write_pgm(image, &mut bytes).expect("encode PGM");
    base64::encode(&bytes)
}

#[test]
fn region_rank_and_feedback_rounds_are_bit_identical_over_the_wire() {
    // The Luo & Nascimento sub-image scenario end to end: a region of
    // interest uploaded as base64 PGM, featurised by the snapshot's
    // backend, trained, ranked under a non-default aggregator — then
    // refined over feedback rounds carrying further region uploads.
    // Every page must equal an in-process session on the same snapshot
    // bit for bit.
    let config = RetrievalConfig {
        threads: 1,
        ..RetrievalConfig::default()
    };
    let backend = feature_backend("gray-block").expect("registry lists gray-block");
    let images: Vec<GrayImage> = (0..16).map(test_image).collect();
    let bags: Vec<Bag> = images
        .iter()
        .map(|image| backend.gray_bag(image, &config).expect("featurise"))
        .collect();
    let labels: Vec<usize> = (0..images.len()).map(|i| i % 4).collect();
    let dir = std::env::temp_dir().join("milrd_daemon_tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let snapshot = dir.join(format!("region_{}.milr", std::process::id()));
    Store::default()
        .save(
            &RetrievalDatabase::from_bags(bags, labels).expect("valid corpus"),
            &snapshot,
        )
        .expect("save region snapshot");
    let daemon = Daemon::spawn(&snapshot, &[]);

    let db = Arc::new(
        Store::default()
            .open::<RetrievalDatabase>(&snapshot)
            .unwrap(),
    );
    let config = Arc::new(config);
    let pool: Vec<usize> = (0..db.len()).collect();

    // The query region: a centred crop of image 0, cropped *before*
    // featurisation on both sides of the wire.
    let roi = Rect::new(4, 3, 16, 12);
    let roi_json = r#"{"x": 4, "y": 3, "width": 16, "height": 12}"#;
    let query_pgm = pgm_b64(&images[0]);
    let query_bag = backend
        .gray_bag(&images[0].crop(roi).expect("roi fits"), &config)
        .expect("featurise region");

    // Stateless POST /rank under logsumexp, vs the in-process session.
    let (expected_page, expected_nldd) = {
        let mut session = QuerySession::builder(Arc::clone(&db))
            .config(Arc::clone(&config))
            .positives(Vec::new())
            .negatives(vec![1, 2, 3])
            .pool(pool.clone())
            .build()
            .unwrap();
        session.add_positive_bag(query_bag.clone()).unwrap();
        session.train_round().unwrap();
        let page = session
            .rank(
                &RankRequest::pool()
                    .top(10)
                    .aggregator(BagAggregator::LogSumExp),
            )
            .unwrap();
        (page, session.nldd())
    };
    let body = format!(
        r#"{{"image_pgm": "{query_pgm}", "roi": {roi_json}, "negatives": [1, 2, 3], "k": 10, "aggregator": "logsumexp"}}"#
    );
    let response = daemon.post("/rank", &body);
    assert_eq!(
        response.status,
        200,
        "{}",
        String::from_utf8_lossy(&response.body)
    );
    let json = response.json().unwrap();
    assert_eq!(
        json.get("aggregator").and_then(Json::as_str),
        Some("logsumexp")
    );
    assert_eq!(
        json.get("backend").and_then(Json::as_str),
        Some("gray-block"),
        "the response must name the snapshot's backend: {}",
        json.dump()
    );
    assert_eq!(
        ranking_of(&json),
        expected_page,
        "the region page must be bit-identical over the wire"
    );
    assert_eq!(
        json.get("nldd").and_then(Json::as_f64).unwrap().to_bits(),
        expected_nldd.to_bits(),
        "the trained concept must be bit-identical over the wire"
    );

    // Malformed region queries are client errors, not daemon faults.
    assert_eq!(daemon.post("/rank", r#"{"k": 5}"#).status, 400);
    let bad_roi = format!(
        r#"{{"image_pgm": "{query_pgm}", "roi": {{"x": 16, "y": 12, "width": 16, "height": 12}}}}"#
    );
    assert_eq!(daemon.post("/rank", &bad_roi).status, 400);
    let bad_agg = format!(r#"{{"image_pgm": "{query_pgm}", "aggregator": "softmax"}}"#);
    assert_eq!(daemon.post("/rank", &bad_agg).status, 400);

    // Feedback rounds over the wire: a session created from the same
    // region. The daemon warm-starts sessions by default, so the
    // reference session must too.
    let created = daemon.post(
        "/sessions",
        &format!(
            r#"{{"positive_regions": [{{"image_pgm": "{query_pgm}", "roi": {roi_json}}}], "negatives": [1, 2, 3]}}"#
        ),
    );
    assert_eq!(
        created.status,
        201,
        "{}",
        String::from_utf8_lossy(&created.body)
    );
    let id = created.json().unwrap().get("id").unwrap().as_u64().unwrap();

    let mut reference = QuerySession::builder(Arc::clone(&db))
        .config(Arc::clone(&config))
        .positives(Vec::new())
        .negatives(vec![1, 2, 3])
        .pool(pool)
        .warm_start(true)
        .build()
        .unwrap();
    reference.add_positive_bag(query_bag).unwrap();

    // Round 1: cold — a session holding an external bag has no index
    // identity, so it trains for itself.
    let page1 = daemon.post(&format!("/sessions/{id}/feedback"), r#"{"k": 10}"#);
    assert_eq!(
        page1.status,
        200,
        "{}",
        String::from_utf8_lossy(&page1.body)
    );
    reference.train_round().unwrap();
    let expected1 = reference.rank(&RankRequest::pool().top(10)).unwrap();
    let json1 = page1.json().unwrap();
    assert_eq!(json1.get("warm").and_then(Json::as_bool), Some(false));
    assert_eq!(
        ranking_of(&json1),
        expected1,
        "feedback round 1 must be bit-identical over the wire"
    );

    // Round 2: an index mark plus another region upload (whole image 5
    // as a negative), page requested under logsumexp — warm retrain.
    let extra_pgm = pgm_b64(&images[5]);
    let page2 = daemon.post(
        &format!("/sessions/{id}/feedback"),
        &format!(
            r#"{{"negatives": [7], "negative_regions": [{{"image_pgm": "{extra_pgm}"}}], "k": 10, "aggregator": "logsumexp"}}"#
        ),
    );
    assert_eq!(
        page2.status,
        200,
        "{}",
        String::from_utf8_lossy(&page2.body)
    );
    reference.add_negatives(&[7]).unwrap();
    reference
        .add_negative_bag(backend.gray_bag(&images[5], &config).unwrap())
        .unwrap();
    reference.train_round().unwrap();
    let expected2 = reference
        .rank(
            &RankRequest::pool()
                .top(10)
                .aggregator(BagAggregator::LogSumExp),
        )
        .unwrap();
    let json2 = page2.json().unwrap();
    assert_eq!(json2.get("round").and_then(Json::as_u64), Some(2));
    assert_eq!(json2.get("warm").and_then(Json::as_bool), Some(true));
    assert_eq!(
        json2.get("aggregator").and_then(Json::as_str),
        Some("logsumexp")
    );
    assert_eq!(
        ranking_of(&json2),
        expected2,
        "feedback round 2 must be bit-identical over the wire"
    );
    daemon.drain();
}

#[test]
fn pipelined_requests_get_ordered_responses_on_one_socket() {
    // Three requests written in one burst before reading anything:
    // HTTP/1.1 pipelining. The daemon must answer all three, in order,
    // on the same socket.
    let snapshot = snapshot_path("pipeline", 24);
    let daemon = Daemon::spawn(&snapshot, &[]);
    let request =
        |target: &str| format!("GET {target} HTTP/1.1\r\nHost: milrd\r\nContent-Length: 0\r\n\r\n");
    let burst = format!(
        "{}{}{}",
        request("/healthz"),
        request("/rank?positives=0,4&negatives=1&k=6"),
        request("/healthz"),
    );

    let mut stream = TcpStream::connect(daemon.addr).expect("connect");
    stream
        .set_read_timeout(Some(TIMEOUT))
        .expect("read timeout");
    stream.write_all(burst.as_bytes()).expect("write burst");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .expect("read all responses");
    let text = String::from_utf8_lossy(&response);

    assert_eq!(
        text.matches("HTTP/1.1 200").count(),
        3,
        "all three pipelined requests must be answered: {text}"
    );
    let first_health = text.find("\"images\"").expect("first healthz body");
    let ranking = text.find("\"ranking\"").expect("rank body");
    let last_health = text.rfind("\"images\"").expect("second healthz body");
    assert!(
        first_health < ranking && ranking < last_health,
        "responses must come back in request order"
    );
    daemon.drain();
}
