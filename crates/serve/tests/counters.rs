//! Exact-delta pins for the traffic-shaping observability counters:
//! keep-alive socket reuse, rank batch formation, and the warm-start
//! training economics.
//!
//! These live in their own integration binary (the
//! `crates/store/tests/counters.rs` idiom) so no unrelated test bumps
//! the same counters concurrently and every assertion can be an exact
//! `==`, not a `>=`. The keep-alive and batch counters come from each
//! daemon's private registry (scraped over `/metrics`), so one
//! in-process server per test isolates them; the warm-training counters
//! are process-global (`milr_obs::global()`), which is exactly why the
//! warm test is the only test in this binary that trains warm.

use std::sync::Arc;
use std::time::Duration;

use milr_core::{QuerySession, RetrievalConfig, RetrievalDatabase};
use milr_mil::Bag;
use milr_serve::{client, Json, ServeOptions, Server};

const TIMEOUT: Duration = Duration::from_secs(30);

/// Deterministic clustered database: `images` bags of 3 instances,
/// category `i % 4` centred at its own point (the daemon test fixture).
fn test_database(images: usize, dim: usize) -> RetrievalDatabase {
    let mut state = 0x243F_6A88_85A3_08D3_u64;
    let mut noise = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u32 << 24) as f32 // in [0, 1)
    };
    let mut bags = Vec::new();
    let mut labels = Vec::new();
    for i in 0..images {
        let category = i % 4;
        let instances: Vec<Vec<f32>> = (0..3)
            .map(|_| {
                (0..dim)
                    .map(|d| {
                        let centre = if d % 4 == category { 2.0 } else { 0.0 };
                        centre + 0.3 * noise()
                    })
                    .collect()
            })
            .collect();
        bags.push(Bag::new(instances).expect("non-empty instances"));
        labels.push(category);
    }
    RetrievalDatabase::from_bags(bags, labels).expect("valid test database")
}

fn start_server() -> Server {
    let options = ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeOptions::default()
    };
    Server::start(test_database(16, 8), options).expect("start in-process daemon")
}

/// One-shot `/metrics` scrape on a fresh connection. The scrape itself
/// is the connection's first (and only) request, so it never bumps the
/// reuse counter it is reading.
fn metrics(addr: std::net::SocketAddr) -> Json {
    let response = client::get(addr, "/metrics", TIMEOUT).expect("GET /metrics");
    assert_eq!(response.status, 200);
    response.json().expect("metrics JSON")
}

fn num(json: &Json, path: &[&str]) -> f64 {
    let mut node = json;
    for key in path {
        node = node
            .get(key)
            .unwrap_or_else(|| panic!("metrics key {path:?} missing at {key}"));
    }
    node.as_f64()
        .unwrap_or_else(|| panic!("{path:?} not a number"))
}

/// N requests on one keep-alive socket are exactly N − 1 reuses: the
/// first request dials, every further one rides the same connection,
/// and a one-shot scrape adds nothing.
#[test]
fn keepalive_reuse_counter_is_exactly_requests_minus_dials() {
    let server = start_server();
    let addr = server.local_addr();

    let mut conn = client::Connection::new(addr, TIMEOUT);
    for _ in 0..5 {
        let (response, _) = conn
            .request_with_info("GET", "/healthz", None)
            .expect("keep-alive GET /healthz");
        assert_eq!(response.status, 200);
    }
    assert_eq!(conn.dials(), 1, "an idle daemon never forces a re-dial");

    let scraped = metrics(addr);
    assert_eq!(num(&scraped, &["keepalive_reused_total"]), 4.0);

    server.shutdown();
}

/// Sequential `/rank` requests each form a batch of exactly one query —
/// cache hits included, since hits still rank through the batcher. The
/// size histogram must agree: max 1, mean 1.
#[test]
fn each_sequential_rank_forms_exactly_one_batch_of_one() {
    let server = start_server();
    let addr = server.local_addr();

    for expected_hit in [false, true] {
        let response =
            client::get(addr, "/rank?positives=0&negatives=1&k=4", TIMEOUT).expect("GET /rank");
        assert_eq!(response.status, 200);
        let body = response.json().expect("rank JSON");
        assert_eq!(
            body.get("cache_hit").and_then(Json::as_bool),
            Some(expected_hit),
            "second identical rank must be served from the concept cache"
        );
    }

    let scraped = metrics(addr);
    assert_eq!(num(&scraped, &["batch", "formed_total"]), 2.0);
    assert_eq!(num(&scraped, &["batch", "size_max"]), 1.0);
    assert_eq!(num(&scraped, &["batch", "size_mean"]), 1.0);

    server.shutdown();
}

/// Pins the warm-start economics to the trainer's exact formula: each
/// warm round adds one to `warm_starts_total` and saves
/// `(instances of all positive bags) − (instances of newly-marked bags
/// + the 1 warm seed)` ascents relative to a cold round.
#[test]
fn warm_training_counters_pin_the_exact_ascent_savings() {
    let counter = |name: &str| milr_obs::global().counter(name).get();
    let starts_before = counter("milr_train_warm_starts_total");
    let saved_before = counter("milr_train_warm_rounds_saved_total");

    let db = Arc::new(test_database(16, 8));
    let instances = |bag: usize| db.bag(bag).expect("bag").instances().count();
    let config = Arc::new(RetrievalConfig {
        threads: 1,
        ..RetrievalConfig::default()
    });
    let pool: Vec<usize> = (0..db.len()).collect();
    let mut session = QuerySession::builder(Arc::clone(&db))
        .config(config)
        .positives(vec![0, 4])
        .negatives(vec![1])
        .pool(pool)
        .warm_start(true)
        .build()
        .expect("build session");

    // Round 1 is cold — no solver vector exists to warm from yet.
    assert!(!session.warm_ready());
    session.train_round().expect("cold round");
    assert_eq!(counter("milr_train_warm_starts_total"), starts_before);
    assert_eq!(counter("milr_train_warm_rounds_saved_total"), saved_before);

    // Rounds 2 and 3 each mark one new positive and train warm.
    let mut expected_saved = 0;
    let mut positive_instances = instances(0) + instances(4);
    for (round, mark) in [(2, 8), (3, 12)] {
        session.add_positives(&[mark]).expect("mark positive");
        positive_instances += instances(mark);
        assert!(session.warm_ready(), "round {round} should be warm");
        session.train_round().expect("warm round");
        // Cold would ascend from every positive instance; warm ascends
        // from the new bag's instances plus the single warm seed.
        expected_saved += positive_instances - (instances(mark) + 1);
        assert_eq!(
            counter("milr_train_warm_starts_total"),
            starts_before + (round - 1),
            "one warm start per warm round"
        );
        assert_eq!(
            counter("milr_train_warm_rounds_saved_total"),
            saved_before + expected_saved as u64,
            "ascents saved must match the trainer's formula exactly"
        );
    }
}
