#![warn(missing_docs)]

//! # milr-serve
//!
//! `milrd`, the concurrent retrieval daemon: a multi-threaded HTTP/1.1
//! server (hand-rolled over [`std::net::TcpListener`] — no external
//! dependencies) exposing the Diverse Density retrieval engine of
//! `milr-core` as a session-based relevance-feedback service.
//!
//! * [`server::Server`] — accept loop, bounded worker pool with
//!   load shedding, routing, graceful drain.
//! * [`sessions`] — TTL/capacity-bounded store of live feedback
//!   sessions.
//! * [`cache`] — LRU concept cache: deterministic training means equal
//!   example sets under one policy share one concept.
//! * [`http`] / [`json`] / [`base64`] — minimal wire codecs.
//! * [`metrics`] — per-endpoint counters and latency histograms on the
//!   unified `milr-obs` registry, behind `GET /metrics`.
//! * [`client`] — the blocking client used by tests and `loadgen`.
//!
//! The protocol (all responses JSON unless noted, one request per
//! connection):
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness + snapshot summary |
//! | `GET /metrics` | counters, histograms, cache and session stats |
//! | `GET /metrics?format=prometheus` | the same registry in Prometheus text exposition format |
//! | `GET /trace?n=256` | the most recent spans across all threads, as JSON |
//! | `GET /rank?positives=1,2&negatives=7&k=10` | stateless one-shot ranking (`&aggregator=LABEL` picks the bag fold) |
//! | `POST /rank` | stateless sub-image query: base64 PGM + region of interest, cropped and featurised server-side |
//! | `POST /sessions` | create a feedback session (indices, base64 PGM uploads, and/or region uploads) |
//! | `GET /sessions/{id}` | session state |
//! | `POST /sessions/{id}/feedback` | add marks, retrain, return next page |
//! | `DELETE /sessions/{id}` | drop a session |
//! | `POST /admin/shutdown` | graceful drain |

pub mod base64;
pub mod batch;
pub mod cache;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod sessions;

pub use json::Json;
pub use server::{parse_policy, ServeOptions, Server};
