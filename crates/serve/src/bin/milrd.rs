//! `milrd` — the retrieval daemon.
//!
//! ```text
//! milrd --snapshot db.milr [--addr 127.0.0.1:7878] [--workers N]
//!       [--queue-depth N] [--read-timeout-ms N] [--handle-deadline-ms N]
//!       [--max-body BYTES] [--cache-capacity N] [--session-ttl-s N]
//!       [--session-capacity N] [--page K] [--policy POLICY]
//!       [--watch-snapshot] [--watch-interval-ms N]
//!       [--debug-endpoints] [--drain-on-stdin-eof]
//! ```
//!
//! Loads a snapshot — a monolithic `.milr` file (see `milr preprocess`)
//! or a sharded v3 directory (see `milr shard`) — binds, prints one
//! `milrd listening on ADDR ...` line to stdout (port `0` resolves to
//! the ephemeral port — test harnesses parse this line), and serves
//! until `POST /admin/shutdown` or, with `--drain-on-stdin-eof`, until
//! stdin closes. `POST /snapshot/reload` (or `--watch-snapshot`) swaps
//! in a rewritten snapshot without dropping a single request.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use milr_serve::server::parse_policy;
use milr_serve::{ServeOptions, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         milrd --snapshot DB.milr|SHARD_DIR [--addr HOST:PORT] [--workers N]\n        \
         [--queue-depth N] [--read-timeout-ms N] [--handle-deadline-ms N]\n        \
         [--keepalive-requests N] [--keepalive-burst N] [--keepalive-turn-ms N]\n        \
         [--idle-timeout-ms N] [--priority-shed-fill F]\n        \
         [--warm-train true|false]\n        \
         [--max-body BYTES] [--cache-capacity N] [--session-ttl-s N]\n        \
         [--session-capacity N] [--page K] [--policy POLICY]\n        \
         [--backend gray-block|sbn] [--watch-snapshot] [--watch-interval-ms N]\n        \
         [--debug-endpoints] [--drain-on-stdin-eof]\n\n\
         POLICY: original | identical | alpha:A | constraint:B\n\
         --backend: refuse a snapshot preprocessed with any other feature backend"
    );
}

/// Minimal `--key value` argument scanner (the `milr` CLI idiom).
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn switch(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match flag(args, name) {
        None => Ok(None),
        Some(text) => text
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("invalid value {text:?} for {name}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let snapshot = flag(args, "--snapshot").ok_or("--snapshot is required")?;
    let mut options = ServeOptions::default();
    if let Some(addr) = flag(args, "--addr") {
        options.addr = addr;
    }
    if let Some(workers) = parse_flag(args, "--workers")? {
        options.workers = workers;
    }
    if let Some(depth) = parse_flag(args, "--queue-depth")? {
        options.queue_depth = depth;
    }
    if let Some(ms) = parse_flag(args, "--read-timeout-ms")? {
        options.read_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = parse_flag(args, "--handle-deadline-ms")? {
        options.handle_deadline = Duration::from_millis(ms);
    }
    if let Some(n) = parse_flag(args, "--keepalive-requests")? {
        options.keepalive_requests = n;
    }
    if let Some(n) = parse_flag(args, "--keepalive-burst")? {
        options.keepalive_burst = n;
    }
    if let Some(ms) = parse_flag(args, "--keepalive-turn-ms")? {
        options.keepalive_turn = Duration::from_millis(ms);
    }
    if let Some(ms) = parse_flag(args, "--idle-timeout-ms")? {
        options.idle_timeout = Duration::from_millis(ms);
    }
    if let Some(fill) = parse_flag(args, "--priority-shed-fill")? {
        options.priority_shed_fill = fill;
    }
    if let Some(warm) = parse_flag(args, "--warm-train")? {
        options.warm_train = warm;
    }
    if let Some(bytes) = parse_flag(args, "--max-body")? {
        options.max_body = bytes;
    }
    if let Some(capacity) = parse_flag(args, "--cache-capacity")? {
        options.cache_capacity = capacity;
    }
    if let Some(secs) = parse_flag(args, "--session-ttl-s")? {
        options.session_ttl = Duration::from_secs(secs);
    }
    if let Some(capacity) = parse_flag(args, "--session-capacity")? {
        options.session_capacity = capacity;
    }
    if let Some(page) = parse_flag(args, "--page")? {
        options.default_page = page;
    }
    if let Some(spec) = flag(args, "--policy") {
        options.retrieval.policy = parse_policy(&spec)?;
    }
    options.backend = flag(args, "--backend");
    options.debug_endpoints = switch(args, "--debug-endpoints");
    options.watch_snapshot = switch(args, "--watch-snapshot");
    if let Some(ms) = parse_flag(args, "--watch-interval-ms")? {
        options.watch_interval = Duration::from_millis(ms);
    }

    // One solver/ranker thread per request: the daemon's parallelism is
    // across requests, not within them (results are identical either
    // way — a PR 1 invariant).
    options.retrieval.threads = 1;

    let loaded = match options.backend.as_deref() {
        Some(expected) => {
            milr_store::load_snapshot_expecting(&snapshot, expected).map_err(|e| e.to_string())?
        }
        None => milr_store::load_snapshot(&snapshot).map_err(|e| e.to_string())?,
    };
    options.snapshot_path = Some(snapshot.clone().into());
    let (images, categories, dim) = (
        loaded.database.len(),
        loaded.database.category_count(),
        loaded.database.feature_dim(),
    );
    let (generation, shards, backend_id) =
        (loaded.generation, loaded.shards, loaded.backend.id.clone());

    let server = Server::start_with_snapshot(loaded, options)?;
    println!(
        "milrd listening on {} ({images} images, {categories} categories, dim {dim}, generation {generation}, {shards} shard{}, backend {backend_id})",
        server.local_addr(),
        if shards == 1 { "" } else { "s" }
    );
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    if switch(args, "--drain-on-stdin-eof") {
        // Detached on purpose: if shutdown arrives over HTTP instead,
        // this thread is still parked on stdin and process exit reaps it.
        let addr = server.local_addr();
        std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(std::io::stdin().read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
            // Stdin closed: drain via the admin endpoint so the acceptor
            // unblocks exactly like an HTTP-initiated shutdown.
            let _ = milr_serve::client::request(
                addr,
                "POST",
                "/admin/shutdown",
                None,
                Duration::from_secs(2),
            );
        });
    }
    server.wait();
    println!("milrd drained");
    Ok(())
}
