//! The retrieval daemon: accept loop, bounded worker pool, routing, and
//! request handlers.
//!
//! Concurrency model — one acceptor thread and `workers` handler
//! threads around a bounded queue:
//!
//! * the acceptor pushes `(connection, enqueued_at)` and sheds with an
//!   immediate `503` once the queue is `queue_depth` deep;
//! * workers pop, and first check how long the connection waited — one
//!   that overstayed `handle_deadline` is answered `503` without paying
//!   for training (the client has likely timed out already);
//! * a worker then serves the connection's whole keep-alive life
//!   (pipelined requests included), but answers `Connection: close` the
//!   moment other connections are queued — a pinned worker must never
//!   starve waiting clients — or once `keepalive_requests` are served;
//! * under overload (queue past `priority_shed_fill`), uncached
//!   train-heavy rank/feedback requests are shed with `503` first;
//!   cached ranks are cheap and keep flowing;
//! * every socket carries read/write deadlines, so a stalled peer costs
//!   a worker at most the timeout, never forever;
//! * shutdown is graceful: the flag flips, the acceptor is unblocked by
//!   a self-connection, workers drain the queue and exit.
//!
//! All request state lives in the private `Daemon` struct: the current
//! snapshot **epoch** (database + generation, swapped atomically by
//! `POST /snapshot/reload` or the snapshot watcher — in-flight requests
//! and live sessions keep serving the epoch they pinned via `Arc`), the
//! shared config, the concept cache (keyed by generation), the session
//! store and the metrics registry.

use std::collections::VecDeque;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use milr_baseline::feature_backend;
use milr_core::{
    BackendTag, BatchQuery, CoreError, FeatureBackend, QuerySession, RankRequest, RetrievalConfig,
    RetrievalDatabase,
};
use milr_imgproc::{pnm, Rect};
use milr_mil::{Bag, BagAggregator, WeightPolicy};

use crate::base64;
use crate::batch::RankBatcher;
use crate::cache::{CachedConcept, ConceptCache, ConceptKey};
use crate::http::{self, ReadError, Request};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::sessions::SessionStore;

/// Everything tunable about the daemon.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:7878`; port `0` picks an ephemeral one).
    pub addr: String,
    /// Handler threads.
    pub workers: usize,
    /// Accepted connections allowed to wait; beyond this the acceptor
    /// sheds with `503`.
    pub queue_depth: usize,
    /// Socket read **and** write deadline.
    pub read_timeout: Duration,
    /// Longest a connection may wait in the queue and still be served;
    /// older ones are answered `503` instead of trained for.
    pub handle_deadline: Duration,
    /// Most requests served on one keep-alive connection before the
    /// daemon answers `Connection: close` (a per-connection cap so no
    /// client monopolises a worker forever); 0 disables keep-alive and
    /// restores the one-request-per-connection contract.
    pub keepalive_requests: usize,
    /// Read deadline while waiting for the *next* request on an
    /// already-served keep-alive connection.
    pub idle_timeout: Duration,
    /// Requests served per scheduling turn before a keep-alive worker
    /// checks the accept queue and yields (answers `Connection: close`)
    /// if other connections are waiting. Bounds head-of-line latency
    /// under saturation while still amortising connection setup
    /// `burst:1`; `0` checks after every request (maximally fair, one
    /// dial per request whenever the queue is non-empty).
    pub keepalive_burst: usize,
    /// Worker time a connection may consume before every further
    /// response also checks the queue. Requests are not uniform cost —
    /// a burst of 32 cached ranks is milliseconds, a single cold train
    /// is seconds — so the turn quantum, not the request count, is what
    /// actually bounds head-of-line latency for waiting connections.
    pub keepalive_turn: Duration,
    /// Accept-queue fill ratio at which priority shedding starts:
    /// uncached (train-heavy) rank/feedback requests are answered `503`
    /// while cached ranks and cheap endpoints keep flowing. Values
    /// above 1.0 can never trip (the queue sheds at the acceptor
    /// first), which disables the policy.
    pub priority_shed_fill: f64,
    /// Warm-started feedback training: retrains of a live session seed
    /// the DD multi-start from the session's previous winning solver
    /// vector, ascending fresh only from newly-marked positive bags.
    /// Warm concepts are session-history-dependent, so they never enter
    /// the shared concept cache (cold first rounds still do).
    pub warm_train: bool,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Concept-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Idle time after which a session expires.
    pub session_ttl: Duration,
    /// Most sessions kept live at once (0 disables sessions).
    pub session_capacity: usize,
    /// Ranking page size when a request names no `k`.
    pub default_page: usize,
    /// Training/ranking configuration shared by every request.
    pub retrieval: RetrievalConfig,
    /// Enables `GET /debug/sleep` — a worker-stalling endpoint the shed
    /// tests need; never enable in real service.
    pub debug_endpoints: bool,
    /// Snapshot the daemon serves — a monolithic `.milr` file or a
    /// sharded v3 directory. Required for `POST /snapshot/reload` and
    /// the snapshot watcher; [`None`] disables both.
    pub snapshot_path: Option<PathBuf>,
    /// Feature backend id the served snapshot must have been
    /// preprocessed with (`gray-block`, `sbn`, …). [`None`] accepts
    /// whatever backend the snapshot's manifest records. Either way,
    /// region/image uploads are featurised with the *snapshot's*
    /// backend, and a hot reload that would change the feature space is
    /// refused.
    pub backend: Option<String>,
    /// Polls `snapshot_path` for modification and hot-reloads
    /// automatically when it changes.
    pub watch_snapshot: bool,
    /// Poll interval of the snapshot watcher.
    pub watch_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            handle_deadline: Duration::from_secs(10),
            keepalive_requests: 128,
            idle_timeout: Duration::from_secs(5),
            keepalive_burst: 32,
            keepalive_turn: Duration::from_millis(50),
            priority_shed_fill: 0.75,
            warm_train: true,
            max_body: 8 * 1024 * 1024,
            cache_capacity: 128,
            session_ttl: Duration::from_secs(15 * 60),
            session_capacity: 256,
            default_page: 10,
            retrieval: RetrievalConfig::default(),
            debug_endpoints: false,
            snapshot_path: None,
            backend: None,
            watch_snapshot: false,
            watch_interval: Duration::from_secs(2),
        }
    }
}

/// Parses a policy spec (`original | identical | alpha:A | constraint:B`
/// — the same grammar as the CLI).
///
/// # Errors
/// A description of the unrecognised spec.
pub fn parse_policy(spec: &str) -> Result<WeightPolicy, String> {
    if spec == "original" {
        return Ok(WeightPolicy::OriginalDd);
    }
    if spec == "identical" {
        return Ok(WeightPolicy::Identical);
    }
    if let Some(a) = spec.strip_prefix("alpha:") {
        let alpha: f64 = a.parse().map_err(|_| format!("bad alpha in {spec:?}"))?;
        return Ok(WeightPolicy::AlphaHack { alpha });
    }
    if let Some(b) = spec.strip_prefix("constraint:") {
        let beta: f64 = b.parse().map_err(|_| format!("bad beta in {spec:?}"))?;
        return Ok(WeightPolicy::SumConstraint { beta });
    }
    Err(format!("unknown policy {spec:?}"))
}

/// One immutable snapshot generation. Requests clone the `Arc` once up
/// front and serve entirely from that epoch; a concurrent reload swaps
/// the daemon's pointer without disturbing them, and live sessions pin
/// their epoch's database for as long as they exist.
struct Epoch {
    db: Arc<RetrievalDatabase>,
    /// Every database index — the ranking pool of new sessions.
    all_indices: Vec<usize>,
    /// Monotonic across reloads (concept-cache key component).
    generation: u64,
    /// Shards behind this epoch's snapshot (1 for monolithic files).
    shards: usize,
    /// Feature backend the snapshot was preprocessed with; region and
    /// image uploads are featurised through the same backend so every
    /// query bag lives in the snapshot's feature space.
    backend: BackendTag,
}

impl Epoch {
    fn new(db: RetrievalDatabase, generation: u64, shards: usize, backend: BackendTag) -> Self {
        Self {
            all_indices: (0..db.len()).collect(),
            db: Arc::new(db),
            generation,
            shards,
            backend,
        }
    }

    /// The upload featuriser for this epoch's backend. Pre-tag
    /// snapshots carry the default gray-block tag, so this only fails
    /// for a manifest naming a backend this build does not know —
    /// which `open`-time checks normally reject first.
    fn feature_backend(&self) -> Result<std::sync::Arc<dyn FeatureBackend>, String> {
        feature_backend(&self.backend.id).ok_or_else(|| {
            format!(
                "snapshot names unknown feature backend {:?}",
                self.backend.id
            )
        })
    }
}

/// Shared state behind every worker.
struct Daemon {
    epoch: Mutex<Arc<Epoch>>,
    config: Arc<RetrievalConfig>,
    options: ServeOptions,
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    metrics: Metrics,
    batcher: RankBatcher,
    cache: Mutex<ConceptCache>,
    sessions: SessionStore,
    local_addr: SocketAddr,
    started: Instant,
}

impl Daemon {
    fn request_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue_cv.notify_all();
            // Unblock the acceptor with a throwaway connection.
            let _ = TcpStream::connect(self.local_addr);
        }
    }

    /// The epoch currently serving. One pointer clone; the caller works
    /// against this epoch for its whole request, immune to concurrent
    /// swaps.
    fn epoch(&self) -> Arc<Epoch> {
        Arc::clone(&self.epoch.lock().expect("epoch mutex"))
    }

    /// Loads `snapshot_path` and swaps it in as the next epoch. The
    /// generation is forced monotonic (`max(manifest, current + 1)`), so
    /// even re-reading an unchanged v2 file — which carries no
    /// generation of its own — invalidates the concept cache. On error
    /// the old epoch keeps serving untouched.
    fn reload_snapshot(&self) -> Result<Arc<Epoch>, String> {
        let path = self
            .options
            .snapshot_path
            .as_ref()
            .ok_or("no snapshot path configured")?;
        let snapshot = milr_store::load_snapshot(path).map_err(|e| {
            self.metrics.snapshot_reload_failures_total.inc();
            e.to_string()
        })?;
        if let Some(expected) = &self.options.backend {
            if &snapshot.backend.id != expected {
                self.metrics.snapshot_reload_failures_total.inc();
                return Err(format!(
                    "snapshot was preprocessed with feature backend {:?} but the daemon requires {expected:?}",
                    snapshot.backend.id
                ));
            }
        }
        let mut current = self.epoch.lock().expect("epoch mutex");
        // A reload must never change the feature space underneath live
        // concepts and sessions: same-backend snapshots only.
        if snapshot.backend.id != current.backend.id {
            let msg = format!(
                "reload refused: snapshot backend {:?} differs from the serving backend {:?}",
                snapshot.backend.id, current.backend.id
            );
            drop(current);
            self.metrics.snapshot_reload_failures_total.inc();
            return Err(msg);
        }
        let generation = snapshot.generation.max(current.generation + 1);
        let fresh = Arc::new(Epoch::new(
            snapshot.database,
            generation,
            snapshot.shards,
            snapshot.backend,
        ));
        *current = Arc::clone(&fresh);
        drop(current);
        self.metrics.snapshot_reloads_total.inc();
        self.metrics.snapshot_generation.set(generation as f64);
        self.metrics.snapshot_shards.set(fresh.shards as f64);
        Ok(fresh)
    }
}

/// A running daemon: handle for address discovery and shutdown.
pub struct Server {
    daemon: Arc<Daemon>,
    acceptor: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker threads, and returns
    /// immediately.
    ///
    /// # Errors
    /// A description of a bind failure or invalid configuration.
    pub fn start(db: RetrievalDatabase, options: ServeOptions) -> Result<Server, String> {
        Self::start_with_generation(db, 0, 1, options)
    }

    /// [`Self::start`] for a database loaded from a known snapshot
    /// epoch: `generation` and `shards` seed `/healthz` and the
    /// concept-cache keys (a sharded v3 manifest carries both; plain
    /// databases start at generation 0). The backend defaults to the
    /// gray-block tag; use [`Self::start_with_snapshot`] to carry the
    /// manifest's recorded backend through.
    ///
    /// # Errors
    /// A description of a bind failure or invalid configuration.
    pub fn start_with_generation(
        db: RetrievalDatabase,
        generation: u64,
        shards: usize,
        options: ServeOptions,
    ) -> Result<Server, String> {
        Self::start_with_backend(db, generation, shards, BackendTag::default(), options)
    }

    /// [`Self::start`] for a loaded [`milr_store::Snapshot`]: carries
    /// the snapshot's generation, shard count, and feature-backend tag
    /// into the serving epoch, and — when `options.backend` names a
    /// required backend — refuses a snapshot preprocessed with any
    /// other one.
    ///
    /// # Errors
    /// A description of a bind failure, invalid configuration, or
    /// backend mismatch.
    pub fn start_with_snapshot(
        snapshot: milr_store::Snapshot,
        options: ServeOptions,
    ) -> Result<Server, String> {
        if let Some(expected) = &options.backend {
            if &snapshot.backend.id != expected {
                return Err(format!(
                    "snapshot was preprocessed with feature backend {:?} but the daemon requires {expected:?}",
                    snapshot.backend.id
                ));
            }
        }
        Self::start_with_backend(
            snapshot.database,
            snapshot.generation,
            snapshot.shards,
            snapshot.backend,
            options,
        )
    }

    fn start_with_backend(
        db: RetrievalDatabase,
        generation: u64,
        shards: usize,
        backend: BackendTag,
        options: ServeOptions,
    ) -> Result<Server, String> {
        if options.workers == 0 {
            return Err("at least one worker thread is required".into());
        }
        options.retrieval.validate()?;
        let listener = TcpListener::bind(&options.addr)
            .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        let metrics = Metrics::default();
        metrics.snapshot_generation.set(generation as f64);
        metrics.snapshot_shards.set(shards as f64);
        let daemon = Arc::new(Daemon {
            epoch: Mutex::new(Arc::new(Epoch::new(db, generation, shards, backend))),
            config: Arc::new(options.retrieval.clone()),
            cache: Mutex::new(ConceptCache::new(options.cache_capacity)),
            sessions: SessionStore::new(options.session_ttl, options.session_capacity),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics,
            batcher: RankBatcher::new(),
            local_addr,
            started: Instant::now(),
            options,
        });
        let workers = (0..daemon.options.workers)
            .map(|i| {
                let daemon = Arc::clone(&daemon);
                std::thread::Builder::new()
                    .name(format!("milrd-worker-{i}"))
                    .spawn(move || worker_loop(&daemon))
                    .map_err(|e| format!("cannot spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let acceptor = {
            let daemon = Arc::clone(&daemon);
            std::thread::Builder::new()
                .name("milrd-accept".into())
                .spawn(move || accept_loop(&daemon, &listener))
                .map_err(|e| format!("cannot spawn acceptor: {e}"))?
        };
        let watcher = if daemon.options.watch_snapshot && daemon.options.snapshot_path.is_some() {
            let daemon = Arc::clone(&daemon);
            Some(
                std::thread::Builder::new()
                    .name("milrd-snapshot-watch".into())
                    .spawn(move || watch_loop(&daemon))
                    .map_err(|e| format!("cannot spawn snapshot watcher: {e}"))?,
            )
        } else {
            None
        };
        Ok(Server {
            daemon,
            acceptor: Some(acceptor),
            watcher,
            workers,
        })
    }

    /// The address actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.daemon.local_addr
    }

    /// Begins a graceful drain: stop accepting, finish queued requests.
    /// Idempotent; also triggered by `POST /admin/shutdown`.
    pub fn shutdown(&self) {
        self.daemon.request_shutdown();
    }

    /// Blocks until the acceptor and every worker have exited (i.e.
    /// until someone calls [`Self::shutdown`] or posts
    /// `/admin/shutdown`, and the queue has drained).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
    }
}

fn accept_loop(daemon: &Daemon, listener: &TcpListener) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if daemon.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if daemon.shutdown.load(Ordering::SeqCst) {
            return; // the unblocking self-connection, or a late client
        }
        let _ = stream.set_read_timeout(Some(daemon.options.read_timeout));
        let _ = stream.set_write_timeout(Some(daemon.options.read_timeout));
        // Keep-alive turns this into a request/response ping-pong socket;
        // without NODELAY, Nagle + delayed ACK stalls every small
        // response ~40ms.
        let _ = stream.set_nodelay(true);
        let mut queue = daemon.queue.lock().expect("accept queue mutex");
        if queue.len() >= daemon.options.queue_depth {
            drop(queue);
            daemon.metrics.shed_total.inc();
            // Answer on a throwaway thread: the acceptor must never block
            // on a slow peer, and the socket has to be drained after the
            // 503 (see `drain_before_close`) or the client may lose the
            // response to an RST.
            let mut stream = stream;
            std::thread::spawn(move || {
                let _ = http::respond_json(
                    &mut stream,
                    503,
                    &http::error_body("server saturated; request shed"),
                );
                drain_before_close(&mut stream);
            });
            continue;
        }
        queue.push_back((stream, Instant::now()));
        daemon.metrics.set_queue_depth(queue.len());
        drop(queue);
        daemon.metrics.accepted_total.inc();
        daemon.queue_cv.notify_one();
    }
}

fn worker_loop(daemon: &Daemon) {
    loop {
        let job = {
            let mut queue = daemon.queue.lock().expect("accept queue mutex");
            loop {
                if let Some(job) = queue.pop_front() {
                    daemon.metrics.set_queue_depth(queue.len());
                    break Some(job);
                }
                if daemon.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, wait) = daemon
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("accept queue mutex");
                queue = guard;
                if wait.timed_out() {
                    // Idle tick: drop the lock and evict expired sessions.
                    drop(queue);
                    daemon.sessions.sweep();
                    queue = daemon.queue.lock().expect("accept queue mutex");
                }
            }
        };
        match job {
            Some((stream, enqueued)) => handle_connection(daemon, stream, enqueued),
            None => return,
        }
    }
}

/// The snapshot watcher: polls the snapshot path's modification time
/// and hot-reloads when it changes. A v3 directory is watched through
/// its manifest — shard files are written first, the manifest last, so
/// a manifest mtime bump means a complete snapshot.
fn watch_loop(daemon: &Daemon) {
    let Some(path) = daemon.options.snapshot_path.clone() else {
        return;
    };
    let watched = if path.is_dir() {
        path.join(milr_store::MANIFEST_FILE)
    } else {
        path
    };
    let mtime = |p: &std::path::Path| std::fs::metadata(p).and_then(|m| m.modified()).ok();
    let mut last = mtime(&watched);
    while !daemon.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(daemon.options.watch_interval);
        let current = mtime(&watched);
        if current.is_some() && current != last {
            match daemon.reload_snapshot() {
                Ok(epoch) => {
                    last = current;
                    milr_obs::counter!("milrd_snapshot_watch_reloads_total").inc();
                    let _ = epoch;
                }
                // Mid-write races (manifest not yet flushed) resolve on
                // the next tick; `last` stays put so we retry.
                Err(_) => continue,
            }
        }
    }
}

/// Serves one connection for its whole life: a keep-alive loop reading
/// pipelined requests until the client closes, asks to close, idles
/// past `idle_timeout`, hits the per-connection request cap, or other
/// connections are waiting in the accept queue (a pinned worker would
/// starve them, so the daemon answers `Connection: close` and frees
/// itself).
///
/// Connection accounting resolves each admitted connection **exactly
/// once** so the chaos conservation law keeps balancing:
/// * `completed` — served at least one request and ended cleanly (peer
///   EOF or idle expiry after a response, `Connection: close`, cap,
///   shutdown, or a failed response write);
/// * `closed` — the peer vanished before sending any request;
/// * `read_error` — a malformed/oversized/timed-out *first* read, or a
///   parse failure mid-connection before any request succeeded;
/// * `deadline_shed` — overstayed the queue.
fn handle_connection(daemon: &Daemon, mut stream: TcpStream, enqueued: Instant) {
    if enqueued.elapsed() > daemon.options.handle_deadline {
        daemon.metrics.deadline_shed_total.inc();
        let _ = http::respond_json(
            &mut stream,
            503,
            &http::error_body("request overstayed the queue deadline"),
        );
        drain_before_close(&mut stream);
        return;
    }
    let mut pending = Vec::new();
    let mut served = 0usize;
    let turn_started = Instant::now();
    loop {
        let started = Instant::now();
        let request =
            match http::read_request_buffered(&mut stream, &mut pending, daemon.options.max_body) {
                Ok(request) => request,
                Err(ReadError::Closed) => {
                    if served > 0 {
                        daemon.metrics.completed_total.inc();
                    } else {
                        daemon.metrics.closed_total.inc();
                    }
                    return;
                }
                Err(ReadError::Timeout) if served > 0 => {
                    // Idle expiry after at least one response is the
                    // normal end of a keep-alive connection, not an
                    // error.
                    daemon.metrics.completed_total.inc();
                    drain_before_close(&mut stream);
                    return;
                }
                Err(err) => {
                    let (status, message) = match err {
                        ReadError::Timeout => (408, "timed out reading the request".to_string()),
                        ReadError::HeadTooLarge => (431, "request head too large".to_string()),
                        ReadError::BodyTooLarge => (413, "request body too large".to_string()),
                        ReadError::Malformed(m) => (400, m),
                        ReadError::Closed => unreachable!("handled above"),
                    };
                    let us = started.elapsed().as_micros() as u64;
                    daemon.metrics.record("(unreadable)", status, us);
                    daemon.metrics.read_error_total.inc();
                    let _ = http::respond_json(&mut stream, status, &http::error_body(message));
                    drain_before_close(&mut stream);
                    return;
                }
            };
        if served > 0 {
            daemon.metrics.keepalive_reused_total.inc();
        }
        let (endpoint, status, body) = {
            let _span = milr_obs::span::enter("serve.request");
            route(daemon, &request)
        };
        served += 1;
        // Yield policy: pipelined bytes are always finished first; at
        // each burst boundary — every `keepalive_burst` requests, or
        // any response once the connection has consumed a turn quantum
        // of worker time (one cold train blows the quantum on its own)
        // — the worker closes if other connections wait in the accept
        // queue, so a busy client amortises dials without ever starving
        // the queue.
        let at_burst_boundary = served.is_multiple_of(daemon.options.keepalive_burst.max(1))
            || turn_started.elapsed() >= daemon.options.keepalive_turn;
        let keep = daemon.options.keepalive_requests > 0
            && served < daemon.options.keepalive_requests
            && !request.wants_close()
            && !daemon.shutdown.load(Ordering::SeqCst)
            && (!pending.is_empty()
                || !at_burst_boundary
                || daemon.queue.lock().expect("accept queue mutex").is_empty());
        let us = started.elapsed().as_micros() as u64;
        daemon.metrics.record(endpoint, status, us);
        let io = match &body {
            Payload::Json(json) => http::respond_json_conn(&mut stream, status, json, keep),
            Payload::Text(text) => http::respond_bytes(
                &mut stream,
                status,
                "text/plain; version=0.0.4; charset=utf-8",
                text.as_bytes(),
                keep,
            ),
        };
        if io.is_err() || !keep {
            daemon.metrics.completed_total.inc();
            drain_before_close(&mut stream);
            return;
        }
        let _ = stream.set_read_timeout(Some(daemon.options.idle_timeout));
    }
}

/// Consumes (bounded) whatever the peer already sent before the socket
/// closes. Required on every path that responds without reading the
/// full request: closing with unread bytes in the receive buffer makes
/// the kernel send an RST, which can discard the in-flight response
/// before the client reads it — a shed would then look like a
/// connection reset instead of a clean `503`.
fn drain_before_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 4096];
    for _ in 0..16 {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => continue,
            _ => break,
        }
    }
}

/// A response body: JSON for the protocol proper, plain text for the
/// Prometheus `/metrics` exposition.
enum Payload {
    Json(Json),
    Text(String),
}

/// Dispatches one parsed request. Returns `(endpoint label, status,
/// body)`; the label keys the metrics registry, so dynamic path segments
/// collapse into placeholders.
///
/// `GET /metrics?format=prometheus` is the one non-JSON route; everything
/// else delegates to [`route_json`].
fn route(daemon: &Daemon, req: &Request) -> (&'static str, u16, Payload) {
    if req.method == "GET"
        && req.path == "/metrics"
        && req.query_param("format") == Some("prometheus")
    {
        return ("/metrics", 200, Payload::Text(metrics_prometheus(daemon)));
    }
    let (endpoint, status, json) = route_json(daemon, req);
    (endpoint, status, Payload::Json(json))
}

fn route_json(daemon: &Daemon, req: &Request) -> (&'static str, u16, Json) {
    let method = req.method.as_str();
    let path = req.path.as_str();
    match (method, path) {
        ("GET", "/healthz") => ("/healthz", 200, healthz(daemon)),
        ("GET", "/metrics") => ("/metrics", 200, metrics_json(daemon)),
        ("GET", "/trace") => ("/trace", 200, trace_json(req)),
        ("GET", "/rank") => {
            let (status, body) = handle_rank(daemon, req);
            ("/rank", status, body)
        }
        ("POST", "/rank") => {
            let (status, body) = handle_rank_region(daemon, req);
            ("/rank (region)", status, body)
        }
        ("POST", "/sessions") => {
            let (status, body) = handle_create_session(daemon, req);
            ("/sessions", status, body)
        }
        ("POST", "/snapshot/reload") => {
            let (status, body) = handle_reload(daemon);
            ("/snapshot/reload", status, body)
        }
        ("POST", "/admin/shutdown") => {
            daemon.request_shutdown();
            (
                "/admin/shutdown",
                200,
                Json::Obj(vec![("draining".into(), Json::Bool(true))]),
            )
        }
        ("GET", "/debug/sleep") if daemon.options.debug_endpoints => {
            let ms = req
                .query_param("ms")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(100)
                .min(10_000);
            std::thread::sleep(Duration::from_millis(ms));
            (
                "/debug/sleep",
                200,
                Json::Obj(vec![("slept_ms".into(), Json::num(ms as f64))]),
            )
        }
        _ => {
            if let Some(rest) = path.strip_prefix("/sessions/") {
                return route_session(daemon, req, rest);
            }
            let known = matches!(
                path,
                "/healthz"
                    | "/metrics"
                    | "/trace"
                    | "/rank"
                    | "/sessions"
                    | "/snapshot/reload"
                    | "/admin/shutdown"
            );
            if known {
                (
                    "(method-mismatch)",
                    405,
                    http::error_body(format!("{method} not supported on {path}")),
                )
            } else {
                (
                    "(unmatched)",
                    404,
                    http::error_body(format!("no route for {path}")),
                )
            }
        }
    }
}

fn route_session(daemon: &Daemon, req: &Request, rest: &str) -> (&'static str, u16, Json) {
    let (id_text, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return (
            "(unmatched)",
            404,
            http::error_body(format!("invalid session id {id_text:?}")),
        );
    };
    match (req.method.as_str(), tail) {
        ("GET", None) => {
            let (status, body) = session_info(daemon, id);
            ("/sessions/{id}", status, body)
        }
        ("DELETE", None) => {
            if daemon.sessions.remove(id) {
                (
                    "/sessions/{id}",
                    200,
                    Json::Obj(vec![("deleted".into(), Json::Bool(true))]),
                )
            } else {
                ("/sessions/{id}", 404, http::error_body("no such session"))
            }
        }
        ("POST", Some("feedback")) => {
            let (status, body) = handle_feedback(daemon, req, id);
            ("/sessions/{id}/feedback", status, body)
        }
        (_, None) => (
            "(method-mismatch)",
            405,
            http::error_body("use GET or DELETE on a session"),
        ),
        (_, Some("feedback")) => (
            "(method-mismatch)",
            405,
            http::error_body("use POST on /sessions/{id}/feedback"),
        ),
        _ => ("(unmatched)", 404, http::error_body("no such route")),
    }
}

fn healthz(daemon: &Daemon) -> Json {
    let epoch = daemon.epoch();
    Json::Obj(vec![
        ("status".into(), Json::str("ok")),
        ("images".into(), Json::num(epoch.db.len() as f64)),
        (
            "categories".into(),
            Json::num(epoch.db.category_count() as f64),
        ),
        (
            "feature_dim".into(),
            Json::num(epoch.db.feature_dim() as f64),
        ),
        ("generation".into(), Json::num(epoch.generation as f64)),
        ("shards".into(), Json::num(epoch.shards as f64)),
        ("backend".into(), Json::str(epoch.backend.id.clone())),
        (
            "uptime_s".into(),
            Json::num(daemon.started.elapsed().as_secs_f64()),
        ),
    ])
}

/// Parses an optional aggregator label: absent means the paper's
/// min-distance fold, anything unrecognised is the caller's mistake.
fn parse_aggregator(label: Option<&str>) -> Result<BagAggregator, String> {
    match label {
        None => Ok(BagAggregator::MinDistance),
        Some(label) => {
            BagAggregator::parse(label).ok_or_else(|| format!("unknown aggregator {label:?}"))
        }
    }
}

/// Extracts the optional `"aggregator"` string field of a JSON body.
fn body_aggregator(body: &Json) -> Result<BagAggregator, String> {
    match body.get("aggregator") {
        None => Ok(BagAggregator::MinDistance),
        Some(value) => parse_aggregator(Some(value.as_str().ok_or("aggregator must be a string")?)),
    }
}

/// `POST /snapshot/reload` — loads the configured snapshot path and
/// swaps the serving epoch. `409` when the daemon was started without a
/// snapshot path; `500` (old epoch untouched) when the load fails.
fn handle_reload(daemon: &Daemon) -> (u16, Json) {
    let _span = milr_obs::span::enter("serve.snapshot_reload");
    if daemon.options.snapshot_path.is_none() {
        return (
            409,
            http::error_body("daemon was started without a snapshot path; reload is disabled"),
        );
    }
    match daemon.reload_snapshot() {
        Ok(epoch) => (
            200,
            Json::Obj(vec![
                ("generation".into(), Json::num(epoch.generation as f64)),
                ("shards".into(), Json::num(epoch.shards as f64)),
                ("images".into(), Json::num(epoch.db.len() as f64)),
            ]),
        ),
        Err(msg) => (500, http::error_body(format!("reload failed: {msg}"))),
    }
}

fn metrics_json(daemon: &Daemon) -> Json {
    let cache = daemon.cache.lock().expect("concept cache mutex");
    let cache_json = Json::Obj(vec![
        ("hits".into(), Json::num(cache.hits() as f64)),
        ("misses".into(), Json::num(cache.misses() as f64)),
        ("entries".into(), Json::num(cache.len() as f64)),
        ("capacity".into(), Json::num(cache.capacity() as f64)),
    ]);
    drop(cache);
    let sessions = daemon.sessions.stats();
    let sessions_json = Json::Obj(vec![
        ("active".into(), Json::num(sessions.active as f64)),
        (
            "created_total".into(),
            Json::num(sessions.created_total as f64),
        ),
        (
            "expired_total".into(),
            Json::num(sessions.expired_total as f64),
        ),
        (
            "evicted_total".into(),
            Json::num(sessions.evicted_total as f64),
        ),
    ]);
    Json::Obj(vec![
        (
            "uptime_s".into(),
            Json::num(daemon.started.elapsed().as_secs_f64()),
        ),
        (
            "requests_total".into(),
            Json::num(daemon.metrics.total_requests() as f64),
        ),
        (
            "accepted_total".into(),
            Json::num(daemon.metrics.accepted_total.get() as f64),
        ),
        (
            "completed_total".into(),
            Json::num(daemon.metrics.completed_total.get() as f64),
        ),
        (
            "read_error_total".into(),
            Json::num(daemon.metrics.read_error_total.get() as f64),
        ),
        (
            "closed_total".into(),
            Json::num(daemon.metrics.closed_total.get() as f64),
        ),
        (
            "shed_total".into(),
            Json::num(daemon.metrics.shed_total.get() as f64),
        ),
        (
            "deadline_shed_total".into(),
            Json::num(daemon.metrics.deadline_shed_total.get() as f64),
        ),
        (
            "keepalive_reused_total".into(),
            Json::num(daemon.metrics.keepalive_reused_total.get() as f64),
        ),
        (
            "priority_shed_total".into(),
            Json::num(daemon.metrics.priority_shed_total.get() as f64),
        ),
        (
            "batch".into(),
            Json::Obj(vec![
                (
                    "formed_total".into(),
                    Json::num(daemon.metrics.batch_formed_total.get() as f64),
                ),
                (
                    "size_max".into(),
                    Json::num(daemon.metrics.batch_size.snapshot().max() as f64),
                ),
                (
                    "size_mean".into(),
                    Json::num(daemon.metrics.batch_size.snapshot().mean()),
                ),
            ]),
        ),
        (
            "queue_depth".into(),
            Json::num(daemon.metrics.queue_depth.get()),
        ),
        (
            "queue_peak".into(),
            Json::num(daemon.metrics.queue_peak.get()),
        ),
        ("concept_cache".into(), cache_json),
        ("sessions".into(), sessions_json),
        ("rank".into(), crate::metrics::rank_counters_json()),
        ("train".into(), crate::metrics::train_counters_json()),
        ("endpoints".into(), daemon.metrics.endpoints_json()),
    ])
}

/// Prometheus text exposition: the daemon's own registry (connection
/// outcomes, per-endpoint series, queue gauges, cache/session state
/// mirrored into gauges just before rendering) followed by the
/// process-wide engine registry (solver, ranking, preprocessing).
fn metrics_prometheus(daemon: &Daemon) -> String {
    let registry = daemon.metrics.registry();
    registry
        .gauge("milrd_uptime_seconds")
        .set(daemon.started.elapsed().as_secs_f64());
    {
        let cache = daemon.cache.lock().expect("concept cache mutex");
        registry
            .gauge("milrd_concept_cache_hits")
            .set(cache.hits() as f64);
        registry
            .gauge("milrd_concept_cache_misses")
            .set(cache.misses() as f64);
        registry
            .gauge("milrd_concept_cache_entries")
            .set(cache.len() as f64);
        registry
            .gauge("milrd_concept_cache_capacity")
            .set(cache.capacity() as f64);
    }
    let sessions = daemon.sessions.stats();
    registry
        .gauge("milrd_sessions_active")
        .set(sessions.active as f64);
    registry
        .gauge("milrd_sessions_created")
        .set(sessions.created_total as f64);
    registry
        .gauge("milrd_sessions_expired")
        .set(sessions.expired_total as f64);
    registry
        .gauge("milrd_sessions_evicted")
        .set(sessions.evicted_total as f64);
    let mut out = registry.render_prometheus();
    out.push_str(&milr_obs::global().render_prometheus());
    out
}

/// `GET /trace` — the most recent spans (all threads, oldest first) as a
/// JSON array; `?n=` caps the count (default 256).
fn trace_json(req: &Request) -> Json {
    let n = req
        .query_param("n")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(256);
    let spans = milr_obs::recent_spans(n);
    Json::Obj(vec![(
        "spans".into(),
        Json::Arr(
            spans
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("name".into(), Json::str(s.name)),
                        ("thread".into(), Json::num(s.thread as f64)),
                        ("start_us".into(), Json::num(s.start_us as f64)),
                        ("dur_ns".into(), Json::num(s.dur_ns as f64)),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Maps a core failure to an HTTP status: caller mistakes are 4xx,
/// anything else is the daemon's fault.
fn core_error_status(err: &CoreError) -> u16 {
    match err {
        CoreError::IndexOutOfBounds { .. }
        | CoreError::NoExamples
        | CoreError::NotTrained
        | CoreError::UnknownCategory { .. }
        | CoreError::NoTargetCategory => 400,
        CoreError::Mil(milr_mil::MilError::DimensionMismatch { .. }) => 400,
        _ => 500,
    }
}

fn core_error_response(err: &CoreError) -> (u16, Json) {
    (core_error_status(err), http::error_body(err.to_string()))
}

fn ranking_json(ranking: &[(usize, f64)]) -> Json {
    Json::Arr(
        ranking
            .iter()
            .map(|&(index, distance)| {
                Json::Obj(vec![
                    ("index".into(), Json::num(index as f64)),
                    ("distance".into(), Json::Num(distance)),
                ])
            })
            .collect(),
    )
}

/// Parses a comma-separated index list (`"3,1,4"`).
fn parse_index_list(text: &str) -> Result<Vec<usize>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map_err(|_| format!("invalid index {part:?}"))
        })
        .collect()
}

/// Resolves the session config for an optional `policy` spec: the shared
/// default when absent, a copy with the policy swapped in when present.
fn config_for_policy(
    daemon: &Daemon,
    spec: Option<&str>,
) -> Result<(Arc<RetrievalConfig>, String), String> {
    match spec {
        None => Ok((Arc::clone(&daemon.config), daemon.config.policy.label())),
        Some(spec) => {
            let policy = parse_policy(spec)?;
            policy.validate()?;
            let label = policy.label();
            let mut config = (*daemon.config).clone();
            config.policy = policy;
            Ok((Arc::new(config), label))
        }
    }
}

/// Whether the accept queue is deep enough that train-heavy work should
/// be shed. The threshold is a fill ratio of `queue_depth`; anything
/// above 1.0 can never trip because the acceptor sheds at full depth.
fn priority_overloaded(daemon: &Daemon) -> bool {
    let threshold =
        (daemon.options.priority_shed_fill * daemon.options.queue_depth as f64).ceil() as usize;
    let depth = daemon.queue.lock().expect("accept queue mutex").len();
    depth >= threshold.max(1)
}

/// The uniform `503` for a train-heavy request shed under overload.
fn priority_shed_response(daemon: &Daemon) -> (u16, Json) {
    daemon.metrics.priority_shed_total.inc();
    (
        503,
        http::error_body("overloaded; uncached training request shed — retry later"),
    )
}

/// Fetches a concept for an example configuration through the cache:
/// either a hit, or a fresh training run whose result is inserted.
fn concept_via_cache(
    daemon: &Daemon,
    key: ConceptKey,
    train: impl FnOnce() -> Result<CachedConcept, CoreError>,
) -> Result<(CachedConcept, bool), CoreError> {
    let cached = daemon.cache.lock().expect("concept cache mutex").get(&key);
    if let Some(hit) = cached {
        return Ok((hit, true));
    }
    // Train outside the cache lock — concurrent identical misses may
    // train twice, but they converge on the same deterministic concept,
    // and never serialise unrelated requests behind one training run.
    let fresh = train()?;
    daemon
        .cache
        .lock()
        .expect("concept cache mutex")
        .insert(key, fresh.clone());
    Ok((fresh, false))
}

/// `GET /rank` — the stateless one-shot: train (or fetch the cached
/// concept) for the query-string example sets and return the top-k page.
fn handle_rank(daemon: &Daemon, req: &Request) -> (u16, Json) {
    let _span = milr_obs::span::enter("serve.rank");
    let positives = match parse_index_list(req.query_param("positives").unwrap_or("")) {
        Ok(list) => list,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let negatives = match parse_index_list(req.query_param("negatives").unwrap_or("")) {
        Ok(list) => list,
        Err(msg) => return (400, http::error_body(msg)),
    };
    if positives.is_empty() {
        return (
            400,
            http::error_body("at least one positive example index is required"),
        );
    }
    let k = match req.query_param("k") {
        None => daemon.options.default_page,
        Some(v) => match v.parse::<usize>() {
            Ok(k) => k,
            Err(_) => return (400, http::error_body(format!("invalid k {v:?}"))),
        },
    };
    let (config, policy_label) = match config_for_policy(daemon, req.query_param("policy")) {
        Ok(pair) => pair,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let aggregator = match parse_aggregator(req.query_param("aggregator")) {
        Ok(aggregator) => aggregator,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let epoch = daemon.epoch();
    // The aggregator is deliberately absent from the cache key: it
    // shapes ranking, not training, so every fold shares one concept.
    let key = ConceptKey::new(&positives, &negatives, &policy_label, epoch.generation);
    // Priority shedding: under overload a cached rank is cheap (one
    // bounded scan), an uncached one buys a whole DD training run — shed
    // the expensive kind first so the cheap kind keeps flowing.
    if priority_overloaded(daemon)
        && !daemon
            .cache
            .lock()
            .expect("concept cache mutex")
            .contains(&key)
    {
        return priority_shed_response(daemon);
    }
    let trained = concept_via_cache(daemon, key, || {
        let mut session = QuerySession::builder(Arc::clone(&epoch.db))
            .config(config)
            .positives(positives.clone())
            .negatives(negatives.clone())
            .pool(Vec::new()) // the page is ranked directly below; no pool needed
            .build()?;
        session.train_round()?;
        Ok(CachedConcept {
            concept: session.shared_concept().expect("just trained"),
            nldd: session.nldd(),
        })
    });
    let (cached, cache_hit) = match trained {
        Ok(pair) => pair,
        Err(err) => return core_error_response(&err),
    };
    // Rank through the flat-combining batcher: concurrent /rank requests
    // against the same epoch coalesce into one traversal, bit-identical
    // to the direct `epoch.db.rank(...)` call by construction.
    let query = BatchQuery {
        concept: Arc::clone(&cached.concept),
        top_k: Some(k),
    };
    let ranking = match daemon.batcher.rank(
        Arc::clone(&epoch.db),
        epoch.generation,
        aggregator,
        query,
        daemon.config.threads,
        &daemon.metrics,
    ) {
        Ok(ranking) => ranking,
        Err(err) => return core_error_response(&err),
    };
    (
        200,
        Json::Obj(vec![
            ("ranking".into(), ranking_json(&ranking)),
            ("cache_hit".into(), Json::Bool(cache_hit)),
            ("nldd".into(), Json::Num(cached.nldd)),
            ("aggregator".into(), Json::str(aggregator.label())),
        ]),
    )
}

/// `POST /rank` — the stateless sub-image query of the Luo & Nascimento
/// relevance-feedback scenario: the client uploads a picture (base64
/// PGM) plus an optional region of interest, the daemon crops to the
/// ROI, featurises it with the snapshot's backend, trains one Diverse
/// Density concept against the optional negatives (database indices,
/// whole-image uploads, or further regions), and returns the top-k page
/// under the requested aggregator.
///
/// Body:
/// ```json
/// {
///   "image_pgm": "<base64 PGM>",
///   "roi": {"x": 8, "y": 8, "width": 48, "height": 48},
///   "negatives": [7, 12],
///   "negative_pgm": ["<base64 PGM>"],
///   "negative_regions": [{"image_pgm": "...", "roi": {...}}],
///   "k": 10,
///   "policy": "original",
///   "aggregator": "logsumexp"
/// }
/// ```
/// Everything but `image_pgm` is optional. For feedback rounds over the
/// wire, create a session with `positive_regions` instead — this
/// endpoint trains fresh every call (region queries have no index
/// identity, so there is nothing to cache).
fn handle_rank_region(daemon: &Daemon, req: &Request) -> (u16, Json) {
    let _span = milr_obs::span::enter("serve.rank_region");
    let text = match std::str::from_utf8(&req.body) {
        Ok(text) => text,
        Err(_) => return (400, http::error_body("body is not UTF-8")),
    };
    let body = match Json::parse(text) {
        Ok(body) => body,
        Err(msg) => return (400, http::error_body(format!("invalid JSON: {msg}"))),
    };
    if body.get("image_pgm").is_none() {
        return (400, http::error_body("image_pgm is required"));
    }
    let k = match body.get("k") {
        None => daemon.options.default_page,
        Some(value) => match value.as_u64() {
            Some(k) => k as usize,
            None => return (400, http::error_body("k must be a non-negative integer")),
        },
    };
    let aggregator = match body_aggregator(&body) {
        Ok(aggregator) => aggregator,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let policy_spec = match body.get("policy") {
        None => None,
        Some(value) => match value.as_str() {
            Some(spec) => Some(spec),
            None => return (400, http::error_body("policy must be a string")),
        },
    };
    let (config, _policy_label) = match config_for_policy(daemon, policy_spec) {
        Ok(pair) => pair,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let negatives = match body_indices(&body, "negatives") {
        Ok(list) => list,
        Err(msg) => return (400, http::error_body(msg)),
    };
    // A region query always trains (no cacheable index identity), so
    // under overload it is shed unconditionally.
    if priority_overloaded(daemon) {
        return priority_shed_response(daemon);
    }
    let epoch = daemon.epoch();
    let backend = match epoch.feature_backend() {
        Ok(backend) => backend,
        Err(msg) => return (500, http::error_body(msg)),
    };
    let query_bag = match region_bag(&body, &*backend, &config) {
        Ok(bag) => bag,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let mut negative_bags = match decode_uploads(&body, "negative_pgm", &*backend, &config) {
        Ok(bags) => bags,
        Err(msg) => return (400, http::error_body(msg)),
    };
    match decode_region_uploads(&body, "negative_regions", &*backend, &config) {
        Ok(bags) => negative_bags.extend(bags),
        Err(msg) => return (400, http::error_body(msg)),
    }
    let mut session = match QuerySession::builder(Arc::clone(&epoch.db))
        .config(config)
        .positives(Vec::new())
        .negatives(negatives)
        .pool(epoch.all_indices.clone())
        .build()
    {
        Ok(session) => session,
        Err(err) => return core_error_response(&err),
    };
    if let Err(err) = session.add_positive_bag(query_bag) {
        return core_error_response(&err);
    }
    for bag in negative_bags {
        if let Err(err) = session.add_negative_bag(bag) {
            return core_error_response(&err);
        }
    }
    if let Err(err) = session.train_round() {
        return core_error_response(&err);
    }
    let ranking = match session.rank(&RankRequest::pool().top(k).aggregator(aggregator)) {
        Ok(ranking) => ranking,
        Err(err) => return core_error_response(&err),
    };
    (
        200,
        Json::Obj(vec![
            ("ranking".into(), ranking_json(&ranking)),
            ("nldd".into(), Json::Num(session.nldd())),
            ("aggregator".into(), Json::str(aggregator.label())),
            ("backend".into(), Json::str(epoch.backend.id.clone())),
        ]),
    )
}

/// Decodes one base64 PGM payload into a gray image.
fn decode_pgm(text: &str) -> Result<milr_imgproc::GrayImage, String> {
    let bytes = base64::decode(text)?;
    pnm::read_pgm(&bytes[..]).map_err(|e| e.to_string())
}

/// Parses a `{"x":..,"y":..,"width":..,"height":..}` region object.
fn parse_roi(value: &Json) -> Result<Rect, String> {
    let field = |name: &str| -> Result<usize, String> {
        value
            .get(name)
            .and_then(Json::as_u64)
            .map(|v| v as usize)
            .ok_or_else(|| format!("roi.{name} must be a non-negative integer"))
    };
    Ok(Rect::new(
        field("x")?,
        field("y")?,
        field("width")?,
        field("height")?,
    ))
}

/// Decodes the `*_pgm` upload arrays of a session body into feature
/// bags through the serving epoch's feature backend.
fn decode_uploads(
    body: &Json,
    field: &str,
    backend: &dyn FeatureBackend,
    config: &RetrievalConfig,
) -> Result<Vec<Bag>, String> {
    let Some(value) = body.get(field) else {
        return Ok(Vec::new());
    };
    let items = value
        .as_array()
        .ok_or_else(|| format!("{field} must be an array of base64 strings"))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let text = item
                .as_str()
                .ok_or_else(|| format!("{field}[{i}] must be a base64 string"))?;
            let image = decode_pgm(text).map_err(|e| format!("{field}[{i}]: {e}"))?;
            backend
                .gray_bag(&image, config)
                .map_err(|e| format!("{field}[{i}]: {e}"))
        })
        .collect()
}

/// Decodes the `*_regions` arrays of a body — objects of the form
/// `{"image_pgm": "<base64>", "roi": {"x":..,"y":..,"width":..,
/// "height":..}}`, `roi` optional (whole image) — into feature bags:
/// the sub-image query of Luo & Nascimento's relevance-feedback
/// scenario, where the user marks a region of a picture rather than a
/// whole picture.
fn decode_region_uploads(
    body: &Json,
    field: &str,
    backend: &dyn FeatureBackend,
    config: &RetrievalConfig,
) -> Result<Vec<Bag>, String> {
    let Some(value) = body.get(field) else {
        return Ok(Vec::new());
    };
    let items = value
        .as_array()
        .ok_or_else(|| format!("{field} must be an array of region objects"))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            region_bag(item, backend, config).map_err(|e| format!("{field}[{i}]: {e}"))
        })
        .collect()
}

/// Featurises one region object: decode, crop to the ROI when present,
/// run the backend.
fn region_bag(
    item: &Json,
    backend: &dyn FeatureBackend,
    config: &RetrievalConfig,
) -> Result<Bag, String> {
    let text = item
        .get("image_pgm")
        .and_then(Json::as_str)
        .ok_or("image_pgm must be a base64 string")?;
    let image = decode_pgm(text)?;
    let image = match item.get("roi") {
        None => image,
        Some(value) => {
            let roi = parse_roi(value)?;
            image.crop(roi).map_err(|e| e.to_string())?
        }
    };
    backend.gray_bag(&image, config).map_err(|e| e.to_string())
}

/// Extracts an index array field (`"positives": [3, 1]`) from a JSON
/// body.
fn body_indices(body: &Json, field: &str) -> Result<Vec<usize>, String> {
    let Some(value) = body.get(field) else {
        return Ok(Vec::new());
    };
    let items = value
        .as_array()
        .ok_or_else(|| format!("{field} must be an array of image indices"))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| format!("{field}[{i}] must be a non-negative integer"))
        })
        .collect()
}

/// `POST /sessions` — creates a feedback session from explicit marks
/// and/or uploaded PGM images.
fn handle_create_session(daemon: &Daemon, req: &Request) -> (u16, Json) {
    let _span = milr_obs::span::enter("serve.session_create");
    let text = match std::str::from_utf8(&req.body) {
        Ok(text) => text,
        Err(_) => return (400, http::error_body("body is not UTF-8")),
    };
    let body = match Json::parse(text) {
        Ok(body) => body,
        Err(msg) => return (400, http::error_body(format!("invalid JSON: {msg}"))),
    };
    let positives = match body_indices(&body, "positives") {
        Ok(list) => list,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let negatives = match body_indices(&body, "negatives") {
        Ok(list) => list,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let policy_spec = match body.get("policy") {
        None => None,
        Some(value) => match value.as_str() {
            Some(spec) => Some(spec),
            None => return (400, http::error_body("policy must be a string")),
        },
    };
    let (config, policy_label) = match config_for_policy(daemon, policy_spec) {
        Ok(pair) => pair,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let epoch = daemon.epoch();
    let backend = match epoch.feature_backend() {
        Ok(backend) => backend,
        Err(msg) => return (500, http::error_body(msg)),
    };
    let mut positive_bags = match decode_uploads(&body, "positive_pgm", &*backend, &config) {
        Ok(bags) => bags,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let mut negative_bags = match decode_uploads(&body, "negative_pgm", &*backend, &config) {
        Ok(bags) => bags,
        Err(msg) => return (400, http::error_body(msg)),
    };
    match decode_region_uploads(&body, "positive_regions", &*backend, &config) {
        Ok(bags) => positive_bags.extend(bags),
        Err(msg) => return (400, http::error_body(msg)),
    }
    match decode_region_uploads(&body, "negative_regions", &*backend, &config) {
        Ok(bags) => negative_bags.extend(bags),
        Err(msg) => return (400, http::error_body(msg)),
    }
    if positives.is_empty() && positive_bags.is_empty() {
        return (
            400,
            http::error_body(
                "at least one positive example (index, upload, or region) is required",
            ),
        );
    }
    let mut session = match QuerySession::builder(Arc::clone(&epoch.db))
        .config(config)
        .positives(positives)
        .negatives(negatives)
        .pool(epoch.all_indices.clone())
        .warm_start(daemon.options.warm_train)
        .build()
    {
        Ok(session) => session,
        Err(err) => return core_error_response(&err),
    };
    for bag in positive_bags {
        if let Err(err) = session.add_positive_bag(bag) {
            return core_error_response(&err);
        }
    }
    for bag in negative_bags {
        if let Err(err) = session.add_negative_bag(bag) {
            return core_error_response(&err);
        }
    }
    let (positive_count, negative_count) = (
        session.positives().len() + session.external_example_counts().0,
        session.negatives().len() + session.external_example_counts().1,
    );
    match daemon
        .sessions
        .create(session, policy_label, epoch.generation)
    {
        Some(id) => (
            201,
            Json::Obj(vec![
                ("id".into(), Json::num(id as f64)),
                ("positives".into(), Json::num(positive_count as f64)),
                ("negatives".into(), Json::num(negative_count as f64)),
            ]),
        ),
        None => (503, http::error_body("session store is full or disabled")),
    }
}

fn session_info(daemon: &Daemon, id: u64) -> (u16, Json) {
    let Some(handle) = daemon.sessions.get(id) else {
        return (404, http::error_body("no such session"));
    };
    let session = handle.lock().expect("session mutex");
    let (ext_pos, ext_neg) = session.query.external_example_counts();
    (
        200,
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("positives".into(), Json::indices(session.query.positives())),
            ("negatives".into(), Json::indices(session.query.negatives())),
            ("external_positives".into(), Json::num(ext_pos as f64)),
            ("external_negatives".into(), Json::num(ext_neg as f64)),
            (
                "rounds_run".into(),
                Json::num(session.query.rounds_run() as f64),
            ),
            ("policy".into(), Json::str(session.policy_label.clone())),
            ("generation".into(), Json::num(session.generation as f64)),
        ]),
    )
}

/// `POST /sessions/{id}/feedback` — applies new marks, retrains (or
/// installs a cached concept), and returns the next ranked page.
fn handle_feedback(daemon: &Daemon, req: &Request, id: u64) -> (u16, Json) {
    let _span = milr_obs::span::enter("serve.feedback");
    let text = match std::str::from_utf8(&req.body) {
        Ok(text) => text,
        Err(_) => return (400, http::error_body("body is not UTF-8")),
    };
    let body = match Json::parse(if text.trim().is_empty() { "{}" } else { text }) {
        Ok(body) => body,
        Err(msg) => return (400, http::error_body(format!("invalid JSON: {msg}"))),
    };
    let positives = match body_indices(&body, "positives") {
        Ok(list) => list,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let negatives = match body_indices(&body, "negatives") {
        Ok(list) => list,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let k = match body.get("k") {
        None => daemon.options.default_page,
        Some(value) => match value.as_u64() {
            Some(k) => k as usize,
            None => return (400, http::error_body("k must be a non-negative integer")),
        },
    };
    let aggregator = match body_aggregator(&body) {
        Ok(aggregator) => aggregator,
        Err(msg) => return (400, http::error_body(msg)),
    };
    let epoch = daemon.epoch();
    let backend = match epoch.feature_backend() {
        Ok(backend) => backend,
        Err(msg) => return (500, http::error_body(msg)),
    };
    // Featurise region marks before touching the session: a 400 here
    // must leave the session exactly as it was.
    let positive_region_bags =
        match decode_region_uploads(&body, "positive_regions", &*backend, &daemon.config) {
            Ok(bags) => bags,
            Err(msg) => return (400, http::error_body(msg)),
        };
    let negative_region_bags =
        match decode_region_uploads(&body, "negative_regions", &*backend, &daemon.config) {
            Ok(bags) => bags,
            Err(msg) => return (400, http::error_body(msg)),
        };
    let uploads_regions = !positive_region_bags.is_empty() || !negative_region_bags.is_empty();
    let Some(handle) = daemon.sessions.get(id) else {
        return (404, http::error_body("no such session"));
    };
    let mut session = handle.lock().expect("session mutex");
    // Priority shedding, checked *before* the marks mutate the session
    // so a shed request can be retried verbatim. Feedback is cheap only
    // when the prospective example set already has a cached concept —
    // region marks have no index identity, so they always retrain.
    if priority_overloaded(daemon) {
        let would_hit = !uploads_regions && session.query.external_example_counts() == (0, 0) && {
            let mut pos = session.query.positives().to_vec();
            pos.extend_from_slice(&positives);
            let mut neg = session.query.negatives().to_vec();
            neg.extend_from_slice(&negatives);
            let key = ConceptKey::new(&pos, &neg, &session.policy_label, session.generation);
            daemon
                .cache
                .lock()
                .expect("concept cache mutex")
                .contains(&key)
        };
        if !would_hit {
            return priority_shed_response(daemon);
        }
    }
    if let Err(err) = session.query.add_positives(&positives) {
        return core_error_response(&err);
    }
    if let Err(err) = session.query.add_negatives(&negatives) {
        return core_error_response(&err);
    }
    for bag in positive_region_bags {
        if let Err(err) = session.query.add_positive_bag(bag) {
            return core_error_response(&err);
        }
    }
    for bag in negative_region_bags {
        if let Err(err) = session.query.add_negative_bag(bag) {
            return core_error_response(&err);
        }
    }
    // Sessions whose examples are all database indices share concepts
    // through the cache; uploads have no index identity, so sessions
    // holding external bags always train for themselves.
    let cacheable = session.query.external_example_counts() == (0, 0);
    let mut cache_hit = false;
    let mut warm = false;
    if cacheable {
        let key = ConceptKey::new(
            session.query.positives(),
            session.query.negatives(),
            &session.policy_label,
            session.generation,
        );
        let cached = daemon.cache.lock().expect("concept cache mutex").get(&key);
        match cached {
            Some(hit) => {
                if let Err(err) = session.query.adopt_concept(hit.concept, hit.nldd) {
                    return core_error_response(&err);
                }
                cache_hit = true;
            }
            None => {
                warm = session.query.warm_ready();
                if let Err(err) = session.query.train_round() {
                    return core_error_response(&err);
                }
                // A warm concept depends on this session's training
                // history, not just the example sets — caching it would
                // let one session's trajectory leak into every other
                // request with the same marks. Only cold (history-free)
                // rounds feed the shared cache.
                if !warm {
                    daemon.cache.lock().expect("concept cache mutex").insert(
                        key,
                        CachedConcept {
                            concept: session.query.shared_concept().expect("just trained"),
                            nldd: session.query.nldd(),
                        },
                    );
                }
            }
        }
    } else {
        warm = session.query.warm_ready();
        if let Err(err) = session.query.train_round() {
            return core_error_response(&err);
        }
    }
    let ranking = match session
        .query
        .rank(&RankRequest::pool().top(k).aggregator(aggregator))
    {
        Ok(ranking) => ranking,
        Err(err) => return core_error_response(&err),
    };
    (
        200,
        Json::Obj(vec![
            ("id".into(), Json::num(id as f64)),
            ("round".into(), Json::num(session.query.rounds_run() as f64)),
            ("nldd".into(), Json::Num(session.query.nldd())),
            ("cache_hit".into(), Json::Bool(cache_hit)),
            ("warm".into(), Json::Bool(warm)),
            ("aggregator".into(), Json::str(aggregator.label())),
            ("ranking".into(), ranking_json(&ranking)),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_specs_parse_like_the_cli() {
        assert!(matches!(
            parse_policy("original"),
            Ok(WeightPolicy::OriginalDd)
        ));
        assert!(matches!(
            parse_policy("identical"),
            Ok(WeightPolicy::Identical)
        ));
        assert!(
            matches!(parse_policy("alpha:0.3"), Ok(WeightPolicy::AlphaHack { alpha }) if alpha == 0.3)
        );
        assert!(
            matches!(parse_policy("constraint:0.5"), Ok(WeightPolicy::SumConstraint { beta }) if beta == 0.5)
        );
        assert!(parse_policy("nonsense").is_err());
        assert!(parse_policy("alpha:x").is_err());
    }

    #[test]
    fn default_options_are_sane() {
        let options = ServeOptions::default();
        assert!(options.workers >= 1);
        assert!(options.queue_depth >= options.workers);
        assert!(options.max_body >= 1024 * 1024);
        assert!(!options.debug_endpoints);
    }
}
