//! The LRU concept cache.
//!
//! Diverse Density training is the dominant per-request cost, yet its
//! output depends only on the example bags and the weight policy. Two
//! requests marking the same images under the same policy therefore
//! learn the *same* concept (training is deterministic for any thread
//! count — a PR 1 invariant), so the daemon caches trained concepts
//! keyed by `(sorted positives, sorted negatives, policy)` and skips
//! retraining entirely on a repeat. Sessions holding external (uploaded)
//! example bags bypass the cache — uploads have no index identity.

use std::collections::HashMap;
use std::sync::Arc;

use milr_mil::Concept;

/// Cache key: the exact example sets, policy, and snapshot generation
/// that determine training.
///
/// Index lists are sorted and deduplicated on construction because
/// training is order-insensitive at the set level only through the
/// multi-start union — two mark orders that produce the same *sets* must
/// hit the same entry. The generation pins the key to one snapshot
/// epoch: after a hot reload the same indices may name different images,
/// so pre-reload concepts must never answer post-reload requests.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConceptKey {
    positives: Vec<usize>,
    negatives: Vec<usize>,
    policy: String,
    generation: u64,
}

impl ConceptKey {
    /// Builds the canonical key for an example configuration under one
    /// snapshot generation.
    pub fn new(positives: &[usize], negatives: &[usize], policy: &str, generation: u64) -> Self {
        let canonical = |list: &[usize]| {
            let mut v = list.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        };
        Self {
            positives: canonical(positives),
            negatives: canonical(negatives),
            policy: policy.to_string(),
            generation,
        }
    }
}

/// A cached training outcome: the concept plus its `−log DD`.
#[derive(Debug, Clone)]
pub struct CachedConcept {
    /// The trained concept (reference-counted; cloning is pointer-cheap).
    pub concept: Arc<Concept>,
    /// `−log DD` recorded when the concept was trained.
    pub nldd: f64,
}

/// A least-recently-used cache of trained concepts.
///
/// Eviction scans for the oldest stamp — O(capacity), paid only on
/// insertion past capacity, which is noise next to the training run the
/// insertion just performed.
#[derive(Debug)]
pub struct ConceptCache {
    map: HashMap<ConceptKey, (CachedConcept, u64)>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl ConceptCache {
    /// Creates a cache holding at most `capacity` concepts (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a key, refreshing its recency and counting the outcome.
    pub fn get(&mut self, key: &ConceptKey) -> Option<CachedConcept> {
        self.clock += 1;
        match self.map.get_mut(key) {
            Some((value, stamp)) => {
                *stamp = self.clock;
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether a key is present, without refreshing recency or counting
    /// a hit/miss — the priority-shed check peeks at cache membership to
    /// classify a request as cheap or train-heavy, and a peek must not
    /// distort the hit-rate statistics or the LRU order.
    pub fn contains(&self, key: &ConceptKey) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts a trained concept, evicting the least-recently-used entry
    /// when full.
    pub fn insert(&mut self, key: ConceptKey, value: CachedConcept) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.clock));
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookup hits since start.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses since start.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concept(v: f64) -> CachedConcept {
        CachedConcept {
            concept: Arc::new(Concept::new(vec![v], vec![1.0])),
            nldd: v,
        }
    }

    #[test]
    fn keys_canonicalise_order_and_duplicates() {
        let a = ConceptKey::new(&[3, 1, 2], &[9, 9, 4], "c0.5", 0);
        let b = ConceptKey::new(&[1, 2, 3, 3], &[4, 9], "c0.5", 0);
        assert_eq!(a, b);
        assert_ne!(a, ConceptKey::new(&[1, 2, 3], &[4, 9], "identical", 0));
        assert_ne!(a, ConceptKey::new(&[1, 2], &[3, 4, 9], "c0.5", 0));
        assert_ne!(
            a,
            ConceptKey::new(&[3, 1, 2], &[9, 9, 4], "c0.5", 1),
            "a reload bumps the generation and must miss"
        );
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let mut cache = ConceptCache::new(4);
        let key = ConceptKey::new(&[0], &[1], "p", 0);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), concept(1.0));
        let hit = cache.get(&key).expect("cached");
        assert_eq!(hit.nldd, 1.0);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = ConceptCache::new(2);
        let k1 = ConceptKey::new(&[1], &[], "p", 0);
        let k2 = ConceptKey::new(&[2], &[], "p", 0);
        let k3 = ConceptKey::new(&[3], &[], "p", 0);
        cache.insert(k1.clone(), concept(1.0));
        cache.insert(k2.clone(), concept(2.0));
        // Touch k1 so k2 is the LRU entry.
        assert!(cache.get(&k1).is_some());
        cache.insert(k3.clone(), concept(3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&k1).is_some(), "recently used entry survives");
        assert!(cache.get(&k2).is_none(), "LRU entry evicted");
        assert!(cache.get(&k3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ConceptCache::new(0);
        let key = ConceptKey::new(&[1], &[], "p", 0);
        cache.insert(key.clone(), concept(1.0));
        assert!(cache.is_empty());
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut cache = ConceptCache::new(2);
        let k1 = ConceptKey::new(&[1], &[], "p", 0);
        let k2 = ConceptKey::new(&[2], &[], "p", 0);
        cache.insert(k1.clone(), concept(1.0));
        cache.insert(k2.clone(), concept(2.0));
        cache.insert(k1.clone(), concept(9.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&k1).unwrap().nldd, 9.0);
        assert!(cache.get(&k2).is_some());
    }
}
