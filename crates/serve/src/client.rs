//! A tiny blocking HTTP/1.1 client — just enough to drive the daemon
//! from the integration tests and the `loadgen` bench harness. The
//! free functions ([`request`], [`get`], [`post_json`]) speak one
//! request per connection, mirroring the single-node server's
//! `Connection: close`; [`Connection`] is the keep-alive counterpart
//! the cluster coordinator pools for its worker fan-out — one
//! persistent socket per worker instead of a dial per scatter.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::Json;

/// A completed exchange: status code and raw body bytes.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Parses the body as JSON.
    ///
    /// # Errors
    /// A description of invalid UTF-8 or malformed JSON.
    pub fn json(&self) -> Result<Json, String> {
        let text = std::str::from_utf8(&self.body).map_err(|e| e.to_string())?;
        Json::parse(text)
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
/// A description of any connect, write, read, or parse failure.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> Result<Response, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    let body = body.unwrap_or(&[]);
    // One buffer, one write: a head-then-body pair of small writes
    // interacts with Nagle + delayed ACK for a ~40ms stall per request.
    let mut request = format!(
        "{method} {target} HTTP/1.1\r\nHost: milrd\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    )
    .into_bytes();
    request.extend_from_slice(body);
    stream
        .write_all(&request)
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    parse_response(&raw)
}

/// `GET` convenience wrapper.
///
/// # Errors
/// See [`request`].
pub fn get(addr: SocketAddr, target: &str, timeout: Duration) -> Result<Response, String> {
    request(addr, "GET", target, None, timeout)
}

/// `POST` convenience wrapper with a JSON body.
///
/// # Errors
/// See [`request`].
pub fn post_json(
    addr: SocketAddr,
    target: &str,
    body: &Json,
    timeout: Duration,
) -> Result<Response, String> {
    request(addr, "POST", target, Some(body.dump().as_bytes()), timeout)
}

/// Per-exchange accounting from [`Connection::request_with_info`].
///
/// Separates connection-establishment cost from request service time:
/// a dial that loses a SYN to a full accept backlog retransmits on an
/// exponential clock (1s, 2s, ...), which used to masquerade as a
/// multi-second *request* latency outlier in the loadgen percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeInfo {
    /// TCP dials spent on this exchange (0 = pure socket reuse).
    pub dials: u64,
    /// Time spent establishing connections (dial + socket setup),
    /// excluded from the request's service time.
    pub connect: Duration,
    /// Whether a stale pooled socket forced the single redial-and-retry.
    pub retried: bool,
}

/// A persistent HTTP/1.1 keep-alive connection.
///
/// Requests are sent with `Connection: keep-alive` and responses are
/// read by `Content-Length` (not to EOF), so the socket survives
/// across exchanges. The server remains free to close: a response
/// carrying `Connection: close` (or no `Content-Length`) drops the
/// socket after the body, and the next request redials. A request that
/// fails on a *reused* socket — the server may have closed it between
/// exchanges, which is indistinguishable from a stale socket until the
/// write or read fails — is retried exactly once on a fresh dial;
/// failures on a fresh socket surface immediately.
#[derive(Debug)]
pub struct Connection {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
    dials: u64,
    /// Connect time spent inside the current `request*` call.
    connect_spent: Duration,
}

impl Connection {
    /// A connection to `addr`; nothing is dialled until the first
    /// request.
    pub fn new(addr: SocketAddr, timeout: Duration) -> Self {
        Self {
            addr,
            timeout,
            stream: None,
            dials: 0,
            connect_spent: Duration::ZERO,
        }
    }

    /// The remote address this connection dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many TCP dials the connection has made — the socket-reuse
    /// regression tests pin this to 1 across N sequential requests.
    pub fn dials(&self) -> u64 {
        self.dials
    }

    /// Drops the cached socket (the next request redials).
    pub fn reset(&mut self) {
        self.stream = None;
    }

    /// Sends one request and reads the full response, reusing the
    /// cached socket when one is alive.
    ///
    /// # Errors
    /// A description of any connect, write, read, or parse failure
    /// (after the single stale-socket retry described on
    /// [`Connection`]).
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&[u8]>,
    ) -> Result<Response, String> {
        self.request_with_info(method, target, body)
            .map(|(response, _)| response)
    }

    /// Like [`Self::request`], but also reports how the exchange was
    /// carried: dials spent, time lost to connection establishment, and
    /// whether the stale-socket retry fired. Load harnesses subtract
    /// `info.connect` from the wall time so SYN retransmits against a
    /// busy accept backlog don't pollute the service-latency tail.
    ///
    /// # Errors
    /// See [`Self::request`].
    pub fn request_with_info(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&[u8]>,
    ) -> Result<(Response, ExchangeInfo), String> {
        let dials_before = self.dials;
        self.connect_spent = Duration::ZERO;
        let reused = self.stream.is_some();
        let mut retried = false;
        let result = match self.exchange(method, target, body) {
            Err(e) if reused => {
                // The server may have closed the pooled socket between
                // requests; retry once on a fresh dial.
                self.stream = None;
                retried = true;
                self.exchange(method, target, body)
                    .map_err(|retry| format!("{retry} (after stale keep-alive socket: {e})"))
            }
            other => other,
        };
        result.map(|response| {
            (
                response,
                ExchangeInfo {
                    dials: self.dials - dials_before,
                    connect: self.connect_spent,
                    retried,
                },
            )
        })
    }

    /// `GET` convenience wrapper.
    ///
    /// # Errors
    /// See [`Self::request`].
    pub fn get(&mut self, target: &str) -> Result<Response, String> {
        self.request("GET", target, None)
    }

    /// `GET` with per-exchange accounting.
    ///
    /// # Errors
    /// See [`Self::request_with_info`].
    pub fn get_with_info(&mut self, target: &str) -> Result<(Response, ExchangeInfo), String> {
        self.request_with_info("GET", target, None)
    }

    /// `POST` convenience wrapper with a JSON body.
    ///
    /// # Errors
    /// See [`Self::request`].
    pub fn post_json(&mut self, target: &str, body: &Json) -> Result<Response, String> {
        self.request("POST", target, Some(body.dump().as_bytes()))
    }

    fn exchange(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&[u8]>,
    ) -> Result<Response, String> {
        if self.stream.is_none() {
            let begin = std::time::Instant::now();
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
                .map_err(|e| format!("connect: {e}"))?;
            stream
                .set_read_timeout(Some(self.timeout))
                .map_err(|e| e.to_string())?;
            stream
                .set_write_timeout(Some(self.timeout))
                .map_err(|e| e.to_string())?;
            stream.set_nodelay(true).map_err(|e| e.to_string())?;
            self.stream = Some(stream);
            self.dials += 1;
            self.connect_spent += begin.elapsed();
        }
        let stream = self.stream.as_mut().expect("stream just ensured");
        let body = body.unwrap_or(&[]);
        // One buffer, one write — on a reused keep-alive socket a
        // small head write followed by a small body write hits the
        // Nagle/delayed-ACK interaction for a ~40ms stall per exchange.
        let mut request = format!(
            "{method} {target} HTTP/1.1\r\nHost: milrd\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len(),
        )
        .into_bytes();
        request.extend_from_slice(body);
        let result = stream
            .write_all(&request)
            .map_err(|e| format!("write: {e}"))
            .and_then(|()| read_keep_alive_response(stream));
        match result {
            Ok((response, close)) => {
                if close {
                    self.stream = None;
                }
                Ok(response)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Reads one `Content-Length`-framed response off a keep-alive socket.
/// Returns the response plus whether the server asked to close (also
/// set when the response carries no `Content-Length`, in which case the
/// body is read to EOF exactly like the one-shot client).
fn read_keep_alive_response(stream: &mut TcpStream) -> Result<(Response, bool), String> {
    let mut raw = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-response head".into());
        }
        raw.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "response head is not UTF-8")?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    let mut close = false;
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = Some(
                value
                    .parse()
                    .map_err(|_| format!("invalid Content-Length {value:?}"))?,
            );
        } else if name == "connection" {
            close = value.eq_ignore_ascii_case("close");
        }
    }
    let mut body = raw[head_end + 4..].to_vec();
    match content_length {
        Some(length) => {
            while body.len() < length {
                let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
                if n == 0 {
                    return Err("connection closed mid-response body".into());
                }
                body.extend_from_slice(&chunk[..n]);
            }
            if body.len() > length {
                return Err("body longer than Content-Length".into());
            }
            Ok((Response { status, body }, close))
        }
        None => {
            // No framing: the exchange degenerates to read-to-EOF and
            // the socket cannot be reused.
            stream
                .read_to_end(&mut body)
                .map_err(|e| format!("read: {e}"))?;
            Ok((Response { status, body }, true))
        }
    }
}

fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("no header terminator in response")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "response head is not UTF-8")?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    Ok(Response {
        status,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_response() {
        let raw = b"HTTP/1.1 201 Created\r\nContent-Length: 9\r\n\r\n{\"id\": 1}";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 201);
        assert_eq!(
            response.json().unwrap().get("id").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 unknown\r\n\r\n").is_err());
    }
}
