//! A tiny blocking HTTP/1.1 client — just enough to drive the daemon
//! from the integration tests and the `loadgen` bench harness. One
//! request per connection, mirroring the server's `Connection: close`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::Json;

/// A completed exchange: status code and raw body bytes.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Parses the body as JSON.
    ///
    /// # Errors
    /// A description of invalid UTF-8 or malformed JSON.
    pub fn json(&self) -> Result<Json, String> {
        let text = std::str::from_utf8(&self.body).map_err(|e| e.to_string())?;
        Json::parse(text)
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
/// A description of any connect, write, read, or parse failure.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> Result<Response, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: milrd\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    parse_response(&raw)
}

/// `GET` convenience wrapper.
///
/// # Errors
/// See [`request`].
pub fn get(addr: SocketAddr, target: &str, timeout: Duration) -> Result<Response, String> {
    request(addr, "GET", target, None, timeout)
}

/// `POST` convenience wrapper with a JSON body.
///
/// # Errors
/// See [`request`].
pub fn post_json(
    addr: SocketAddr,
    target: &str,
    body: &Json,
    timeout: Duration,
) -> Result<Response, String> {
    request(addr, "POST", target, Some(body.dump().as_bytes()), timeout)
}

fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("no header terminator in response")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "response head is not UTF-8")?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    Ok(Response {
        status,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_response() {
        let raw = b"HTTP/1.1 201 Created\r\nContent-Length: 9\r\n\r\n{\"id\": 1}";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 201);
        assert_eq!(
            response.json().unwrap().get("id").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 unknown\r\n\r\n").is_err());
    }
}
