//! Request metrics: per-endpoint counters and latency histograms, plus
//! the daemon-wide gauges (`queue depth`, shed counts) that the accept
//! loop updates lock-free.
//!
//! `GET /metrics` serialises the whole structure as JSON. Latency is
//! histogrammed into fixed log-spaced microsecond buckets — coarse, but
//! allocation-free and cheap enough to record on every request.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Upper bounds (µs) of the latency buckets; the last bucket is
/// unbounded.
const BUCKET_BOUNDS_US: [u64; 14] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];

/// A fixed-bucket latency histogram (microseconds).
#[derive(Debug, Default, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKET_BOUNDS_US.len() + 1],
    total: u64,
    sum_us: u64,
    max_us: u64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&mut self, us: u64) {
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// An upper bound (µs) on the `q`-quantile (0 < q ≤ 1): the bound of
    /// the first bucket whose cumulative count reaches it. The unbounded
    /// tail reports the exact observed maximum.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return BUCKET_BOUNDS_US.get(i).copied().unwrap_or(self.max_us);
            }
        }
        self.max_us
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::num(self.total as f64)),
            ("mean_us".into(), Json::num(self.mean_us())),
            ("max_us".into(), Json::num(self.max_us as f64)),
            (
                "p50_us".into(),
                Json::num(self.quantile_upper_bound(0.50) as f64),
            ),
            (
                "p90_us".into(),
                Json::num(self.quantile_upper_bound(0.90) as f64),
            ),
            (
                "p99_us".into(),
                Json::num(self.quantile_upper_bound(0.99) as f64),
            ),
        ])
    }
}

/// Counters for one endpoint.
#[derive(Debug, Default, Clone)]
struct EndpointStats {
    requests: u64,
    status_2xx: u64,
    status_4xx: u64,
    status_5xx: u64,
    latency: LatencyHistogram,
}

/// Daemon-wide metrics registry.
///
/// The connection counters satisfy a conservation law the chaos suite
/// checks after quiescence: every connection admitted to the queue is
/// accounted for exactly once, so
///
/// ```text
/// accepted_total == completed_total + read_error_total
///                   + closed_total + deadline_shed_total
/// ```
///
/// (`shed_total` counts connections refused *before* admission and sits
/// outside the identity.)
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: Mutex<BTreeMap<&'static str, EndpointStats>>,
    /// Connections admitted to the accept queue.
    pub accepted_total: AtomicU64,
    /// Admitted connections that were read, routed, and answered.
    pub completed_total: AtomicU64,
    /// Admitted connections whose request could not be read (malformed,
    /// timed out, oversized) — each still receives an HTTP error status.
    pub read_error_total: AtomicU64,
    /// Admitted connections the peer closed before sending any bytes.
    pub closed_total: AtomicU64,
    /// Connections refused with `503` because the accept queue was full.
    pub shed_total: AtomicU64,
    /// Requests refused with `503` because they overstayed the handle
    /// deadline while queued.
    pub deadline_shed_total: AtomicU64,
    /// Current accept-queue depth (gauge).
    pub queue_depth: AtomicUsize,
    /// High-water mark of the accept queue.
    pub queue_peak: AtomicUsize,
}

impl Metrics {
    /// Records one handled request.
    pub fn record(&self, endpoint: &'static str, status: u16, us: u64) {
        let mut endpoints = self.endpoints.lock().expect("metrics mutex");
        let stats = endpoints.entry(endpoint).or_default();
        stats.requests += 1;
        match status {
            200..=299 => stats.status_2xx += 1,
            400..=499 => stats.status_4xx += 1,
            _ => stats.status_5xx += 1,
        }
        stats.latency.record(us);
    }

    /// Updates the queue-depth gauge (and its high-water mark).
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Whether the connection conservation law holds right now (it is
    /// only guaranteed at quiescence — in-flight connections have been
    /// accepted but not yet resolved).
    pub fn connections_balanced(&self) -> bool {
        let accepted = self.accepted_total.load(Ordering::Relaxed);
        let resolved = self.completed_total.load(Ordering::Relaxed)
            + self.read_error_total.load(Ordering::Relaxed)
            + self.closed_total.load(Ordering::Relaxed)
            + self.deadline_shed_total.load(Ordering::Relaxed);
        accepted == resolved
    }

    /// Total requests recorded across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints
            .lock()
            .expect("metrics mutex")
            .values()
            .map(|s| s.requests)
            .sum()
    }

    /// Serialises the per-endpoint section as JSON.
    pub fn endpoints_json(&self) -> Json {
        let endpoints = self.endpoints.lock().expect("metrics mutex");
        Json::Obj(
            endpoints
                .iter()
                .map(|(name, stats)| {
                    (
                        (*name).to_string(),
                        Json::Obj(vec![
                            ("requests".into(), Json::num(stats.requests as f64)),
                            ("status_2xx".into(), Json::num(stats.status_2xx as f64)),
                            ("status_4xx".into(), Json::num(stats.status_4xx as f64)),
                            ("status_5xx".into(), Json::num(stats.status_5xx as f64)),
                            ("latency".into(), stats.latency.to_json()),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_quantiles_and_mean() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        for us in [50, 80, 200, 400, 900, 9_000, 40_000, 2_000_000, 9_999_999] {
            h.record(us);
        }
        assert_eq!(h.count(), 9);
        // 5th of 9 observations (rank ceil(0.5*9)=5) lands in the ≤1000 bucket.
        assert_eq!(h.quantile_upper_bound(0.5), 1_000);
        // The unbounded tail reports the observed maximum.
        assert_eq!(h.quantile_upper_bound(1.0), 9_999_999);
        assert!(h.mean_us() > 0.0);
    }

    #[test]
    fn record_classifies_statuses() {
        let m = Metrics::default();
        m.record("/rank", 200, 100);
        m.record("/rank", 404, 50);
        m.record("/rank", 503, 10);
        m.record("/healthz", 200, 5);
        assert_eq!(m.total_requests(), 4);
        let json = m.endpoints_json();
        let rank = json.get("/rank").expect("/rank section");
        assert_eq!(rank.get("requests").unwrap().as_u64(), Some(3));
        assert_eq!(rank.get("status_2xx").unwrap().as_u64(), Some(1));
        assert_eq!(rank.get("status_4xx").unwrap().as_u64(), Some(1));
        assert_eq!(rank.get("status_5xx").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn connection_conservation_law() {
        let m = Metrics::default();
        assert!(m.connections_balanced(), "empty registry balances");
        m.accepted_total.fetch_add(5, Ordering::Relaxed);
        assert!(!m.connections_balanced(), "in-flight connections imbalance");
        m.completed_total.fetch_add(2, Ordering::Relaxed);
        m.read_error_total.fetch_add(1, Ordering::Relaxed);
        m.closed_total.fetch_add(1, Ordering::Relaxed);
        m.deadline_shed_total.fetch_add(1, Ordering::Relaxed);
        assert!(m.connections_balanced(), "every outcome counted once");
        // Pre-admission sheds sit outside the identity.
        m.shed_total.fetch_add(10, Ordering::Relaxed);
        assert!(m.connections_balanced());
    }

    #[test]
    fn queue_gauge_tracks_peak() {
        let m = Metrics::default();
        m.set_queue_depth(3);
        m.set_queue_depth(7);
        m.set_queue_depth(1);
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 1);
        assert_eq!(m.queue_peak.load(Ordering::Relaxed), 7);
    }
}
