//! Request metrics on the unified `milr-obs` registry: per-endpoint
//! counters and latency histograms, plus the daemon-wide connection
//! counters and queue gauges the accept loop updates lock-free.
//!
//! Each daemon owns its own [`obs::Registry`] (parallel test servers in
//! one process must not share counters); engine metrics (solver, ranking,
//! preprocessing) live in the process-wide `obs::global()` registry and
//! are appended to the Prometheus rendering. `GET /metrics` serialises
//! the same handles as JSON in the shape the chaos/loadgen suites assert,
//! and as Prometheus text when asked (`?format=prometheus`).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use milr_obs::{self as obs, labelled, HistogramSnapshot};

use crate::json::Json;

/// Serialises a latency snapshot in the fixed JSON shape the protocol
/// documents (`count`/`mean_us`/`max_us`/`p50_us`/`p90_us`/`p99_us`).
fn latency_json(snap: &HistogramSnapshot) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::num(snap.count() as f64)),
        ("mean_us".into(), Json::num(snap.mean())),
        ("max_us".into(), Json::num(snap.max() as f64)),
        (
            "p50_us".into(),
            Json::num(snap.quantile_upper_bound(0.50) as f64),
        ),
        (
            "p90_us".into(),
            Json::num(snap.quantile_upper_bound(0.90) as f64),
        ),
        (
            "p99_us".into(),
            Json::num(snap.quantile_upper_bound(0.99) as f64),
        ),
    ])
}

/// JSON view of the process-global ranking counters the scatter paths
/// maintain — the quantized screen and the coarse cell index — shared
/// by the single-node daemon and the cluster workers so both expose
/// the same shape under `/metrics`.
#[must_use]
pub fn rank_counters_json() -> Json {
    let get = |name: &str| Json::num(obs::global().counter(name).get() as f64);
    Json::Obj(vec![
        (
            "quant_screened_total".into(),
            get("milr_rank_quant_screened_total"),
        ),
        (
            "quant_rescored_total".into(),
            get("milr_rank_quant_rescored_total"),
        ),
        (
            "threshold_tightenings_total".into(),
            get("milr_rank_threshold_tightenings_total"),
        ),
        (
            "cells_scanned_total".into(),
            get("milr_rank_cells_scanned_total"),
        ),
        (
            "cells_skipped_total".into(),
            get("milr_rank_cells_skipped_total"),
        ),
        (
            "index_fallbacks_total".into(),
            get("milr_rank_index_fallbacks_total"),
        ),
        (
            "batch_dispatch_total".into(),
            get("milr_rank_batch_dispatch_total"),
        ),
        (
            "batch_queries_total".into(),
            get("milr_rank_batch_queries_total"),
        ),
    ])
}

/// JSON view of the process-global training counters, including the
/// warm-start economics: how many retrains were warm-seeded and how
/// many multi-start ascents that skipped relative to cold rounds.
#[must_use]
pub fn train_counters_json() -> Json {
    let get = |name: &str| Json::num(obs::global().counter(name).get() as f64);
    Json::Obj(vec![
        ("runs_total".into(), get("milr_train_runs_total")),
        (
            "warm_starts_total".into(),
            get("milr_train_warm_starts_total"),
        ),
        (
            "warm_rounds_saved_total".into(),
            get("milr_train_warm_rounds_saved_total"),
        ),
    ])
}

/// Registry handles for one endpoint.
#[derive(Debug, Clone)]
struct EndpointStats {
    requests: Arc<obs::Counter>,
    status_2xx: Arc<obs::Counter>,
    status_4xx: Arc<obs::Counter>,
    status_5xx: Arc<obs::Counter>,
    latency: Arc<obs::Histogram>,
}

impl EndpointStats {
    fn register(registry: &obs::Registry, endpoint: &str) -> Self {
        let status = |class: &str| {
            registry.counter(&labelled(
                "milrd_requests_total",
                &[("endpoint", endpoint), ("status", class)],
            ))
        };
        EndpointStats {
            requests: registry.counter(&labelled(
                "milrd_endpoint_requests_total",
                &[("endpoint", endpoint)],
            )),
            status_2xx: status("2xx"),
            status_4xx: status("4xx"),
            status_5xx: status("5xx"),
            latency: registry.histogram(&labelled(
                "milrd_request_latency_us",
                &[("endpoint", endpoint)],
            )),
        }
    }
}

/// Daemon-wide metrics registry.
///
/// The connection counters satisfy a conservation law the chaos suite
/// checks after quiescence: every connection admitted to the queue is
/// accounted for exactly once, so
///
/// ```text
/// accepted_total == completed_total + read_error_total
///                   + closed_total + deadline_shed_total
/// ```
///
/// (`shed_total` counts connections refused *before* admission and sits
/// outside the identity.)
#[derive(Debug)]
pub struct Metrics {
    registry: obs::Registry,
    endpoints: Mutex<BTreeMap<&'static str, EndpointStats>>,
    /// Connections admitted to the accept queue.
    pub accepted_total: Arc<obs::Counter>,
    /// Admitted connections that were read, routed, and answered.
    pub completed_total: Arc<obs::Counter>,
    /// Admitted connections whose request could not be read (malformed,
    /// timed out, oversized) — each still receives an HTTP error status.
    pub read_error_total: Arc<obs::Counter>,
    /// Admitted connections the peer closed before sending any bytes.
    pub closed_total: Arc<obs::Counter>,
    /// Connections refused with `503` because the accept queue was full.
    pub shed_total: Arc<obs::Counter>,
    /// Requests refused with `503` because they overstayed the handle
    /// deadline while queued.
    pub deadline_shed_total: Arc<obs::Counter>,
    /// Requests served on an already-used keep-alive connection (the
    /// second and every later request on one socket). Sits outside the
    /// conservation identity: reuse is per *request*, the identity per
    /// *connection*.
    pub keepalive_reused_total: Arc<obs::Counter>,
    /// Train-heavy requests (uncached rank/feedback) answered `503`
    /// under overload so cheap cached ranks keep flowing. The connection
    /// still resolves normally (the request got a response), so this
    /// also sits outside the conservation identity.
    pub priority_shed_total: Arc<obs::Counter>,
    /// Rank batches dispatched (every batch counts, including singletons
    /// — `batch_size` tells them apart).
    pub batch_formed_total: Arc<obs::Counter>,
    /// Distribution of rank batch sizes (queries per dispatch).
    pub batch_size: Arc<obs::Histogram>,
    /// Current accept-queue depth (gauge).
    pub queue_depth: Arc<obs::Gauge>,
    /// High-water mark of the accept queue.
    pub queue_peak: Arc<obs::Gauge>,
    /// Successful `POST /snapshot/reload` (and watcher-triggered) swaps.
    pub snapshot_reloads_total: Arc<obs::Counter>,
    /// Reload attempts that failed and kept the old epoch serving.
    pub snapshot_reload_failures_total: Arc<obs::Counter>,
    /// Generation of the epoch currently serving (gauge).
    pub snapshot_generation: Arc<obs::Gauge>,
    /// Shard count behind the epoch currently serving (gauge).
    pub snapshot_shards: Arc<obs::Gauge>,
}

impl Default for Metrics {
    fn default() -> Self {
        let registry = obs::Registry::new();
        let outcome =
            |o: &str| registry.counter(&labelled("milrd_connections_total", &[("outcome", o)]));
        Metrics {
            accepted_total: outcome("accepted"),
            completed_total: outcome("completed"),
            read_error_total: outcome("read_error"),
            closed_total: outcome("closed"),
            shed_total: outcome("shed"),
            deadline_shed_total: outcome("deadline_shed"),
            keepalive_reused_total: registry.counter("milrd_keepalive_reused_total"),
            priority_shed_total: registry.counter("milrd_priority_shed_total"),
            batch_formed_total: registry.counter("milrd_batch_formed_total"),
            batch_size: registry.histogram("milrd_batch_size"),
            queue_depth: registry.gauge("milrd_queue_depth"),
            queue_peak: registry.gauge("milrd_queue_peak"),
            snapshot_reloads_total: registry.counter("milrd_snapshot_reloads_total"),
            snapshot_reload_failures_total: registry
                .counter("milrd_snapshot_reload_failures_total"),
            snapshot_generation: registry.gauge("milrd_snapshot_generation"),
            snapshot_shards: registry.gauge("milrd_snapshot_shards"),
            endpoints: Mutex::new(BTreeMap::new()),
            registry,
        }
    }
}

impl Metrics {
    /// The daemon's own registry (connection counters, per-endpoint
    /// series, queue gauges) — what `/metrics?format=prometheus` renders
    /// first.
    pub fn registry(&self) -> &obs::Registry {
        &self.registry
    }

    /// Records one handled request.
    pub fn record(&self, endpoint: &'static str, status: u16, us: u64) {
        let stats = {
            let mut endpoints = self.endpoints.lock().expect("metrics mutex");
            endpoints
                .entry(endpoint)
                .or_insert_with(|| EndpointStats::register(&self.registry, endpoint))
                .clone()
        };
        stats.requests.inc();
        match status {
            200..=299 => stats.status_2xx.inc(),
            400..=499 => stats.status_4xx.inc(),
            _ => stats.status_5xx.inc(),
        }
        stats.latency.record(us);
    }

    /// Updates the queue-depth gauge (and its high-water mark).
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as f64);
        self.queue_peak.set_max(depth as f64);
    }

    /// Whether the connection conservation law holds right now (it is
    /// only guaranteed at quiescence — in-flight connections have been
    /// accepted but not yet resolved).
    pub fn connections_balanced(&self) -> bool {
        let accepted = self.accepted_total.get();
        let resolved = self.completed_total.get()
            + self.read_error_total.get()
            + self.closed_total.get()
            + self.deadline_shed_total.get();
        accepted == resolved
    }

    /// Total requests recorded across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints
            .lock()
            .expect("metrics mutex")
            .values()
            .map(|s| s.requests.get())
            .sum()
    }

    /// Serialises the per-endpoint section as JSON.
    pub fn endpoints_json(&self) -> Json {
        let endpoints = self.endpoints.lock().expect("metrics mutex");
        Json::Obj(
            endpoints
                .iter()
                .map(|(name, stats)| {
                    (
                        (*name).to_string(),
                        Json::Obj(vec![
                            ("requests".into(), Json::num(stats.requests.get() as f64)),
                            (
                                "status_2xx".into(),
                                Json::num(stats.status_2xx.get() as f64),
                            ),
                            (
                                "status_4xx".into(),
                                Json::num(stats.status_4xx.get() as f64),
                            ),
                            (
                                "status_5xx".into(),
                                Json::num(stats.status_5xx.get() as f64),
                            ),
                            ("latency".into(), latency_json(&stats.latency.snapshot())),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_quantiles_and_mean() {
        let h = obs::Histogram::new();
        assert_eq!(h.snapshot().quantile_upper_bound(0.5), 0);
        for us in [
            50u64, 80, 200, 400, 900, 9_000, 40_000, 2_000_000, 9_999_999,
        ] {
            h.record(us);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 9);
        // Rank ceil(0.5*9)=5 is the observation 900; the log-linear bucket
        // estimate stays within one bucket (≤12.5%) of it.
        let p50 = snap.quantile_upper_bound(0.5);
        assert!((900..=1023).contains(&p50), "p50={p50}");
        // The estimate is clamped to the observed maximum.
        assert_eq!(snap.quantile_upper_bound(1.0), 9_999_999);
        assert!(snap.mean() > 0.0);
    }

    #[test]
    fn record_classifies_statuses() {
        let m = Metrics::default();
        m.record("/rank", 200, 100);
        m.record("/rank", 404, 50);
        m.record("/rank", 503, 10);
        m.record("/healthz", 200, 5);
        assert_eq!(m.total_requests(), 4);
        let json = m.endpoints_json();
        let rank = json.get("/rank").expect("/rank section");
        assert_eq!(rank.get("requests").unwrap().as_u64(), Some(3));
        assert_eq!(rank.get("status_2xx").unwrap().as_u64(), Some(1));
        assert_eq!(rank.get("status_4xx").unwrap().as_u64(), Some(1));
        assert_eq!(rank.get("status_5xx").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn connection_conservation_law() {
        let m = Metrics::default();
        assert!(m.connections_balanced(), "empty registry balances");
        m.accepted_total.add(5);
        assert!(!m.connections_balanced(), "in-flight connections imbalance");
        m.completed_total.add(2);
        m.read_error_total.add(1);
        m.closed_total.add(1);
        m.deadline_shed_total.add(1);
        assert!(m.connections_balanced(), "every outcome counted once");
        // Pre-admission sheds sit outside the identity.
        m.shed_total.add(10);
        assert!(m.connections_balanced());
    }

    #[test]
    fn queue_gauge_tracks_peak() {
        let m = Metrics::default();
        m.set_queue_depth(3);
        m.set_queue_depth(7);
        m.set_queue_depth(1);
        assert_eq!(m.queue_depth.get(), 1.0);
        assert_eq!(m.queue_peak.get(), 7.0);
    }

    #[test]
    fn prometheus_rendering_covers_connections_and_endpoints() {
        let m = Metrics::default();
        m.accepted_total.inc();
        m.completed_total.inc();
        m.record("/rank", 200, 1234);
        let text = m.registry().render_prometheus();
        assert!(
            text.contains("milrd_connections_total{outcome=\"accepted\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("milrd_endpoint_requests_total{endpoint=\"/rank\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("milrd_request_latency_us_count{endpoint=\"/rank\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE milrd_request_latency_us histogram"),
            "{text}"
        );
    }
}
