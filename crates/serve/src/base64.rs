//! Standard-alphabet base64, for PGM image bytes carried inside JSON
//! session bodies. Encoding pads with `=`; decoding accepts padded or
//! unpadded input and rejects everything else loudly.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as padded standard base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard base64, padded or unpadded.
///
/// # Errors
/// A description of the first invalid character or length violation.
pub fn decode(text: &str) -> Result<Vec<u8>, String> {
    let trimmed = text.trim_end_matches('=');
    let padding = text.len() - trimmed.len();
    if padding > 2 {
        return Err("too much padding".into());
    }
    // Padding only ever completes a 4-symbol group; "=", "Zg=" and
    // friends are corrupt, not short.
    if padding > 0 && !text.len().is_multiple_of(4) {
        return Err("misplaced padding".into());
    }
    let mut out = Vec::with_capacity(trimmed.len() * 3 / 4);
    let mut acc = 0u32;
    let mut bits = 0u32;
    for (i, c) in trimmed.bytes().enumerate() {
        let v = match c {
            b'A'..=b'Z' => c - b'A',
            b'a'..=b'z' => c - b'a' + 26,
            b'0'..=b'9' => c - b'0' + 52,
            b'+' => 62,
            b'/' => 63,
            _ => return Err(format!("invalid base64 byte {:?} at offset {i}", c as char)),
        };
        acc = (acc << 6) | u32::from(v);
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    if bits >= 6 {
        return Err("dangling base64 unit".into());
    }
    if acc & ((1 << bits) - 1) != 0 {
        return Err("non-zero base64 trailing bits".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_vectors_round_trip() {
        for (plain, encoded) in [
            (&b""[..], ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ] {
            assert_eq!(encode(plain), encoded);
            assert_eq!(decode(encoded).unwrap(), plain);
        }
    }

    #[test]
    fn unpadded_input_decodes() {
        assert_eq!(decode("Zm9vYg").unwrap(), b"foob");
    }

    #[test]
    fn binary_round_trips() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(decode("Zm9v!").is_err());
        assert!(decode("Z").is_err());
        assert!(decode("Zg===").is_err());
        assert!(decode("Zh==").is_err(), "trailing bits must be zero");
        assert!(decode("=").is_err(), "bare padding is corrupt");
        assert!(decode("Zg=").is_err(), "padding must complete a group");
    }
}
