//! Cross-request rank batching: a flat-combining dispatcher.
//!
//! Concurrent `/rank` requests against the same snapshot epoch coalesce
//! into one [`RetrievalDatabase::rank_batch`] traversal. The shape is
//! flat combining rather than a timed window, so a solo request pays
//! **zero** added latency:
//!
//! * every arrival enqueues its query, then takes (or waits for) the
//!   `executing` lock;
//! * the first thread through the lock drains *everything* queued behind
//!   it — including queries that piled up while a previous combiner was
//!   scanning — groups them by `(epoch generation, aggregator)` (a
//!   reload mid-batch must not mix databases, and a min-distance page
//!   must never be scored by a neighbour's logsumexp fold), and runs
//!   one `rank_batch` per group;
//! * threads that find their slot already filled when they acquire the
//!   lock were combined by someone else and return immediately.
//!
//! Batching is a pure traversal amortisation: each query keeps its own
//! top-k bound inside `rank_batch`, so every page is bit-identical to an
//! unbatched `rank` call by construction (proven again by proptest and
//! the over-the-wire e2e suite).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use milr_core::{BatchQuery, CoreError, RankRequest, Ranking, RetrievalDatabase};
use milr_mil::BagAggregator;

use crate::metrics::Metrics;

/// The rendezvous slot one waiting request parks on.
struct Slot {
    result: Mutex<Option<Result<Ranking, CoreError>>>,
    filled: Condvar,
}

/// One queued rank query: what to rank, where, how to fold bags, and
/// who is waiting.
struct PendingRank {
    db: Arc<RetrievalDatabase>,
    generation: u64,
    aggregator: BagAggregator,
    query: BatchQuery,
    threads: usize,
    slot: Arc<Slot>,
}

/// The daemon-wide rank combiner. See the module docs for the protocol.
#[derive(Default)]
pub struct RankBatcher {
    pending: Mutex<Vec<PendingRank>>,
    executing: Mutex<()>,
}

impl RankBatcher {
    /// Creates an empty batcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ranks `query` over `db` (scope: all images) under `aggregator`,
    /// combining with any concurrent callers on the same epoch
    /// `generation` *and* the same aggregator — two requests that fold
    /// bags differently must never share a `rank_batch` traversal.
    /// Blocks until the result is available; bit-identical to
    /// `db.rank(&query.concept, &RankRequest::all().top(k).aggregator(a))`.
    ///
    /// # Errors
    /// Whatever the underlying ranking call reports.
    pub fn rank(
        &self,
        db: Arc<RetrievalDatabase>,
        generation: u64,
        aggregator: BagAggregator,
        query: BatchQuery,
        threads: usize,
        metrics: &Metrics,
    ) -> Result<Ranking, CoreError> {
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            filled: Condvar::new(),
        });
        self.pending
            .lock()
            .expect("batch pending mutex")
            .push(PendingRank {
                db,
                generation,
                aggregator,
                query,
                threads,
                slot: Arc::clone(&slot),
            });
        {
            // Whoever holds this lock is the combiner; everyone else
            // queues behind it, and their queries are drained by it.
            let _combine = self.executing.lock().expect("batch executing mutex");
            let mut result = slot.result.lock().expect("batch slot mutex");
            if result.is_none() {
                // Not combined by a predecessor — this thread combines.
                drop(result);
                let drained =
                    std::mem::take(&mut *self.pending.lock().expect("batch pending mutex"));
                execute(drained, metrics);
                result = slot.result.lock().expect("batch slot mutex");
            }
            if let Some(outcome) = result.take() {
                return outcome;
            }
        }
        // Extremely defensive: the combiner that drained our entry fills
        // the slot before releasing `executing`, so reaching here means
        // a spurious wake pattern — wait on the condvar until filled.
        let mut result = slot.result.lock().expect("batch slot mutex");
        loop {
            if let Some(outcome) = result.take() {
                return outcome;
            }
            result = slot.filled.wait(result).expect("batch slot mutex");
        }
    }
}

/// Runs the drained queries: one `rank_batch` per `(epoch generation,
/// aggregator)` pair (ascending generation, then aggregator declaration
/// order, for determinism), then fills every slot.
fn execute(drained: Vec<PendingRank>, metrics: &Metrics) {
    if drained.is_empty() {
        return;
    }
    let mut groups: HashMap<(u64, BagAggregator), Vec<PendingRank>> = HashMap::new();
    for item in drained {
        groups
            .entry((item.generation, item.aggregator))
            .or_default()
            .push(item);
    }
    let agg_order = |a: BagAggregator| {
        BagAggregator::ALL
            .iter()
            .position(|&x| x == a)
            .expect("every aggregator is listed in ALL")
    };
    let mut keys: Vec<(u64, BagAggregator)> = groups.keys().copied().collect();
    keys.sort_unstable_by_key(|&(generation, aggregator)| (generation, agg_order(aggregator)));
    for key in keys {
        let group = groups.remove(&key).expect("grouped");
        let (_, aggregator) = key;
        metrics.batch_formed_total.inc();
        metrics.batch_size.record(group.len() as u64);
        let db = Arc::clone(&group[0].db);
        let threads = group[0].threads;
        let queries: Vec<BatchQuery> = group.iter().map(|item| item.query.clone()).collect();
        let request = RankRequest::all().threads(threads).aggregator(aggregator);
        match db.rank_batch(&queries, &request) {
            Ok(rankings) => {
                for (item, ranking) in group.into_iter().zip(rankings) {
                    fill(&item.slot, Ok(ranking));
                }
            }
            // A batch-level failure (cannot happen for the daemon's
            // all-images scope, but the API allows it) falls back to
            // per-query ranking so every waiter gets its own error.
            Err(_) => {
                for item in group {
                    let mut single = RankRequest::all()
                        .threads(item.threads)
                        .aggregator(item.aggregator);
                    single.top_k = item.query.top_k;
                    let outcome = item.db.rank(&item.query.concept, &single);
                    fill(&item.slot, outcome);
                }
            }
        }
    }
}

fn fill(slot: &Slot, outcome: Result<Ranking, CoreError>) {
    *slot.result.lock().expect("batch slot mutex") = Some(outcome);
    slot.filled.notify_one();
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_mil::{Bag, Concept};

    fn test_db() -> Arc<RetrievalDatabase> {
        let bags: Vec<Bag> = (0..12)
            .map(|i| {
                Bag::new(vec![
                    vec![i as f32, (i * 3 % 7) as f32],
                    vec![(i % 5) as f32, (11 - i) as f32],
                ])
                .unwrap()
            })
            .collect();
        let labels = (0..12).map(|i| i % 3).collect();
        Arc::new(RetrievalDatabase::from_bags(bags, labels).unwrap())
    }

    fn query_on(db: &RetrievalDatabase, point: Vec<f64>, k: usize) -> BatchQuery {
        let _ = db;
        BatchQuery {
            concept: Arc::new(Concept::new(point, vec![1.0, 1.0])),
            top_k: Some(k),
        }
    }

    #[test]
    fn solo_rank_is_a_singleton_batch_with_exact_counters() {
        let db = test_db();
        let batcher = RankBatcher::new();
        let metrics = Metrics::default();
        let query = query_on(&db, vec![2.0, 3.0], 4);
        let expected = db
            .rank(&query.concept, &RankRequest::all().top(4).threads(1))
            .unwrap();
        let got = batcher
            .rank(
                Arc::clone(&db),
                7,
                BagAggregator::MinDistance,
                query,
                1,
                &metrics,
            )
            .unwrap();
        assert_eq!(got, expected);
        assert_eq!(metrics.batch_formed_total.get(), 1);
        let sizes = metrics.batch_size.snapshot();
        assert_eq!(sizes.count(), 1);
        assert_eq!(sizes.max(), 1);
    }

    #[test]
    fn concurrent_ranks_match_sequential_and_batch_counters_balance() {
        let db = test_db();
        let batcher = Arc::new(RankBatcher::new());
        let metrics = Arc::new(Metrics::default());
        let clients = 8usize;
        let barrier = Arc::new(std::sync::Barrier::new(clients));
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let db = Arc::clone(&db);
                let batcher = Arc::clone(&batcher);
                let metrics = Arc::clone(&metrics);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let query = BatchQuery {
                        concept: Arc::new(Concept::new(
                            vec![c as f64, (c * 2) as f64],
                            vec![1.0, 1.0],
                        )),
                        top_k: Some(1 + c % 4),
                    };
                    let expected = db
                        .rank(
                            &query.concept,
                            &RankRequest::all().top(1 + c % 4).threads(1),
                        )
                        .unwrap();
                    let got = batcher
                        .rank(db, 3, BagAggregator::MinDistance, query, 1, &metrics)
                        .unwrap();
                    assert_eq!(got, expected, "client {c}");
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        // However the threads interleaved, every query was ranked in
        // exactly one batch: the recorded sizes sum to the client count.
        let sizes = metrics.batch_size.snapshot();
        assert_eq!(sizes.count(), metrics.batch_formed_total.get());
        assert!(metrics.batch_formed_total.get() >= 1);
        assert!(metrics.batch_formed_total.get() <= clients as u64);
    }

    #[test]
    fn distinct_generations_never_share_a_batch() {
        let db_a = test_db();
        let db_b = test_db();
        let batcher = RankBatcher::new();
        let metrics = Metrics::default();
        // Enqueue two pending entries by hand (different generations),
        // then combine via a third call: the third call drains all
        // three, forming one batch per generation.
        for (db, generation) in [(Arc::clone(&db_a), 1u64), (Arc::clone(&db_b), 2)] {
            let query = query_on(&db, vec![1.0, 1.0], 2);
            let slot = Arc::new(Slot {
                result: Mutex::new(None),
                filled: Condvar::new(),
            });
            batcher.pending.lock().unwrap().push(PendingRank {
                db,
                generation,
                aggregator: BagAggregator::MinDistance,
                query,
                threads: 1,
                slot,
            });
        }
        let query = query_on(&db_a, vec![0.0, 5.0], 3);
        let got = batcher
            .rank(
                Arc::clone(&db_a),
                1,
                BagAggregator::MinDistance,
                query.clone(),
                1,
                &metrics,
            )
            .unwrap();
        let expected = db_a
            .rank(&query.concept, &RankRequest::all().top(3).threads(1))
            .unwrap();
        assert_eq!(got, expected);
        assert_eq!(
            metrics.batch_formed_total.get(),
            2,
            "generation 1 (two queries) and generation 2 (one query)"
        );
        let sizes = metrics.batch_size.snapshot();
        assert_eq!(sizes.count(), 2);
        assert_eq!(sizes.max(), 2);
    }

    #[test]
    fn distinct_aggregators_never_share_a_batch() {
        // The cross-contamination guard: a min-distance query and a
        // logsumexp query on the *same* generation must form separate
        // batches, and each must come back exactly as its own direct
        // rank call would have scored it.
        let db = test_db();
        let batcher = RankBatcher::new();
        let metrics = Metrics::default();
        let concept = Arc::new(Concept::new(vec![2.0, 3.0], vec![1.0, 1.0]));
        let mut parked = Vec::new();
        for aggregator in [BagAggregator::LogSumExp, BagAggregator::NoisyOr] {
            let query = BatchQuery {
                concept: Arc::clone(&concept),
                top_k: Some(5),
            };
            let slot = Arc::new(Slot {
                result: Mutex::new(None),
                filled: Condvar::new(),
            });
            batcher.pending.lock().unwrap().push(PendingRank {
                db: Arc::clone(&db),
                generation: 9,
                aggregator,
                query,
                threads: 1,
                slot: Arc::clone(&slot),
            });
            parked.push((aggregator, slot));
        }
        let min_query = BatchQuery {
            concept: Arc::clone(&concept),
            top_k: Some(5),
        };
        let got = batcher
            .rank(
                Arc::clone(&db),
                9,
                BagAggregator::MinDistance,
                min_query,
                1,
                &metrics,
            )
            .unwrap();
        let expected = db
            .rank(&concept, &RankRequest::all().top(5).threads(1))
            .unwrap();
        assert_eq!(got, expected, "the min page must stay a min page");
        assert_eq!(
            metrics.batch_formed_total.get(),
            3,
            "one batch per aggregator, even on one generation"
        );
        // And each parked non-min query came back scored by its own
        // fold, bit-identical to the direct aggregated rank call.
        for (aggregator, slot) in parked {
            let direct = db
                .rank(
                    &concept,
                    &RankRequest::all().top(5).threads(1).aggregator(aggregator),
                )
                .unwrap();
            let combined = slot
                .result
                .lock()
                .unwrap()
                .take()
                .expect("the combiner filled every drained slot")
                .unwrap();
            assert_eq!(combined, direct, "{aggregator} page");
            assert_ne!(
                combined
                    .iter()
                    .map(|&(_, d)| d.to_bits())
                    .collect::<Vec<_>>(),
                expected
                    .iter()
                    .map(|&(_, d)| d.to_bits())
                    .collect::<Vec<_>>(),
                "folds must actually differ for the isolation to mean anything"
            );
        }
    }
}
