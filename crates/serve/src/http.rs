//! A minimal HTTP/1.1 server-side codec over blocking sockets.
//!
//! The daemon speaks just enough HTTP for `curl`, browsers, and the
//! `loadgen` harness: strict head and body size limits, socket
//! read/write deadlines so a stalled peer can never pin a worker, and
//! keep-alive connection loops (both milrd and the cluster node) that
//! answer `Connection: keep-alive` unless the client asked to close.
//! Anything malformed maps to a 4xx — never a panic, never a hang.
//! [`read_request_buffered`] supports pipelining: bytes received past
//! the current request's `Content-Length` are parked in the caller's
//! `pending` buffer and parsed as the start of the next request.

use std::io::{Read, Write};
use std::net::TcpStream;

use crate::json::Json;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (`/sessions/3/feedback`).
    pub path: String,
    /// Raw query string without the `?` (may be empty).
    pub query: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter value by name (no percent-decoding — the
    /// protocol's values are indices, counts, and policy labels).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`). HTTP/1.1 defaults to keep-alive,
    /// so the absence of the header means the connection may persist.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed before sending any bytes (a clean no-op, e.g. a
    /// health prober).
    Closed,
    /// The socket deadline expired mid-request.
    Timeout,
    /// The request head exceeded [`MAX_HEAD`].
    HeadTooLarge,
    /// `Content-Length` exceeded the configured body limit.
    BodyTooLarge,
    /// Anything else: bad request line, truncated body, invalid
    /// `Content-Length`, …
    Malformed(String),
}

/// Reads one complete request from `stream` (generic over [`Read`] so
/// tests can inject fault schedules without a socket). One-shot strict
/// variant of [`read_request_buffered`]: any bytes received past the
/// request's `Content-Length` are a protocol error, because a caller
/// without a `pending` buffer has nowhere to park them.
///
/// # Errors
/// [`ReadError`] for anything other than a complete well-formed request.
pub fn read_request<S: Read>(stream: &mut S, max_body: usize) -> Result<Request, ReadError> {
    let mut pending = Vec::new();
    let request = read_request_buffered(stream, &mut pending, max_body)?;
    if !pending.is_empty() {
        return Err(ReadError::Malformed(
            "body longer than Content-Length".into(),
        ));
    }
    Ok(request)
}

/// Reads one complete request, consuming any bytes parked in `pending`
/// before touching the socket and leaving everything received past the
/// current request's body in `pending` for the next call. This is what
/// makes HTTP/1.1 pipelining work on the keep-alive connection loops: a
/// client may write several requests back-to-back, and each call parses
/// exactly one, in order, without dropping or double-reading a byte.
///
/// Error paths discard `pending` — every [`ReadError`] tears the
/// connection down, so there is no next request to preserve bytes for.
///
/// # Errors
/// [`ReadError`] for anything other than a complete well-formed request.
pub fn read_request_buffered<S: Read>(
    stream: &mut S,
    pending: &mut Vec<u8>,
    max_body: usize,
) -> Result<Request, ReadError> {
    let mut head = std::mem::take(pending);
    let mut chunk = [0u8; 1024];
    let head_end;
    // Accumulate until the blank line ends the head (leftover pipelined
    // bytes may already contain one or more complete requests, in which
    // case the socket is never read).
    loop {
        if let Some(end) = find_head_end(&head) {
            head_end = end;
            break;
        }
        if head.len() >= MAX_HEAD {
            return Err(ReadError::HeadTooLarge);
        }
        let n = read_retrying(stream, &mut chunk)?;
        if n == 0 {
            if head.is_empty() {
                return Err(ReadError::Closed);
            }
            return Err(ReadError::Malformed("truncated request head".into()));
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let body_prefix = head.split_off(head_end.1);
    head.truncate(head_end.0);

    let text = std::str::from_utf8(&head)
        .map_err(|_| ReadError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: body_prefix,
    };
    let content_length = match request.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("invalid Content-Length {v:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(ReadError::BodyTooLarge);
    }
    // Bytes past the body belong to the next pipelined request.
    if request.body.len() > content_length {
        let leftover = request.body.split_off(content_length);
        *pending = leftover;
        return Ok(request);
    }
    while request.body.len() < content_length {
        let n = read_retrying(stream, &mut chunk)?;
        if n == 0 {
            return Err(ReadError::Malformed("truncated request body".into()));
        }
        let need = content_length - request.body.len();
        let take = n.min(need);
        request.body.extend_from_slice(&chunk[..take]);
        if take < n {
            *pending = chunk[take..n].to_vec();
        }
    }
    Ok(request)
}

/// Position of the end-of-head marker: `(head_len, body_start)`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| (i, i + 4))
}

/// One `read` that retries `EINTR`. A signal landing mid-header used to
/// surface as `Malformed` (the connection was torn down as if the peer
/// had sent garbage); `Interrupted` is transient by contract and must
/// simply be retried.
fn read_retrying<S: Read>(stream: &mut S, buf: &mut [u8]) -> Result<usize, ReadError> {
    loop {
        match stream.read(buf) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(classify_io(e)),
        }
    }
}

fn classify_io(e: std::io::Error) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::Timeout,
        _ => ReadError::Malformed(e.to_string()),
    }
}

/// The standard reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        410 => "Gone",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one complete JSON response and flushes. The connection always
/// closes afterwards (`Connection: close`).
///
/// # Errors
/// Propagates socket write failures (the peer may already be gone).
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &Json) -> std::io::Result<()> {
    respond_bytes(
        stream,
        status,
        "application/json",
        body.dump().as_bytes(),
        false,
    )
}

/// Writes one complete plain-text response (used for the Prometheus
/// `/metrics` exposition) and flushes. The connection always closes
/// afterwards.
///
/// # Errors
/// Propagates socket write failures (the peer may already be gone).
pub fn respond_text(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    respond_bytes(stream, status, content_type, body.as_bytes(), false)
}

/// [`respond_json`] with an explicit connection disposition: the
/// keep-alive-capable cluster node loop answers `Connection:
/// keep-alive` so a coordinator's pooled connection survives the
/// response. The single-node daemon keeps its one-request-per-connection
/// contract by always passing `false` (via [`respond_json`]).
///
/// # Errors
/// Propagates socket write failures (the peer may already be gone).
pub fn respond_json_conn(
    stream: &mut TcpStream,
    status: u16,
    body: &Json,
    keep_alive: bool,
) -> std::io::Result<()> {
    respond_bytes(
        stream,
        status,
        "application/json",
        body.dump().as_bytes(),
        keep_alive,
    )
}

/// Writes one complete response with an arbitrary (possibly binary)
/// body — the shard-streaming endpoints serve raw `.milr` files as
/// `application/octet-stream` — and flushes. `keep_alive` selects the
/// `Connection` disposition.
///
/// # Errors
/// Propagates socket write failures (the peer may already be gone).
pub fn respond_bytes(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // One buffer, one write: on a keep-alive socket a small head write
    // followed by a small body write stalls ~40ms on the Nagle +
    // delayed-ACK interaction before the client sees the body.
    let mut response = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    )
    .into_bytes();
    response.extend_from_slice(body);
    stream.write_all(&response)?;
    stream.flush()
}

/// Builds the uniform error body `{"error": message}`.
pub fn error_body(message: impl Into<String>) -> Json {
    Json::Obj(vec![("error".into(), Json::Str(message.into()))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Feeds raw bytes through a real socket pair and parses them.
    fn parse(raw: &[u8], max_body: usize) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            client.write_all(&raw).unwrap();
            // Close the write side by dropping the stream.
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let result = read_request(&mut server_side, max_body);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse(
            b"GET /rank?positives=1,2&k=5 HTTP/1.1\r\nHost: x\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/rank");
        assert_eq!(req.query_param("positives"), Some("1,2"));
        assert_eq!(req.query_param("k"), Some("5"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            b"POST /sessions HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn oversized_body_rejected_by_declared_length() {
        let err = parse(
            b"POST /sessions HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert!(matches!(err, ReadError::BodyTooLarge));
    }

    #[test]
    fn truncated_body_is_malformed() {
        let err = parse(
            b"POST /sessions HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
            1024,
        )
        .unwrap_err();
        assert!(matches!(err, ReadError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn truncated_head_is_malformed() {
        let err = parse(b"GET /rank HTTP/1.1\r\nHost:", 1024).unwrap_err();
        assert!(matches!(err, ReadError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn immediate_close_reports_closed() {
        let err = parse(b"", 1024).unwrap_err();
        assert!(matches!(err, ReadError::Closed));
    }

    #[test]
    fn garbage_request_line_is_malformed() {
        for raw in [
            &b"NONSENSE\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x SPDY/9\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        ] {
            let err = parse(raw, 1024).unwrap_err();
            assert!(matches!(err, ReadError::Malformed(_)), "{raw:?} -> {err:?}");
        }
    }

    /// A reader that yields one byte per call and raises
    /// `ErrorKind::Interrupted` before every byte — the worst-case EINTR
    /// storm over a slow-loris trickle.
    struct InterruptedTrickle {
        data: Vec<u8>,
        pos: usize,
        interrupt_next: bool,
    }

    impl Read for InterruptedTrickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "signal",
                ));
            }
            self.interrupt_next = true;
            match self.data.get(self.pos) {
                Some(&b) => {
                    buf[0] = b;
                    self.pos += 1;
                    Ok(1)
                }
                None => Ok(0),
            }
        }
    }

    #[test]
    fn interrupted_reads_are_retried_not_fatal() {
        // Regression: EINTR mid-header (or mid-body) used to map to
        // ReadError::Malformed, killing the connection.
        let mut stream = InterruptedTrickle {
            data: b"POST /sessions HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello".to_vec(),
            pos: 0,
            interrupt_next: true,
        };
        let req = read_request(&mut stream, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn pipelined_requests_parse_in_order_from_one_buffer() {
        // Two full requests written back-to-back: the first parse must
        // leave the second intact in `pending`, and the second parse
        // must complete without touching the (now-EOF) socket.
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /b?k=2 HTTP/1.1\r\nHost: x\r\n\r\n";
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            client.write_all(raw).unwrap();
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let mut pending = Vec::new();
        let first = read_request_buffered(&mut server_side, &mut pending, 1024).unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"abc");
        assert!(!pending.is_empty(), "second request must be parked");
        let second = read_request_buffered(&mut server_side, &mut pending, 1024).unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/b");
        assert_eq!(second.query_param("k"), Some("2"));
        assert!(second.body.is_empty());
        assert!(pending.is_empty());
        writer.join().unwrap();
    }

    #[test]
    fn pipelined_body_split_across_reads_lands_in_pending() {
        // The boundary between request body and the next request may
        // fall anywhere inside a read chunk; the excess must be parked.
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 2000\r\n\r\n";
        let mut full = raw.to_vec();
        full.extend(vec![b'z'; 2000]);
        full.extend_from_slice(b"GET /next HTTP/1.1\r\n\r\n");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut client = TcpStream::connect(addr).unwrap();
            client.write_all(&full).unwrap();
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let mut pending = Vec::new();
        let first = read_request_buffered(&mut server_side, &mut pending, 4096).unwrap();
        assert_eq!(first.body.len(), 2000);
        assert!(first.body.iter().all(|&b| b == b'z'));
        let second = read_request_buffered(&mut server_side, &mut pending, 4096).unwrap();
        assert_eq!(second.path, "/next");
        writer.join().unwrap();
    }

    #[test]
    fn one_shot_read_request_still_rejects_excess_bytes() {
        // The strict wrapper keeps the old contract: trailing bytes on
        // a one-request read are a protocol error, not a pipeline.
        let err = parse(b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcdef", 1024).unwrap_err();
        assert!(matches!(err, ReadError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn wants_close_matches_connection_header() {
        let close = parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n", 1024).unwrap();
        assert!(close.wants_close());
        let keep = parse(b"GET /x HTTP/1.1\r\nConnection: keep-alive\r\n\r\n", 1024).unwrap();
        assert!(!keep.wants_close());
        let none = parse(b"GET /x HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert!(!none.wants_close());
    }

    #[test]
    fn oversized_head_rejected() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(vec![b'a'; MAX_HEAD + 10]);
        let err = parse(&raw, 1024).unwrap_err();
        assert!(matches!(err, ReadError::HeadTooLarge));
    }
}
