//! The live-session store: relevance-feedback state that survives
//! between requests.
//!
//! Each session owns a [`QuerySession`] over `Arc`-shared database and
//! config (the `milr-core` `Shared` handle), a policy label for concept
//! cache keys, and a last-touched timestamp. Sessions expire after the
//! configured TTL — swept on every store access and on worker idle ticks
//! — and the store is capacity-bounded: when full, creating a session
//! evicts the least-recently-used one rather than growing without bound.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use milr_core::QuerySession;

/// One live feedback session.
#[derive(Debug)]
pub struct FeedbackSession {
    /// The underlying query state (examples, concept, rounds).
    pub query: QuerySession<'static>,
    /// Label of the weight policy this session trains under (cache key
    /// component).
    pub policy_label: String,
    /// Snapshot generation the session was created against. The session
    /// pins its epoch's database via `Arc`, so a hot reload never swaps
    /// data underneath it — this field keys the concept cache to the
    /// same epoch.
    pub generation: u64,
    /// When the session was last touched (updated by the store on every
    /// successful lookup).
    pub last_used: Instant,
}

/// Handle to a stored session: the store lock is released before the
/// caller locks the session itself, so slow training in one session
/// never blocks lookups of others.
pub type SessionHandle = Arc<Mutex<FeedbackSession>>;

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, SessionHandle>,
    next_id: u64,
    created_total: u64,
    expired_total: u64,
    evicted_total: u64,
}

/// TTL- and capacity-bounded session store.
#[derive(Debug)]
pub struct SessionStore {
    inner: Mutex<Inner>,
    ttl: Duration,
    capacity: usize,
}

/// A point-in-time summary of the store for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions currently live.
    pub active: usize,
    /// Sessions ever created.
    pub created_total: u64,
    /// Sessions dropped because their TTL expired.
    pub expired_total: u64,
    /// Sessions dropped because the store was full.
    pub evicted_total: u64,
}

impl SessionStore {
    /// Creates a store with the given TTL and capacity (capacity 0 means
    /// sessions are disabled and every create fails).
    pub fn new(ttl: Duration, capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            ttl,
            capacity,
        }
    }

    /// Stores a new session, evicting expired entries first and the
    /// least-recently-used entry if still full. Returns the new id, or
    /// [`None`] when the store is disabled (capacity 0).
    ///
    /// Evicted and expired sessions are *removed* under the store lock
    /// but *dropped* after it is released — a `QuerySession` can hold
    /// megabytes of bags and a trained concept, and freeing it must not
    /// stall every other session lookup. (`dropped` is declared before
    /// the guard, so it destructs after the guard on every exit path.)
    pub fn create(
        &self,
        query: QuerySession<'static>,
        policy_label: String,
        generation: u64,
    ) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        let now = Instant::now();
        let mut dropped: Vec<SessionHandle> = Vec::new();
        let mut inner = self.inner.lock().expect("session store mutex");
        dropped.extend(Self::sweep_locked(&mut inner, self.ttl, now));
        if inner.map.len() >= self.capacity {
            if let Some(lru) = inner
                .map
                .iter()
                .filter_map(|(&id, handle)| {
                    // A session mid-training is busy, not stale; skip it.
                    handle.try_lock().ok().map(|s| (id, s.last_used))
                })
                .min_by_key(|&(_, used)| used)
                .map(|(id, _)| id)
            {
                dropped.extend(inner.map.remove(&lru));
                inner.evicted_total += 1;
            } else {
                return None; // every session is busy — refuse creation
            }
        }
        inner.next_id += 1;
        inner.created_total += 1;
        let id = inner.next_id;
        inner.map.insert(
            id,
            Arc::new(Mutex::new(FeedbackSession {
                query,
                policy_label,
                generation,
                last_used: now,
            })),
        );
        Some(id)
    }

    /// Looks up a live session, refreshing its TTL. Expired sessions are
    /// removed and reported as absent.
    pub fn get(&self, id: u64) -> Option<SessionHandle> {
        let now = Instant::now();
        let (expired, handle) = {
            let mut inner = self.inner.lock().expect("session store mutex");
            let expired = Self::sweep_locked(&mut inner, self.ttl, now);
            (expired, inner.map.get(&id).cloned())
        };
        drop(expired); // session teardown happens outside the store lock
        let handle = handle?;
        if let Ok(mut session) = handle.try_lock() {
            session.last_used = now;
        }
        // A busy (locked) session is clearly alive; its owner will
        // refresh the stamp when done.
        Some(handle)
    }

    /// Removes a session explicitly. Returns whether it existed.
    pub fn remove(&self, id: u64) -> bool {
        let handle = {
            let mut inner = self.inner.lock().expect("session store mutex");
            inner.map.remove(&id)
        };
        // The handle (and possibly the whole session) drops here, after
        // the store lock is released.
        handle.is_some()
    }

    /// Drops every expired session; returns how many were removed.
    pub fn sweep(&self) -> usize {
        let expired = {
            let mut inner = self.inner.lock().expect("session store mutex");
            Self::sweep_locked(&mut inner, self.ttl, Instant::now())
        };
        expired.len() // handles drop here, outside the store lock
    }

    /// Unlinks every expired entry and hands the removed handles back to
    /// the caller, who must drop them only after releasing the lock.
    fn sweep_locked(inner: &mut Inner, ttl: Duration, now: Instant) -> Vec<SessionHandle> {
        let stale: Vec<u64> = inner
            .map
            .iter()
            .filter_map(|(&id, handle)| match handle.try_lock() {
                Ok(session) if now.duration_since(session.last_used) > ttl => Some(id),
                _ => None, // busy sessions are alive by definition
            })
            .collect();
        let mut removed = Vec::with_capacity(stale.len());
        for id in stale {
            removed.extend(inner.map.remove(&id));
        }
        inner.expired_total += removed.len() as u64;
        removed
    }

    /// Current counters for `/metrics`.
    pub fn stats(&self) -> SessionStats {
        let inner = self.inner.lock().expect("session store mutex");
        SessionStats {
            active: inner.map.len(),
            created_total: inner.created_total,
            expired_total: inner.expired_total,
            evicted_total: inner.evicted_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milr_core::{RetrievalConfig, RetrievalDatabase};
    use milr_mil::Bag;

    fn db() -> Arc<RetrievalDatabase> {
        let bags = (0..4)
            .map(|i| Bag::new(vec![vec![i as f32, 1.0]]).unwrap())
            .collect();
        Arc::new(RetrievalDatabase::from_bags(bags, vec![0, 0, 1, 1]).unwrap())
    }

    fn session(db: &Arc<RetrievalDatabase>, cfg: &Arc<RetrievalConfig>) -> QuerySession<'static> {
        QuerySession::builder(Arc::clone(db))
            .config(Arc::clone(cfg))
            .positives(vec![0])
            .negatives(vec![2])
            .pool(vec![0, 1, 2, 3])
            .build()
            .unwrap()
    }

    #[test]
    fn create_get_remove_lifecycle() {
        let db = db();
        let cfg = Arc::new(RetrievalConfig::default());
        let store = SessionStore::new(Duration::from_secs(60), 8);
        let id = store.create(session(&db, &cfg), "p".into(), 0).unwrap();
        assert!(store.get(id).is_some());
        assert!(store.get(id + 1).is_none());
        assert!(store.remove(id));
        assert!(!store.remove(id));
        assert!(store.get(id).is_none());
        let stats = store.stats();
        assert_eq!(stats.created_total, 1);
        assert_eq!(stats.active, 0);
    }

    #[test]
    fn expired_sessions_vanish() {
        let db = db();
        let cfg = Arc::new(RetrievalConfig::default());
        let store = SessionStore::new(Duration::from_millis(30), 8);
        let id = store.create(session(&db, &cfg), "p".into(), 0).unwrap();
        assert!(store.get(id).is_some());
        std::thread::sleep(Duration::from_millis(60));
        assert!(store.get(id).is_none(), "session must expire after TTL");
        assert_eq!(store.stats().expired_total, 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let db = db();
        let cfg = Arc::new(RetrievalConfig::default());
        let store = SessionStore::new(Duration::from_secs(60), 2);
        let a = store.create(session(&db, &cfg), "p".into(), 0).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let b = store.create(session(&db, &cfg), "p".into(), 0).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        // Touch `a` so `b` becomes the LRU session.
        assert!(store.get(a).is_some());
        std::thread::sleep(Duration::from_millis(5));
        let c = store.create(session(&db, &cfg), "p".into(), 0).unwrap();
        assert!(store.get(a).is_some());
        assert!(store.get(b).is_none(), "LRU session evicted at capacity");
        assert!(store.get(c).is_some());
        assert_eq!(store.stats().evicted_total, 1);
    }

    #[test]
    fn concurrent_create_expire_stress() {
        // Regression for the eviction/expiry race: handles removed under
        // the store lock used to be *dropped* under it too. Hammer the
        // store from several threads with a tiny TTL and capacity so
        // creations, TTL expiries, LRU evictions, lookups, and explicit
        // removals all interleave; the store must stay consistent and
        // never deadlock or panic.
        let db = db();
        let cfg = Arc::new(RetrievalConfig::default());
        let store = Arc::new(SessionStore::new(Duration::from_millis(10), 4));
        const THREADS: usize = 4;
        const ITERS: usize = 50;
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let store = Arc::clone(&store);
                let db = Arc::clone(&db);
                let cfg = Arc::clone(&cfg);
                std::thread::spawn(move || {
                    for i in 0..ITERS {
                        let id = store
                            .create(session(&db, &cfg), format!("p{t}"), 0)
                            .expect("store enabled; every session is evictable");
                        // Lookups keep some sessions warm while others age
                        // out; a handle returned must stay usable even if
                        // the store expires the entry underneath us.
                        if let Some(handle) = store.get(id) {
                            let session = handle.lock().unwrap();
                            assert_eq!(session.policy_label, format!("p{t}"));
                        }
                        match i % 3 {
                            0 => {
                                store.remove(id);
                            }
                            1 => std::thread::sleep(Duration::from_millis(1)),
                            _ => {
                                store.sweep();
                            }
                        }
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("no stress thread may panic");
        }
        std::thread::sleep(Duration::from_millis(20));
        store.sweep();
        let stats = store.stats();
        assert_eq!(stats.created_total, (THREADS * ITERS) as u64);
        assert_eq!(stats.active, 0, "everything expired or was removed");
        // Every drop path is counted at most once per session.
        assert!(stats.expired_total + stats.evicted_total <= stats.created_total);
    }

    #[test]
    fn zero_capacity_disables_sessions() {
        let db = db();
        let cfg = Arc::new(RetrievalConfig::default());
        let store = SessionStore::new(Duration::from_secs(60), 0);
        assert!(store.create(session(&db, &cfg), "p".into(), 0).is_none());
    }
}
