//! A minimal, allocation-friendly JSON value with a strict recursive
//! descent parser and a canonical writer.
//!
//! The daemon speaks JSON over a hand-rolled protocol with zero external
//! dependencies, so this module implements exactly the subset the
//! protocol needs: the six JSON value kinds, string escapes (including
//! `\uXXXX` with surrogate pairs), a depth limit so hostile nesting
//! cannot blow the stack, and shortest-round-trip `f64` formatting (what
//! Rust's `Display` produces) so rankings survive a network hop
//! bit-identically.

use std::fmt::Write as _;

/// Nesting depth past which the parser rejects input — hostile bodies
/// must fail with an error, never a stack overflow.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; JSON does not distinguish integers.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    /// A human-readable description of the first violation with its byte
    /// offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    /// Serializes to compact JSON. Non-finite numbers become `null`
    /// (JSON has no representation for them).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // `Display` for f64 is the shortest string that
                    // round-trips, so distances survive the wire exactly.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if this is a number with
    /// an exact `u64` value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for a number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Convenience constructor for an array of indices.
    pub fn indices(values: &[usize]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v as f64)).collect())
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte {:?} at offset {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at offset {start}"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("invalid number {text:?} at offset {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number {text:?} at offset {start}"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at offset {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => {
                    return Err(format!("raw control byte in string at offset {}", self.pos))
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        let b = self
            .peek()
            .ok_or_else(|| "unterminated escape".to_string())?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.peek() != Some(b'\\') {
                        return Err("lone high surrogate".into());
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err("lone high surrogate".into());
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err("invalid low surrogate".into());
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| format!("invalid code point {code:#x}"))?
            }
            other => return Err(format!("bad escape \\{}", other as char)),
        })
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v =
            u32::from_str_radix(text, 16).map_err(|_| format!("invalid \\u escape {text:?}"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        let text = r#"{"a":[1,2.5,-3e2],"b":"hi\nthere","c":null,"d":true,"e":{}}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&value.dump()).unwrap(), value);
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(value.get("b").unwrap().as_str().unwrap(), "hi\nthere");
        assert_eq!(value.get("d").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for v in [0.1, 1.0 / 3.0, 123456.789012345, f64::MIN_POSITIVE, 1e300] {
            let dumped = Json::Num(v).dump();
            let back = Json::parse(&dumped).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {dumped}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let value = Json::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(value.as_str().unwrap(), "é😀");
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "\u{7f}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // …but reasonable nesting is fine.
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn integer_extraction_is_strict() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
        assert_eq!(Json::Num(f64::INFINITY).dump(), "null");
    }
}
