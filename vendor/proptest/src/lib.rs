#![warn(missing_docs)]

//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no crates-io access, so this vendored crate
//! implements exactly the surface the workspace's property tests use:
//! the [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`], the [`Strategy`] trait with `prop_map` /
//! `prop_filter`, numeric-range and tuple strategies, and
//! [`collection::vec`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! generated inputs verbatim), and filters retry generation inline
//! instead of counting global rejections. Case generation is
//! deterministic per test (seeded from the test's module path), so
//! failures reproduce across runs. Setting the `PROPTEST_SEED`
//! environment variable salts every test's stream with its value —
//! nightly sweeps use this to explore fresh cases, and a failure
//! replays with the same `PROPTEST_SEED=<seed>`.

use std::fmt::Debug;
use std::ops::Range;

/// Per-test configuration (`proptest::test_runner::Config` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — it does not count.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

/// Deterministic per-test generator (SplitMix64 keyed by the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a stable string key, salted with the
    /// `PROPTEST_SEED` environment variable when set (empty or unset
    /// means the unsalted, run-to-run-stable stream).
    pub fn for_test(key: &str) -> Self {
        let salt = std::env::var("PROPTEST_SEED").unwrap_or_default();
        Self::for_test_with_salt(key, &salt)
    }

    /// A generator seeded from a stable string key plus an explicit
    /// salt. Same key + same salt → the same stream, always.
    pub fn for_test_with_salt(key: &str, salt: &str) -> Self {
        // FNV-1a over the key (then the salt): stable across runs and
        // platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.bytes().chain(salt.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A value generator (`proptest::strategy::Strategy` subset — no
/// shrinking, `Value` is the generated type directly).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Keeps only values satisfying `pred`, retrying generation.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter could not satisfy: {}", self.reason);
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_strategy_impls {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy_impls!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy_impls {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy_impls! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// See [`vec()`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span <= 1 {
                    0
                } else {
                    rng.next_below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Convenience re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests. See the crate docs for supported syntax:
/// an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(64).saturating_add(256),
                    "too many rejected cases: prop_assume conditions are too strict"
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Render the case up front: the body may consume the
                // inputs, and there is no shrinking to replay them.
                let case: ::std::string::String = [$(format!(
                    concat!(stringify!($arg), " = {:?}"),
                    &$arg
                )),+].join(", ");
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "property failed after {} passing cases: {}\ninputs: {}",
                            accepted, message, case
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts inside a [`proptest!`] body, failing the case (not panicking
/// immediately, so the harness can report the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Discards the current case (it does not count towards the target) when
/// the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        let mut rng = crate::TestRng::for_test("self::ranges");
        for _ in 0..200 {
            let f = crate::Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let v = crate::Strategy::generate(
                &crate::collection::vec(0.0f32..1.0, 3usize..7),
                &mut rng,
            );
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let mut rng = crate::TestRng::for_test("self::mapfilter");
        let even = (0usize..100)
            .prop_map(|n| n * 2)
            .prop_filter("nonzero", |&n| n > 0);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&even, &mut rng);
            assert!(v % 2 == 0 && v > 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("self::same");
        let mut b = crate::TestRng::for_test("self::same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_test("self::other");
        assert_ne!(
            crate::TestRng::for_test("self::same").next_u64(),
            c.next_u64()
        );
    }

    #[test]
    fn salt_perturbs_but_stays_deterministic() {
        // `for_test_with_salt` is the testable core of the PROPTEST_SEED
        // hook (the env read itself would race parallel tests).
        let mut unsalted = crate::TestRng::for_test_with_salt("self::salted", "");
        let mut salted = crate::TestRng::for_test_with_salt("self::salted", "12345");
        let mut salted_again = crate::TestRng::for_test_with_salt("self::salted", "12345");
        let replay = salted_again.next_u64();
        assert_eq!(salted.next_u64(), replay);
        assert_ne!(unsalted.next_u64(), replay);
        assert_eq!(
            crate::TestRng::for_test_with_salt("self::salted", "").next_u64(),
            crate::TestRng::for_test("self::salted").next_u64(),
            "unset/empty PROPTEST_SEED must match the unsalted stream"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, assertions and assumptions.
        #[test]
        fn macro_end_to_end(
            v in crate::collection::vec(-5.0f64..5.0, 4),
            n in 1usize..10,
        ) {
            prop_assume!(n != 9);
            prop_assert!(v.len() == 4, "len = {}", v.len());
            prop_assert_eq!(v.len() * n / n, 4);
        }
    }
}
