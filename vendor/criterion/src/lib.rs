#![warn(missing_docs)]

//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no crates-io access, so this vendored crate
//! implements the benchmarking surface the workspace's `benches/` use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Measurement is simple wall-clock sampling: an adaptive
//! warm-up sizes the per-sample iteration count, then `sample_size`
//! samples are timed and the median/min/max per-iteration times are
//! printed as plain text (no HTML reports, no statistical regression).
//!
//! Upstream's `--test` flag is honoured: `cargo bench -- --test` runs
//! every benchmark routine exactly once without measurement, as a CI
//! smoke test that the benches still execute.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Overrides the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream finalises reports here; the text report
    /// is already printed, so this only consumes the group).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, a parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        Self { text }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Measures `routine`, keeping its return value alive via
    /// [`black_box`] so the work is not optimised away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up doubles the batch size until one batch takes ≥ 5 ms
        // (or the batch is already large); this sizes batches so timer
        // resolution is irrelevant without spending seconds warming up.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || n >= 1 << 20 {
                break;
            }
            n *= 2;
        }
        self.iters_per_sample = n;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let mut bencher = Bencher {
        iters_per_sample: 0,
        samples: Vec::new(),
        sample_size,
        test_mode,
    };
    f(&mut bencher);
    if test_mode {
        println!("{label:<48} --test: ran once, ok");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{label:<48} (no measurement: Bencher::iter never called)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{label:<48} median {}  [min {} .. max {}]  ({} samples × {} iters)",
        format_time(median),
        format_time(min),
        format_time(max),
        per_iter.len(),
        bencher.iters_per_sample,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 8usize), &8usize, |b, &n| {
            seen = n as u64;
            b.iter(|| (0..n).sum::<usize>());
        });
        group.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(seen, 8);
    }

    #[test]
    fn id_formats_match_upstream() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
