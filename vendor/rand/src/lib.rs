#![warn(missing_docs)]

//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates-io access, so this vendored crate
//! provides exactly the surface the workspace uses: [`Rng::gen`],
//! [`Rng::gen_range`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`]
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic in the seed, statistically
//! solid for synthetic-image generation, and dependency-free.
//!
//! Stream values differ from upstream `rand`'s ChaCha-based `StdRng`;
//! everything in this workspace only relies on *seed determinism*, never
//! on specific draw values.

/// Core random source: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type: floats in
    /// `[0, 1)`, full-range integers, fair `bool`s.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from uniform bits (the `Standard` distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 uniform bits over [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Uniform draw from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free bounded integer draw (Lemire-style widening multiply).
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening multiply maps the 64-bit stream near-uniformly onto
    // [0, bound); the bias is ≤ bound/2⁶⁴, far below anything the
    // synthetic generators could observe.
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, i64, i32);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. (Upstream `rand` uses ChaCha12 here; only seed
    /// determinism is relied upon.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// In-place slice shuffling (`rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` when empty.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(bounded_u64(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let x = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn range_draws_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "coverage: {seen:?}");
    }

    #[test]
    fn bools_are_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4000..6000).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never fixes");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
