//! `milr` command-line tool: generate synthetic databases to disk,
//! run retrieval queries, and inspect the feature pipeline.
//!
//! ```text
//! milr generate --kind scenes --out ./scenes --per-category 20 --seed 1
//! milr preprocess --kind scenes --out db.milr --per-category 20 --seed 1
//! milr snapshot --in db.milr
//! milr shard    --in db.milr --out ./db.v3 --shard-bags 128
//! milr compact  --in ./db.v3
//! milr serve    --snapshot ./db.v3 --addr 127.0.0.1:7878 --workers 4 --watch-snapshot
//! milr query    --kind scenes --category waterfall --policy constraint:0.5
//! milr query-files --kind scenes --positive my_fall1.pgm,my_fall2.pgm
//! milr inspect  --image photo.pgm --resolution 10
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use milr::core::eval;
use milr::imgproc::{pnm, smooth_sample, GrayImage};
use milr::mil::WeightPolicy;
use milr::prelude::*;
use milr::synth::database::LabelledImages;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("preprocess") => cmd_preprocess(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("compact") => cmd_compact(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("golden") => cmd_golden(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("query-files") => cmd_query_files(&args[1..]),
        Some("montage") => cmd_montage(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("--help" | "-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         milr generate --kind scenes|objects --out DIR [--per-category N] [--seed N] [--gray]\n  \
         milr preprocess --kind scenes|objects --out DB.milr|DIR [--per-category N]\n                \
         [--seed N] [--fast] [--backend gray-block|sbn] [--sharded [--shard-bags N]]\n  \
         milr snapshot --in DB.milr|DIR\n  \
         milr shard    --in DB.milr --out DIR [--shard-bags N]\n  \
         milr compact  --in DIR | --in DB.milr --out DIR  [--shard-bags N]\n  \
         milr serve    --snapshot DB.milr|DIR [--addr HOST:PORT] [--workers N]\n                \
         [--queue-depth N] [--cache-capacity N] [--page K] [--policy POLICY]\n                \
         [--read-timeout-ms N] [--handle-deadline-ms N] [--max-body N]\n                \
         [--keepalive-requests N] [--keepalive-burst N] [--keepalive-turn-ms N]\n                \
         [--idle-timeout-ms N] [--priority-shed-fill F]\n                \
         [--warm-train true|false] [--session-ttl-s N] [--session-capacity N] [--debug-endpoints]\n                \
         [--backend gray-block|sbn] [--watch-snapshot] [--watch-interval-ms N]\n  \
         milr serve    --role coordinator --snapshot DIR --worker-addrs H:P[,H:P...]\n                \
         [--addr HOST:PORT] [--workers N] [--cache-capacity N] [--page K]\n                \
         [--policy POLICY] [--worker-deadline-ms N] [--health-interval-ms N]\n                \
         [--eviction-threshold N] [--sequential-fanout]\n  \
         milr serve    --role worker --snapshot DIR --worker-index I --worker-count N\n                \
         [--addr HOST:PORT] [--workers N] [--threads N] [--join HOST:PORT]\n  \
         milr cluster  status --addr HOST:PORT [--json]\n  \
         milr trace    --addr HOST:PORT [--n N] [--json]\n  \
         milr golden   [--bless] [--dir DIR]   (default DIR: tests/golden)\n  \
         milr query    --kind scenes|objects --category NAME [--policy POLICY]\n                \
         [--per-category N] [--seed N] [--rounds N] [--fast]\n                \
         [--snapshot DB.milr] [--dump-concept DIR] [--html FILE.html]\n  \
         milr query-files --kind scenes|objects --positive F.pgm[,G.pgm...]\n                \
         [--negative F.pgm,...] [--policy POLICY] [--per-category N] [--seed N]\n  \
         milr montage  --kind scenes|objects --out FILE.ppm [--per-category N] [--seed N]\n  \
         milr inspect  --image FILE.pgm [--resolution H]\n\n\
         POLICY: original | identical | alpha:A | constraint:B"
    );
}

/// Minimal `--key value` argument scanner.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_policy(spec: &str) -> Result<WeightPolicy, String> {
    if spec == "original" {
        return Ok(WeightPolicy::OriginalDd);
    }
    if spec == "identical" {
        return Ok(WeightPolicy::Identical);
    }
    if let Some(a) = spec.strip_prefix("alpha:") {
        let alpha: f64 = a.parse().map_err(|_| format!("bad alpha in {spec:?}"))?;
        return Ok(WeightPolicy::AlphaHack { alpha });
    }
    if let Some(b) = spec.strip_prefix("constraint:") {
        let beta: f64 = b.parse().map_err(|_| format!("bad beta in {spec:?}"))?;
        return Ok(WeightPolicy::SumConstraint { beta });
    }
    Err(format!("unknown policy {spec:?}"))
}

enum Db {
    Scenes(SceneDatabase),
    Objects(ObjectDatabase),
}

impl Db {
    fn build(kind: &str, per_category: Option<usize>, seed: u64) -> Result<Self, String> {
        match kind {
            "scenes" => {
                let mut b = SceneDatabase::builder().seed(seed);
                if let Some(n) = per_category {
                    b = b.images_per_category(n);
                }
                Ok(Self::Scenes(b.build()))
            }
            "objects" => {
                let mut b = ObjectDatabase::builder().seed(seed);
                if let Some(n) = per_category {
                    b = b.images_per_category(n);
                }
                Ok(Self::Objects(b.build()))
            }
            other => Err(format!("unknown database kind {other:?} (scenes|objects)")),
        }
    }

    fn images(&self) -> &LabelledImages {
        match self {
            Self::Scenes(db) => db,
            Self::Objects(db) => db,
        }
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let kind = flag(args, "--kind").ok_or("--kind is required")?;
    let out = PathBuf::from(flag(args, "--out").ok_or("--out is required")?);
    let per_category = flag(args, "--per-category").map(|s| s.parse().unwrap_or(10));
    let seed = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    // `--gray` writes luminance PGMs instead of colour PPMs — the
    // format `POST /rank` region uploads and `query-files` consume.
    let gray = args.iter().any(|a| a == "--gray");

    let db = Db::build(&kind, per_category, seed)?;
    let images = db.images();
    std::fs::create_dir_all(&out).map_err(|e| format!("cannot create {out:?}: {e}"))?;

    let mut index = String::from("file,label,category\n");
    for (i, image) in images.images().iter().enumerate() {
        let label = images.labels()[i];
        let ext = if gray { "pgm" } else { "ppm" };
        let name = format!("{kind}_{i:04}_{}.{ext}", images.categories()[label]);
        if gray {
            pnm::save_pgm(&image.to_gray(), out.join(&name)).map_err(|e| e.to_string())?;
        } else {
            pnm::save_ppm(image, out.join(&name)).map_err(|e| e.to_string())?;
        }
        index.push_str(&format!("{name},{label},{}\n", images.categories()[label]));
    }
    std::fs::write(out.join("index.csv"), index).map_err(|e| e.to_string())?;
    println!(
        "wrote {} {} images and index.csv to {}",
        images.len(),
        if gray { "PGM" } else { "PPM" },
        out.display()
    );
    Ok(())
}

/// The `--fast` smoke-run settings shared by `query` and `preprocess`:
/// 5x5 features over the 9-region layout, short solver budget, fewer
/// examples. A snapshot written with `--fast` must be queried with
/// `--fast` (feature dimensions must agree).
fn apply_fast(config: &mut RetrievalConfig) {
    config.resolution = 5;
    config.layout = milr::imgproc::RegionLayout::Small;
    config.max_iterations = 30;
    config.initial_positives = 3;
    config.initial_negatives = 3;
}

/// Preprocesses a synthetic database into bags and saves the result as
/// a snapshot — the input format of `milr serve` / `milrd`, and a
/// shortcut for repeated `query` runs.
///
/// `--backend` picks the feature extractor (`gray-block`, the paper's
/// §3.5 steps 1-5 pipeline and the default, or `sbn`, the Maron &
/// Lakshmi Ratan colour baseline). A non-default backend requires
/// `--sharded`: only the sharded manifest records the backend tag, and
/// an untagged monolithic file would silently open as gray-block — the
/// exact mixup the tag exists to refuse.
fn cmd_preprocess(args: &[String]) -> Result<(), String> {
    let kind = flag(args, "--kind").ok_or("--kind is required")?;
    let out = flag(args, "--out").ok_or("--out is required")?;
    let per_category = flag(args, "--per-category").map(|s| s.parse().unwrap_or(20));
    let seed = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut config = RetrievalConfig::default();
    if args.iter().any(|a| a == "--fast") {
        apply_fast(&mut config);
    }
    let backend_id = flag(args, "--backend").unwrap_or_else(|| "gray-block".to_string());
    let backend = milr::baseline::feature_backend(&backend_id).ok_or_else(|| {
        format!(
            "unknown backend {backend_id:?} (expected one of: {})",
            milr::baseline::BACKEND_IDS.join(", ")
        )
    })?;
    let sharded = args.iter().any(|a| a == "--sharded");
    if backend_id != milr::core::backend::GRAY_BLOCK_ID && !sharded {
        return Err(format!(
            "--backend {backend_id} requires --sharded: only the sharded manifest \
             records the backend tag, and an untagged snapshot would open as gray-block"
        ));
    }
    let db = Db::build(&kind, per_category.or(Some(20)), seed)?;
    let images = db.images();
    eprintln!(
        "preprocessing {} images with the {backend_id} backend ...",
        images.len()
    );
    let retrieval = if backend_id == milr::core::backend::GRAY_BLOCK_ID {
        // The classic path, byte-identical to every earlier release.
        RetrievalDatabase::from_labelled_images(images.gray_images(), &config)
            .map_err(|e| e.to_string())?
    } else {
        let bags = images
            .images()
            .iter()
            .map(|image| backend.color_bag(image, &config))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| e.to_string())?;
        RetrievalDatabase::from_bags(bags, images.labels().to_vec()).map_err(|e| e.to_string())?
    };
    if sharded {
        let capacity: usize = match flag(args, "--shard-bags") {
            Some(text) => text
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or(format!("invalid --shard-bags {text:?}"))?,
            None => milr::store::DEFAULT_SHARD_CAPACITY,
        };
        let mut store =
            milr::store::ShardedDatabase::from_database(&retrieval, Path::new(&out), capacity)
                .map_err(|e| e.to_string())?;
        store.set_backend(backend.tag(&config));
        store.flush().map_err(|e| e.to_string())?;
        println!(
            "wrote sharded snapshot {out} ({} images, {} categories, dim {}, {} shard{}, backend {backend_id})",
            retrieval.len(),
            retrieval.category_count(),
            retrieval.feature_dim(),
            store.shard_count(),
            if store.shard_count() == 1 { "" } else { "s" },
        );
    } else {
        Store::default()
            .save(&retrieval, &out)
            .map_err(|e| e.to_string())?;
        println!(
            "wrote snapshot {out} ({} images, {} categories, dim {})",
            retrieval.len(),
            retrieval.category_count(),
            retrieval.feature_dim()
        );
    }
    Ok(())
}

/// Prints a summary of a snapshot — a monolithic `.milr` file or a
/// sharded v3 directory (a load-and-verify round trip either way).
fn cmd_snapshot(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--in").ok_or("--in is required")?;
    let loaded = milr::store::load_snapshot(&path).map_err(|e| e.to_string())?;
    let retrieval = &loaded.database;
    let bytes = snapshot_bytes(Path::new(&path))?;
    let instances: usize = (0..retrieval.len())
        .map(|i| retrieval.bag(i).map(|b| b.len()).unwrap_or(0))
        .sum();
    println!(
        "{path}: {} images, {} categories, dim {}, {instances} instances, {bytes} bytes, \
         generation {}, {} shard{}, backend {}",
        retrieval.len(),
        retrieval.category_count(),
        retrieval.feature_dim(),
        loaded.generation,
        loaded.shards,
        if loaded.shards == 1 { "" } else { "s" },
        loaded.backend,
    );
    Ok(())
}

/// Total on-disk size of a snapshot: one file for v2, the manifest plus
/// every shard file for a v3 directory.
fn snapshot_bytes(path: &Path) -> Result<u64, String> {
    let meta = std::fs::metadata(path).map_err(|e| e.to_string())?;
    if !meta.is_dir() {
        return Ok(meta.len());
    }
    let mut total = 0;
    for entry in std::fs::read_dir(path).map_err(|e| e.to_string())? {
        let entry = entry.map_err(|e| e.to_string())?;
        total += entry.metadata().map_err(|e| e.to_string())?.len();
    }
    Ok(total)
}

/// Migrates a monolithic `.milr` snapshot into a sharded v3 directory.
fn cmd_shard(args: &[String]) -> Result<(), String> {
    let input = flag(args, "--in").ok_or("--in is required")?;
    let out = PathBuf::from(flag(args, "--out").ok_or("--out is required")?);
    let capacity: usize = match flag(args, "--shard-bags") {
        Some(text) => text
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or(format!("invalid --shard-bags {text:?}"))?,
        None => milr::store::DEFAULT_SHARD_CAPACITY,
    };
    let loaded = milr::store::load_snapshot(&input).map_err(|e| e.to_string())?;
    let mut store = milr::store::ShardedDatabase::from_database(&loaded.database, &out, capacity)
        .map_err(|e| e.to_string())?;
    // Migration preserves the source snapshot's backend identity.
    store.set_backend(loaded.backend);
    store.flush().map_err(|e| e.to_string())?;
    println!(
        "wrote sharded snapshot {} ({} images over {} shard{}, {} bags/shard, generation {})",
        out.display(),
        store.len(),
        store.shard_count(),
        if store.shard_count() == 1 { "" } else { "s" },
        store.shard_capacity(),
        store.generation(),
    );
    Ok(())
}

/// Compacts a sharded snapshot in place (dropping tombstones and
/// renumbering shards), or — given a monolithic `--in` plus `--out` —
/// migrates it to the sharded format via the same repack. Either way
/// the rewritten shards are format v4: each carries its quantized
/// screening tier, rebuilt deterministically from the live bags, so a
/// compacted (or migrated) store opens with the two-tier ranking path
/// ready — no lazy re-quantization on first load.
fn cmd_compact(args: &[String]) -> Result<(), String> {
    let input = flag(args, "--in").ok_or("--in is required")?;
    let in_path = Path::new(&input);
    let is_v3 = in_path.is_dir() || in_path.join(milr::store::MANIFEST_FILE).exists();
    let mut store = if is_v3 {
        if let Some(out) = flag(args, "--out") {
            return Err(format!(
                "--out {out:?} only applies when migrating a monolithic snapshot; \
                 {input} is already sharded (compaction happens in place)"
            ));
        }
        milr::store::ShardedDatabase::open(in_path).map_err(|e| e.to_string())?
    } else {
        let out = PathBuf::from(
            flag(args, "--out").ok_or("--out is required to migrate a monolithic snapshot")?,
        );
        let capacity: usize = match flag(args, "--shard-bags") {
            Some(text) => text
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or(format!("invalid --shard-bags {text:?}"))?,
            None => milr::store::DEFAULT_SHARD_CAPACITY,
        };
        let loaded = milr::store::load_snapshot(in_path).map_err(|e| e.to_string())?;
        let mut migrated =
            milr::store::ShardedDatabase::from_database(&loaded.database, &out, capacity)
                .map_err(|e| e.to_string())?;
        migrated.set_backend(loaded.backend);
        migrated
    };
    let dropped = store.compact();
    store.flush().map_err(|e| e.to_string())?;
    println!(
        "compacted {} ({} live images over {} shard{}, {dropped} tombstone{} dropped, \
         generation {})",
        store.dir().display(),
        store.live_len(),
        store.shard_count(),
        if store.shard_count() == 1 { "" } else { "s" },
        if dropped == 1 { "" } else { "s" },
        store.generation(),
    );
    Ok(())
}

/// Runs the retrieval daemon over a snapshot (the in-CLI equivalent of
/// the standalone `milrd` binary). `--role coordinator|worker` starts a
/// cluster node instead of the single-node daemon.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    match flag(args, "--role").as_deref() {
        None | Some("single") => {}
        Some("coordinator") => return cmd_serve_coordinator(args),
        Some("worker") => return cmd_serve_worker(args),
        Some(other) => {
            return Err(format!(
                "unknown --role {other:?} (single|coordinator|worker)"
            ))
        }
    }
    let snapshot = flag(args, "--snapshot").ok_or("--snapshot is required")?;
    let mut options = milr::serve::ServeOptions::default();
    if let Some(addr) = flag(args, "--addr") {
        options.addr = addr;
    }
    if let Some(text) = flag(args, "--workers") {
        options.workers = text
            .parse()
            .map_err(|_| format!("invalid --workers {text:?}"))?;
    }
    if let Some(text) = flag(args, "--queue-depth") {
        options.queue_depth = text
            .parse()
            .map_err(|_| format!("invalid --queue-depth {text:?}"))?;
    }
    if let Some(text) = flag(args, "--cache-capacity") {
        options.cache_capacity = text
            .parse()
            .map_err(|_| format!("invalid --cache-capacity {text:?}"))?;
    }
    if let Some(text) = flag(args, "--page") {
        options.default_page = text
            .parse()
            .map_err(|_| format!("invalid --page {text:?}"))?;
    }
    if let Some(spec) = flag(args, "--policy") {
        options.retrieval.policy = parse_policy(&spec)?;
    }
    if let Some(text) = flag(args, "--read-timeout-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("invalid --read-timeout-ms {text:?}"))?;
        options.read_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(text) = flag(args, "--handle-deadline-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("invalid --handle-deadline-ms {text:?}"))?;
        options.handle_deadline = std::time::Duration::from_millis(ms);
    }
    if let Some(text) = flag(args, "--keepalive-requests") {
        options.keepalive_requests = text
            .parse()
            .map_err(|_| format!("invalid --keepalive-requests {text:?}"))?;
    }
    if let Some(text) = flag(args, "--keepalive-burst") {
        options.keepalive_burst = text
            .parse()
            .map_err(|_| format!("invalid --keepalive-burst {text:?}"))?;
    }
    if let Some(text) = flag(args, "--keepalive-turn-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("invalid --keepalive-turn-ms {text:?}"))?;
        options.keepalive_turn = std::time::Duration::from_millis(ms);
    }
    if let Some(text) = flag(args, "--idle-timeout-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("invalid --idle-timeout-ms {text:?}"))?;
        options.idle_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(text) = flag(args, "--priority-shed-fill") {
        options.priority_shed_fill = text
            .parse()
            .map_err(|_| format!("invalid --priority-shed-fill {text:?}"))?;
    }
    if let Some(text) = flag(args, "--warm-train") {
        options.warm_train = text
            .parse()
            .map_err(|_| format!("invalid --warm-train {text:?}"))?;
    }
    if let Some(text) = flag(args, "--max-body") {
        options.max_body = text
            .parse()
            .map_err(|_| format!("invalid --max-body {text:?}"))?;
    }
    if let Some(text) = flag(args, "--session-ttl-s") {
        let s: u64 = text
            .parse()
            .map_err(|_| format!("invalid --session-ttl-s {text:?}"))?;
        options.session_ttl = std::time::Duration::from_secs(s);
    }
    if let Some(text) = flag(args, "--session-capacity") {
        options.session_capacity = text
            .parse()
            .map_err(|_| format!("invalid --session-capacity {text:?}"))?;
    }
    if args.iter().any(|a| a == "--debug-endpoints") {
        options.debug_endpoints = true;
    }
    if args.iter().any(|a| a == "--watch-snapshot") {
        options.watch_snapshot = true;
    }
    if let Some(text) = flag(args, "--watch-interval-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("invalid --watch-interval-ms {text:?}"))?;
        options.watch_interval = std::time::Duration::from_millis(ms);
    }
    options.backend = flag(args, "--backend");
    // Parallelism is across requests, not within them.
    options.retrieval.threads = 1;
    let loaded = match options.backend.as_deref() {
        Some(expected) => {
            milr::store::load_snapshot_expecting(&snapshot, expected).map_err(|e| e.to_string())?
        }
        None => milr::store::load_snapshot(&snapshot).map_err(|e| e.to_string())?,
    };
    options.snapshot_path = Some(PathBuf::from(&snapshot));
    let (images, categories, dim) = (
        loaded.database.len(),
        loaded.database.category_count(),
        loaded.database.feature_dim(),
    );
    let (generation, shards, backend_id) =
        (loaded.generation, loaded.shards, loaded.backend.id.clone());
    let server = milr::serve::Server::start_with_snapshot(loaded, options)?;
    println!(
        "milrd listening on {} ({images} images, {categories} categories, dim {dim}, \
         generation {generation}, {shards} shard{}, backend {backend_id})",
        server.local_addr(),
        if shards == 1 { "" } else { "s" },
    );
    use std::io::Write as _;
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.wait();
    println!("milrd drained");
    Ok(())
}

/// Shared `--addr/--workers/--queue-depth/...` parsing for the two
/// cluster roles.
fn cluster_node_options(args: &[String]) -> Result<milr::cluster::NodeOptions, String> {
    let mut node = milr::cluster::NodeOptions::default();
    if let Some(addr) = flag(args, "--addr") {
        node.addr = addr;
    }
    if let Some(text) = flag(args, "--workers") {
        node.workers = text
            .parse()
            .map_err(|_| format!("invalid --workers {text:?}"))?;
    }
    if let Some(text) = flag(args, "--queue-depth") {
        node.queue_depth = text
            .parse()
            .map_err(|_| format!("invalid --queue-depth {text:?}"))?;
    }
    if let Some(text) = flag(args, "--read-timeout-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("invalid --read-timeout-ms {text:?}"))?;
        node.read_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(text) = flag(args, "--handle-deadline-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("invalid --handle-deadline-ms {text:?}"))?;
        node.handle_deadline = std::time::Duration::from_millis(ms);
    }
    if let Some(text) = flag(args, "--max-body") {
        node.max_body = text
            .parse()
            .map_err(|_| format!("invalid --max-body {text:?}"))?;
    }
    Ok(node)
}

/// `milr serve --role coordinator`: scatter-gather front of a cluster.
fn cmd_serve_coordinator(args: &[String]) -> Result<(), String> {
    let snapshot = flag(args, "--snapshot").ok_or("--snapshot is required")?;
    let worker_addrs = flag(args, "--worker-addrs").ok_or("--worker-addrs is required")?;
    let mut options = milr::cluster::CoordinatorOptions {
        node: cluster_node_options(args)?,
        snapshot_dir: PathBuf::from(&snapshot),
        ..milr::cluster::CoordinatorOptions::default()
    };
    for part in worker_addrs.split(',').filter(|s| !s.is_empty()) {
        options.workers.push(
            part.trim()
                .parse()
                .map_err(|_| format!("invalid worker address {part:?}"))?,
        );
    }
    if options.workers.is_empty() {
        return Err("--worker-addrs names no workers".into());
    }
    if let Some(text) = flag(args, "--cache-capacity") {
        options.cache_capacity = text
            .parse()
            .map_err(|_| format!("invalid --cache-capacity {text:?}"))?;
    }
    if let Some(text) = flag(args, "--page") {
        options.default_page = text
            .parse()
            .map_err(|_| format!("invalid --page {text:?}"))?;
    }
    if let Some(spec) = flag(args, "--policy") {
        options.retrieval.policy = parse_policy(&spec)?;
    }
    if let Some(text) = flag(args, "--worker-deadline-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("invalid --worker-deadline-ms {text:?}"))?;
        options.worker_deadline = std::time::Duration::from_millis(ms);
    }
    if let Some(text) = flag(args, "--health-interval-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("invalid --health-interval-ms {text:?}"))?;
        options.health_interval = std::time::Duration::from_millis(ms);
    }
    if let Some(text) = flag(args, "--eviction-threshold") {
        options.eviction_threshold = text
            .parse()
            .map_err(|_| format!("invalid --eviction-threshold {text:?}"))?;
    }
    if args.iter().any(|a| a == "--sequential-fanout") {
        options.sequential_fanout = true;
    }
    // Training parallelism stays within the coordinator; ranking
    // parallelism is across workers.
    options.retrieval.threads = 1;
    let workers = options.workers.len();
    let coordinator = milr::cluster::Coordinator::start(options).map_err(|e| e.to_string())?;
    println!(
        "milrd listening on {} (coordinator, {workers} worker{}, generation {})",
        coordinator.addr(),
        if workers == 1 { "" } else { "s" },
        coordinator.generation(),
    );
    use std::io::Write as _;
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    coordinator.wait();
    println!("milrd drained");
    Ok(())
}

/// `milr serve --role worker`: owns a shard subset and answers the
/// coordinator's scatter.
fn cmd_serve_worker(args: &[String]) -> Result<(), String> {
    let snapshot = flag(args, "--snapshot").ok_or("--snapshot is required")?;
    let worker_index: usize = {
        let text = flag(args, "--worker-index").ok_or("--worker-index is required")?;
        text.parse()
            .map_err(|_| format!("invalid --worker-index {text:?}"))?
    };
    let worker_count: usize = {
        let text = flag(args, "--worker-count").ok_or("--worker-count is required")?;
        text.parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("invalid --worker-count {text:?}"))?
    };
    let mut options = milr::cluster::WorkerOptions {
        node: cluster_node_options(args)?,
        snapshot_dir: PathBuf::from(&snapshot),
        worker_index,
        worker_count,
        ..milr::cluster::WorkerOptions::default()
    };
    if let Some(text) = flag(args, "--threads") {
        options.threads = text
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("invalid --threads {text:?}"))?;
    }
    if let Some(text) = flag(args, "--join") {
        options.join = Some(
            text.parse()
                .map_err(|_| format!("invalid --join {text:?}"))?,
        );
    }
    let worker = milr::cluster::Worker::start(options).map_err(|e| e.to_string())?;
    println!(
        "milrd listening on {} (worker {}/{worker_count}, generation {}, {} shard{})",
        worker.addr(),
        worker_index,
        worker.generation(),
        worker.shard_ids().len(),
        if worker.shard_ids().len() == 1 {
            ""
        } else {
            "s"
        },
    );
    use std::io::Write as _;
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    worker.wait();
    println!("milrd drained");
    Ok(())
}

/// `milr cluster status --addr HOST:PORT`: fleet membership, health,
/// and the cluster counters from a running coordinator.
fn cmd_cluster(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("status") => {}
        other => {
            return Err(format!(
                "unknown cluster subcommand {other:?} (expected: status)"
            ))
        }
    }
    let args = &args[1..];
    let addr_text = flag(args, "--addr").ok_or("--addr is required")?;
    let addr: std::net::SocketAddr = addr_text
        .parse()
        .map_err(|_| format!("invalid --addr {addr_text:?}"))?;
    let response =
        milr::serve::client::get(addr, "/cluster/status", std::time::Duration::from_secs(10))
            .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    if response.status != 200 {
        return Err(format!("coordinator returned HTTP {}", response.status));
    }
    let body = String::from_utf8_lossy(&response.body).into_owned();
    if args.iter().any(|a| a == "--json") {
        println!("{body}");
        return Ok(());
    }
    let json =
        milr::serve::Json::parse(&body).map_err(|e| format!("bad /cluster/status body: {e}"))?;
    let num = |v: &milr::serve::Json, key: &str| -> u64 {
        v.get(key).and_then(milr::serve::Json::as_u64).unwrap_or(0)
    };
    println!(
        "coordinator {addr}: generation {}, {} shards, {} live bags",
        num(&json, "generation"),
        num(&json, "total_shards"),
        num(&json, "live_bags"),
    );
    println!(
        "{:<6} {:<22} {:<9} {:>9} {:>11} {:>7} {:>11}",
        "worker", "addr", "healthy", "failures", "generation", "shards", "p99_us"
    );
    if let Some(workers) = json.get("workers").and_then(milr::serve::Json::as_array) {
        for worker in workers {
            let shards = worker
                .get("shards")
                .and_then(milr::serve::Json::as_array)
                .map(<[milr::serve::Json]>::len)
                .unwrap_or(0);
            let latency = worker.get("latency_us");
            println!(
                "{:<6} {:<22} {:<9} {:>9} {:>11} {:>7} {:>11}",
                num(worker, "index"),
                worker
                    .get("addr")
                    .and_then(milr::serve::Json::as_str)
                    .unwrap_or("?"),
                worker
                    .get("healthy")
                    .and_then(milr::serve::Json::as_bool)
                    .map(|b| if b { "yes" } else { "NO" })
                    .unwrap_or("?"),
                num(worker, "consecutive_failures"),
                num(worker, "generation"),
                shards,
                latency.map(|l| num(l, "p99")).unwrap_or(0),
            );
        }
    }
    if let Some(cluster) = json.get("cluster") {
        println!(
            "ranks {} (partial {}), shards ranked {} / missing {}, bound forwarded {} \
             (tightened {}), retries {}, evictions {}, rejoins {}, resyncs {}",
            num(cluster, "rank_total"),
            num(cluster, "partial_responses_total"),
            num(cluster, "shards_ranked_total"),
            num(cluster, "shards_missing_total"),
            num(cluster, "bound_forwarded_total"),
            num(cluster, "bound_tightenings_total"),
            num(cluster, "worker_retries_total"),
            num(cluster, "worker_evictions_total"),
            num(cluster, "worker_rejoins_total"),
            num(cluster, "worker_resyncs_total"),
        );
    }
    Ok(())
}

/// Fetches the most recent spans from a running daemon's `/trace`
/// endpoint and prints them as a table plus a per-name summary
/// (count / total / max duration). `--json` dumps the raw response
/// body for piping into other tools.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let addr_text = flag(args, "--addr").ok_or("--addr is required")?;
    let addr: std::net::SocketAddr = addr_text
        .parse()
        .map_err(|_| format!("invalid --addr {addr_text:?}"))?;
    let n: usize = flag(args, "--n")
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let response = milr::serve::client::get(
        addr,
        &format!("/trace?n={n}"),
        std::time::Duration::from_secs(10),
    )
    .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    if response.status != 200 {
        return Err(format!("daemon returned HTTP {}", response.status));
    }
    let body = String::from_utf8_lossy(&response.body).into_owned();
    if args.iter().any(|a| a == "--json") {
        println!("{body}");
        return Ok(());
    }
    let json = milr::serve::Json::parse(&body).map_err(|e| format!("bad /trace response: {e}"))?;
    let spans = json
        .get("spans")
        .and_then(milr::serve::Json::as_array)
        .ok_or("response has no spans array")?;
    let field = |span: &milr::serve::Json, key: &str| -> u64 {
        span.get(key)
            .and_then(milr::serve::Json::as_u64)
            .unwrap_or(0)
    };
    println!(
        "{:<24} {:>6} {:>14} {:>12}",
        "span", "thread", "start_us", "dur_us"
    );
    let mut by_name: std::collections::BTreeMap<String, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for span in spans {
        let name = span
            .get("name")
            .and_then(milr::serve::Json::as_str)
            .unwrap_or("?")
            .to_owned();
        let dur_us = field(span, "dur_ns") / 1_000;
        println!(
            "{name:<24} {:>6} {:>14} {:>12}",
            field(span, "thread"),
            field(span, "start_us"),
            dur_us,
        );
        let entry = by_name.entry(name).or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 += dur_us;
        entry.2 = entry.2.max(dur_us);
    }
    println!(
        "\n{:<24} {:>6} {:>14} {:>12}",
        "summary", "count", "total_us", "max_us"
    );
    for (name, (count, total, max)) in &by_name {
        println!("{name:<24} {count:>6} {total:>14} {max:>12}");
    }
    Ok(())
}

/// Checks the committed golden-trace corpus against freshly recorded
/// traces, or regenerates it with `--bless`. A diverging trace prints
/// one path-qualified line per differing leaf so the kernel change that
/// caused it can be reviewed, then exits non-zero.
fn cmd_golden(args: &[String]) -> Result<(), String> {
    use milr::testkit::{
        compare_traces, index_trace_file_name, record_index_trace, record_trace, record_warm_trace,
        standard_cases, warm_trace_file_name, INDEX_TRACE_NAME, WARM_TRACE_NAME,
    };
    let dir = PathBuf::from(flag(args, "--dir").unwrap_or_else(|| "tests/golden".into()));
    let bless = args.iter().any(|a| a == "--bless");
    if bless {
        std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    }
    let mut failures = 0usize;
    // The training traces, plus the coarse-index geometry trace and the
    // warm-vs-cold convergence trace.
    let mut traces: Vec<(String, String, milr::serve::Json)> = Vec::new();
    for case in standard_cases() {
        traces.push((
            case.name.to_string(),
            case.file_name(),
            record_trace(&case)?,
        ));
    }
    traces.push((
        INDEX_TRACE_NAME.to_string(),
        index_trace_file_name(),
        record_index_trace()?,
    ));
    traces.push((
        WARM_TRACE_NAME.to_string(),
        warm_trace_file_name(),
        record_warm_trace()?,
    ));
    for (name, file_name, actual) in traces {
        let path = dir.join(file_name);
        if bless {
            std::fs::write(&path, actual.dump() + "\n")
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("blessed {}", path.display());
            continue;
        }
        let text = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "cannot read golden trace {}: {e} (regenerate with `milr golden --bless`)",
                path.display()
            )
        })?;
        let golden = milr::serve::Json::parse(text.trim())
            .map_err(|e| format!("corrupt golden trace {}: {e}", path.display()))?;
        let diffs = compare_traces(&golden, &actual);
        if diffs.is_empty() {
            println!("ok {name}");
        } else {
            failures += 1;
            eprintln!("FAIL {name} ({} difference(s)):", diffs.len());
            for diff in diffs.iter().take(12) {
                eprintln!("  {diff}");
            }
            if diffs.len() > 12 {
                eprintln!("  ... and {} more", diffs.len() - 12);
            }
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} golden trace(s) diverged; review the diffs above and \
             rerun with --bless if the new behaviour is intended"
        ));
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let kind = flag(args, "--kind").ok_or("--kind is required")?;
    let category = flag(args, "--category").ok_or("--category is required")?;
    let seed = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let per_category = flag(args, "--per-category").map(|s| s.parse().unwrap_or(20));
    let policy = match flag(args, "--policy") {
        Some(spec) => parse_policy(&spec)?,
        None => WeightPolicy::SumConstraint { beta: 0.5 },
    };
    let rounds = flag(args, "--rounds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let fast = args.iter().any(|a| a == "--fast");

    let db = Db::build(&kind, per_category.or(Some(20)), seed)?;
    let images = db.images();
    let target = images.category_index(&category).ok_or_else(|| {
        format!(
            "unknown category {category:?}; have {:?}",
            images.categories()
        )
    })?;

    let mut config = RetrievalConfig {
        policy,
        feedback_rounds: rounds,
        ..RetrievalConfig::default()
    };
    if fast {
        apply_fast(&mut config);
    }
    let retrieval = match flag(args, "--snapshot") {
        Some(path) => {
            eprintln!("loading snapshot {path} ...");
            let retrieval = milr::store::load_snapshot(&path)
                .map_err(|e| e.to_string())?
                .database;
            if retrieval.len() != images.len() {
                return Err(format!(
                    "snapshot {path} holds {} images but --kind/--per-category/--seed \
                     describe {} — rebuild it with `milr preprocess`",
                    retrieval.len(),
                    images.len()
                ));
            }
            retrieval
        }
        None => {
            eprintln!("preprocessing {} images ...", images.len());
            RetrievalDatabase::from_labelled_images(images.gray_images(), &config)
                .map_err(|e| e.to_string())?
        }
    };
    let split = images.split(0.2, seed.wrapping_add(1));
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool)
        .test(split.test)
        .build()
        .map_err(|e| e.to_string())?;
    eprintln!("training ({rounds} rounds, policy {}) ...", policy.label());
    let ranking = session.run().map_err(|e| e.to_string())?;

    if let Some(dir) = flag(args, "--dump-concept") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let concept = session.concept().expect("trained");
        let point =
            milr::core::visualize::concept_point_image(concept).map_err(|e| e.to_string())?;
        let weights =
            milr::core::visualize::concept_weight_image(concept).map_err(|e| e.to_string())?;
        pnm::save_pgm(&point, dir.join("concept_point.pgm")).map_err(|e| e.to_string())?;
        pnm::save_pgm(&weights, dir.join("concept_weights.pgm")).map_err(|e| e.to_string())?;
        eprintln!(
            "dumped concept t/w maps (Figs 3-7..3-9 form) to {}",
            dir.display()
        );
    }

    if let Some(html_path) = flag(args, "--html") {
        use milr::core::report::{write_html_report, ReportRow};
        let rows: Vec<ReportRow> = ranking
            .iter()
            .take(24)
            .enumerate()
            .map(|(rank, &(index, d2))| {
                let label = retrieval.labels()[index];
                ReportRow::from_rgb(
                    &images.images()[index],
                    format!(
                        "#{} · image {index} · {} · d² = {d2:.2}",
                        rank + 1,
                        images.categories()[label]
                    ),
                    label == target,
                )
            })
            .collect();
        write_html_report(
            &html_path,
            &format!("milr retrieval: {category} ({})", policy.label()),
            &rows,
            session.concept(),
        )
        .map_err(|e| e.to_string())?;
        eprintln!("wrote HTML report to {html_path}");
    }

    println!("rank,image,category,hit,distance_sq");
    for (rank, &(index, d2)) in ranking.iter().take(20).enumerate() {
        let label = retrieval.labels()[index];
        println!(
            "{},{},{},{},{:.4}",
            rank + 1,
            index,
            images.categories()[label],
            u8::from(label == target),
            d2
        );
    }
    let relevant: Vec<bool> = ranking
        .iter()
        .map(|&(i, _)| retrieval.labels()[i] == target)
        .collect();
    eprintln!(
        "average precision {:.3} over {} test images (base rate {:.3})",
        eval::average_precision(&relevant),
        relevant.len(),
        eval::random_precision_level(&relevant),
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--image").ok_or("--image is required")?;
    let resolution: usize = flag(args, "--resolution")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let image = load_gray(Path::new(&path))?;
    println!(
        "{}: {}x{} mean {:.1} std {:.1}",
        path,
        image.width(),
        image.height(),
        image.mean(),
        image.std_dev()
    );
    let sampled = smooth_sample(&image, resolution).map_err(|e| e.to_string())?;
    println!("\nsmoothed-and-sampled {resolution}x{resolution} matrix (§3.1.2):");
    for y in 0..resolution {
        let row: Vec<String> = (0..resolution)
            .map(|x| format!("{:>6.1}", sampled.get(x, y)))
            .collect();
        println!("  {}", row.join(" "));
    }
    Ok(())
}

fn load_gray(path: &Path) -> Result<GrayImage, String> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("pgm") => pnm::load_pgm(path).map_err(|e| e.to_string()),
        Some("ppm") => Ok(pnm::load_ppm(path).map_err(|e| e.to_string())?.to_gray()),
        _ => Err(format!(
            "unsupported image format for {path:?} (need .pgm or .ppm)"
        )),
    }
}

/// Queries a synthetic database with the user's own example images
/// (§3.5's interactive use: examples need not come from the database).
fn cmd_query_files(args: &[String]) -> Result<(), String> {
    let kind = flag(args, "--kind").ok_or("--kind is required")?;
    let positive_list = flag(args, "--positive").ok_or("--positive is required")?;
    let negative_list = flag(args, "--negative").unwrap_or_default();
    let seed = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let per_category = flag(args, "--per-category").map(|s| s.parse().unwrap_or(20));
    let policy = match flag(args, "--policy") {
        Some(spec) => parse_policy(&spec)?,
        None => WeightPolicy::SumConstraint { beta: 0.5 },
    };

    let config = RetrievalConfig {
        policy,
        ..RetrievalConfig::default()
    };
    let load_bags = |list: &str| -> Result<Vec<milr::mil::Bag>, String> {
        list.split(',')
            .filter(|s| !s.is_empty())
            .map(|file| {
                let image = load_gray(Path::new(file))?;
                milr::core::features::image_to_bag(&image, &config).map_err(|e| e.to_string())
            })
            .collect()
    };
    let positives = load_bags(&positive_list)?;
    let negatives = load_bags(&negative_list)?;

    let db = Db::build(&kind, per_category.or(Some(20)), seed)?;
    let images = db.images();
    eprintln!("preprocessing {} database images ...", images.len());
    let retrieval = RetrievalDatabase::from_labelled_images(images.gray_images(), &config)
        .map_err(|e| e.to_string())?;
    let candidates: Vec<usize> = (0..retrieval.len()).collect();
    eprintln!(
        "training on {} positive / {} negative example files ...",
        positives.len(),
        negatives.len()
    );
    let (_, ranking) =
        milr::core::query_with_examples(&retrieval, &config, &positives, &negatives, &candidates)
            .map_err(|e| e.to_string())?;

    println!("rank,image,category,distance_sq");
    for (rank, &(index, d2)) in ranking.iter().take(20).enumerate() {
        let label = retrieval.labels()[index];
        println!(
            "{},{},{},{:.4}",
            rank + 1,
            index,
            images.categories()[label],
            d2
        );
    }
    Ok(())
}

/// Writes a contact sheet of the synthetic database for eyeballing.
fn cmd_montage(args: &[String]) -> Result<(), String> {
    let kind = flag(args, "--kind").ok_or("--kind is required")?;
    let out = flag(args, "--out").ok_or("--out is required")?;
    let per_category = flag(args, "--per-category")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8usize);
    let seed = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let db = Db::build(&kind, Some(per_category), seed)?;
    let sheet = milr::synth::montage(db.images(), per_category);
    pnm::save_ppm(&sheet, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {}x{} montage ({} rows x {} columns) to {out}",
        sheet.width(),
        sheet.height(),
        db.images().categories().len(),
        per_category
    );
    Ok(())
}
