#![warn(missing_docs)]

//! # milr — Multiple-Instance Learning for Image Database Retrieval
//!
//! Facade crate re-exporting the whole workspace: a from-scratch Rust
//! reproduction of *"Image Database Retrieval with Multiple-Instance
//! Learning Techniques"* (Yang & Lozano-Pérez, ICDE 2000).
//!
//! ## Quick start
//!
//! ```
//! use milr::prelude::*;
//!
//! // Build a small synthetic scene database (stands in for COREL).
//! let db = SceneDatabase::builder()
//!     .images_per_category(6)
//!     .seed(7)
//!     .dimensions(64, 48)
//!     .build();
//!
//! // Preprocess it into bags of normalised region features.
//! let config = RetrievalConfig {
//!     max_iterations: 30,
//!     feedback_rounds: 1,
//!     initial_positives: 2,
//!     initial_negatives: 2,
//!     ..RetrievalConfig::default()
//! };
//! let retrieval =
//!     RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
//!
//! // Query for waterfalls; the pool simulates the user's feedback.
//! let waterfall = db.category_index("waterfall").unwrap();
//! let split = db.split(0.34, 99);
//! let mut session = QuerySession::builder(&retrieval)
//!     .config(&config)
//!     .target(waterfall)
//!     .pool(split.pool)
//!     .test(split.test)
//!     .build()
//!     .unwrap();
//! let ranking = session.run().unwrap();
//! assert!(!ranking.is_empty());
//! ```
//!
//! See the `examples/` directory for complete retrieval runs and the
//! `milr-bench` crate for the harness regenerating every table and
//! figure of the paper.

pub use milr_baseline as baseline;
pub use milr_cluster as cluster;
pub use milr_core as core;
pub use milr_imgproc as imgproc;
pub use milr_mil as mil;
pub use milr_optim as optim;
pub use milr_serve as serve;
pub use milr_store as store;
pub use milr_synth as synth;
pub use milr_testkit as testkit;

/// Commonly-used types from across the workspace.
pub mod prelude {
    pub use milr_core::{
        config::RetrievalConfig,
        database::{RankRequest, RetrievalDatabase},
        eval,
        query::QuerySession,
        storage::Store,
    };
    pub use milr_imgproc::{GrayImage, RegionLayout, RgbImage};
    pub use milr_mil::{
        bag::{Bag, BagLabel},
        policy::WeightPolicy,
    };
    pub use milr_synth::{ObjectDatabase, SceneDatabase};
}
