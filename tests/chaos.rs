//! Chaos suite: a real `milrd` (spawned via `milr serve`) behind the
//! testkit's fault-injecting [`ChaosProxy`].
//!
//! The schedule of faults is a pure function of the seed, so a failure
//! is replayed exactly by re-running with the same `CHAOS_SEED`
//! environment variable (CI prints it). The suite asserts the daemon's
//! externally visible robustness contract:
//!
//! * every connection ends in an HTTP status line or a clean EOF —
//!   never a connection reset without a status;
//! * a flood beyond the accept queue sheds with `503` bodies per
//!   policy, and recovers;
//! * `/metrics` counters obey the conservation law
//!   `accepted == completed + read_errors + closed + deadline_sheds`
//!   at quiescence;
//! * a drain requested while chaos connections are in flight finishes
//!   cleanly (`milrd drained`, exit 0).
//!
//! Setting `CHAOS_KEEPALIVE=1` re-runs the whole suite with aggressive
//! keep-alive serving (high per-connection request cap, tiny yield
//! burst, short idle timeout) so every contract above — including the
//! conservation law — is also proven over long-lived, mid-connection-
//! faulted sockets rather than only one-shot exchanges.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use milr::serve::Json;
use milr::testkit::{synthetic_database, ChaosProxy, Fault};

/// The default pinned seed; override (and replay CI failures) with
/// `CHAOS_SEED=<n>`.
const DEFAULT_SEED: u64 = 0x51DE_CA5E;

fn chaos_seed() -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(text) => text
            .parse()
            .unwrap_or_else(|_| panic!("CHAOS_SEED must be an integer, got {text:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// `CHAOS_KEEPALIVE=1` flips the daemon under test into an aggressive
/// keep-alive configuration; anything else (or unset) keeps the
/// defaults. The faults and assertions are identical either way — only
/// the connection lifetimes change.
fn keepalive_variant() -> bool {
    std::env::var("CHAOS_KEEPALIVE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// A `milr serve` child process bound to an ephemeral port, killed on
/// drop unless the test already waited it out.
struct DaemonUnderTest {
    child: Child,
    addr: SocketAddr,
    stdout: BufReader<std::process::ChildStdout>,
    dir: PathBuf,
}

impl DaemonUnderTest {
    /// Builds a seeded snapshot and spawns `milr serve` over it with
    /// `extra_args` appended (so tests can tighten queue/timeout knobs).
    fn start(test: &str, extra_args: &[&str]) -> DaemonUnderTest {
        let dir = std::env::temp_dir().join(format!("milr_chaos_{test}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let snapshot = dir.join("db.milr");
        let db = synthetic_database(24, 8, 3);
        milr::prelude::Store::default()
            .save(&db, &snapshot)
            .expect("snapshot saves");
        Self::start_over(dir, &snapshot, extra_args)
    }

    /// Spawns `milr serve` over an already-written snapshot (file or
    /// sharded directory); `dir` is removed when the daemon drops.
    fn start_over(
        dir: PathBuf,
        snapshot: &std::path::Path,
        extra_args: &[&str],
    ) -> DaemonUnderTest {
        let mut command = Command::new(env!("CARGO_BIN_EXE_milr"));
        command
            .arg("serve")
            .args(["--snapshot", snapshot.to_str().unwrap()])
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args);
        if keepalive_variant() {
            // Appended after `extra_args`, whose first occurrence of a
            // flag wins — a test pinning its own keep-alive knobs keeps
            // them even under the variant.
            command.args([
                "--keepalive-requests",
                "64",
                "--keepalive-burst",
                "4",
                "--idle-timeout-ms",
                "400",
            ]);
        }
        let mut child = command
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn milr serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("read banner");
        let addr = banner
            .strip_prefix("milrd listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|addr| addr.parse().ok())
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"));
        DaemonUnderTest {
            child,
            addr,
            stdout,
            dir,
        }
    }

    /// Waits (bounded) for the child to exit after a drain request and
    /// returns (exit success, remaining stdout).
    fn wait_for_drain(mut self) -> (bool, String) {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                let mut rest = String::new();
                self.stdout.read_to_string(&mut rest).expect("drain stdout");
                let dir = self.dir.clone();
                std::mem::forget(self); // already reaped; skip the kill
                std::fs::remove_dir_all(&dir).ok();
                return (status.success(), rest);
            }
            assert!(
                Instant::now() < deadline,
                "daemon did not exit within the drain deadline"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for DaemonUnderTest {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Sends `request` raw to `addr` and reads the full response to EOF.
/// Returns the raw response, or the error if the socket died mid-read —
/// the one thing the daemon must never cause.
fn raw_roundtrip(addr: SocketAddr, request: &[u8]) -> std::io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(15)))?;
    stream.write_all(request)?;
    stream.shutdown(Shutdown::Write)?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    Ok(response)
}

fn get(addr: SocketAddr, path: &str) -> Vec<u8> {
    raw_roundtrip(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .expect("direct request succeeds")
}

fn status_of(response: &[u8]) -> Option<u16> {
    let text = String::from_utf8_lossy(response);
    let rest = text.strip_prefix("HTTP/1.1 ")?;
    rest.split_whitespace().next()?.parse().ok()
}

fn body_of(response: &[u8]) -> String {
    let text = String::from_utf8_lossy(response);
    match text.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => String::new(),
    }
}

fn metric(metrics: &Json, key: &str) -> u64 {
    let Json::Obj(fields) = metrics else {
        panic!("metrics is not an object: {metrics:?}");
    };
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Json::Num(v))) => *v as u64,
        other => panic!("metric {key} missing or non-numeric: {other:?}"),
    }
}

/// Polls `/metrics` until the connection-conservation law holds.
///
/// The law only holds at quiescence, and the `/metrics` request itself
/// is accepted-but-not-yet-completed when the counters are read, so a
/// consistent snapshot satisfies
/// `accepted == completed + read_errors + closed + deadline_sheds + 1`.
fn assert_metrics_balanced(addr: SocketAddr) -> Json {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let response = get(addr, "/metrics");
        assert_eq!(status_of(&response), Some(200), "metrics must serve");
        let metrics = Json::parse(&body_of(&response)).expect("metrics is JSON");
        let accepted = metric(&metrics, "accepted_total");
        let resolved = metric(&metrics, "completed_total")
            + metric(&metrics, "read_error_total")
            + metric(&metrics, "closed_total")
            + metric(&metrics, "deadline_shed_total");
        if accepted == resolved + 1 {
            return metrics;
        }
        assert!(
            Instant::now() < deadline,
            "metrics never balanced: accepted {accepted} != resolved {resolved} + 1\n{}",
            metrics.dump()
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn chaotic_clients_always_get_a_status_or_a_clean_close() {
    let seed = chaos_seed();
    let daemon = DaemonUnderTest::start("status", &["--workers", "4", "--read-timeout-ms", "2000"]);
    let proxy = ChaosProxy::start(daemon.addr, seed).expect("proxy starts");

    let connections = 24u64;
    for index in 0..connections {
        // Long enough that every truncation point lands mid-request.
        let request = format!(
            "GET /healthz HTTP/1.1\r\nHost: chaos\r\nX-Chaos-Index: {index:032}\r\n\
             Connection: close\r\n\r\n"
        );
        let response = raw_roundtrip(proxy.addr(), request.as_bytes()).unwrap_or_else(|e| {
            panic!("connection {index} died with {e} (seed {seed}): the daemon must never reset")
        });
        if response.is_empty() {
            continue; // clean EOF without a response: allowed for dead clients
        }
        let status = status_of(&response).unwrap_or_else(|| {
            panic!(
                "connection {index} (seed {seed}) got bytes without a status line: {:?}",
                String::from_utf8_lossy(&response)
            )
        });
        assert!(
            (200..600).contains(&status),
            "connection {index} (seed {seed}): implausible status {status}"
        );
    }

    // The proxy applied exactly the schedule the seed dictates —
    // byte-for-byte, so CI's printed seed replays this run.
    let applied: Vec<u8> = proxy
        .applied()
        .iter()
        .flat_map(|f| {
            let mut line = f.describe().into_bytes();
            line.push(b'\n');
            line
        })
        .collect();
    assert_eq!(
        applied,
        Fault::schedule_bytes(seed, connections),
        "applied fault schedule must replay byte-for-byte from seed {seed}"
    );

    proxy.stop();
    assert_metrics_balanced(daemon.addr);
}

#[test]
fn flood_beyond_the_queue_sheds_with_503_per_policy() {
    let daemon = DaemonUnderTest::start(
        "flood",
        &[
            "--workers",
            "1",
            "--queue-depth",
            "2",
            "--debug-endpoints",
            "--read-timeout-ms",
            "5000",
            "--handle-deadline-ms",
            "10000",
        ],
    );

    // Pin the single worker, then flood: with the worker busy and the
    // queue bounded at 2, most of the burst must shed.
    let addr = daemon.addr;
    let stall = std::thread::spawn(move || get(addr, "/debug/sleep?ms=1500"));
    std::thread::sleep(Duration::from_millis(200)); // let the stall land

    let clients: Vec<_> = (0..12)
        .map(|_| std::thread::spawn(move || get(addr, "/healthz")))
        .collect();
    let mut shed = 0usize;
    let mut served = 0usize;
    for client in clients {
        let response = client.join().expect("client thread");
        match status_of(&response) {
            Some(503) => {
                shed += 1;
                assert!(
                    body_of(&response).contains("shed"),
                    "shed responses must say so: {:?}",
                    body_of(&response)
                );
            }
            Some(200) => served += 1,
            other => panic!("flood client got {other:?}"),
        }
    }
    assert!(shed > 0, "a 12-deep burst into a 2-deep queue must shed");
    assert!(served > 0, "queued requests must still be served");
    assert_eq!(status_of(&stall.join().expect("stall")), Some(200));

    // The daemon recovered: fresh requests serve normally and the shed
    // counter matches what the clients saw.
    let metrics = assert_metrics_balanced(daemon.addr);
    assert_eq!(metric(&metrics, "shed_total") as usize, shed);
}

#[test]
fn metrics_identity_survives_a_chaos_burst() {
    let seed = chaos_seed().wrapping_add(1); // decorrelate from the status test
    let daemon =
        DaemonUnderTest::start("metrics", &["--workers", "2", "--read-timeout-ms", "1000"]);
    let proxy = ChaosProxy::start(daemon.addr, seed).expect("proxy starts");

    let handles: Vec<_> = (0..4)
        .map(|thread| {
            let proxy_addr = proxy.addr();
            std::thread::spawn(move || {
                for i in 0..4 {
                    let request = format!(
                        "GET /rank?positives=0,4&negatives=1 HTTP/1.1\r\nHost: chaos\r\n\
                         X-Chaos: {thread}-{i}-padding-padding\r\nConnection: close\r\n\r\n"
                    );
                    let _ = raw_roundtrip(proxy_addr, request.as_bytes());
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("chaos client thread");
    }
    proxy.stop();

    let metrics = assert_metrics_balanced(daemon.addr);
    // The burst actually exercised the daemon across outcome classes.
    assert!(
        metric(&metrics, "accepted_total") >= 16,
        "all proxied connections reach the daemon: {}",
        metrics.dump()
    );
}

#[test]
fn reload_under_chaos_swaps_snapshots_without_breaking_the_contract() {
    // The epoch-swap contract under fire: a sharded snapshot is
    // rewritten and reloaded while chaotic clients hammer the daemon
    // through the fault proxy. Direct (unproxied) requests must never
    // fail, every reload must succeed, and the conservation law must
    // still balance at quiescence.
    let seed = chaos_seed().wrapping_add(3);
    let dir = std::env::temp_dir().join(format!("milr_chaos_reload_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let snapshot = dir.join("db.v3");
    let write_sharded = |images: usize| {
        let db = synthetic_database(images, 8, 3);
        let mut store = milr::store::ShardedDatabase::from_database(&db, &snapshot, 6)
            .expect("shard the snapshot");
        store.flush().expect("flush the snapshot");
        store.shard_count()
    };
    assert!(write_sharded(24) >= 4, "the scenario must span >= 4 shards");

    let daemon = DaemonUnderTest::start_over(
        dir,
        &snapshot,
        &["--workers", "2", "--read-timeout-ms", "1500"],
    );
    let proxy = ChaosProxy::start(daemon.addr, seed).expect("proxy starts");

    // Chaos traffic through the proxy for the whole scenario.
    let proxy_addr = proxy.addr();
    let chaos: Vec<_> = (0..3)
        .map(|thread| {
            std::thread::spawn(move || {
                for i in 0..6 {
                    let request = format!(
                        "GET /rank?positives=0,4&negatives=1 HTTP/1.1\r\nHost: chaos\r\n\
                         X-Chaos: {thread}-{i}-padding-padding\r\nConnection: close\r\n\r\n"
                    );
                    let _ = raw_roundtrip(proxy_addr, request.as_bytes());
                }
            })
        })
        .collect();

    // Meanwhile: rewrite the sharded snapshot and reload it, twice.
    // Direct requests bypass the proxy, so each must fully succeed.
    for images in [30usize, 36] {
        std::thread::sleep(Duration::from_millis(100));
        write_sharded(images);
        let response = raw_roundtrip(
            daemon.addr,
            b"POST /snapshot/reload HTTP/1.1\r\nHost: chaos\r\nContent-Length: 0\r\n\
              Connection: close\r\n\r\n",
        )
        .expect("reload request must not be reset");
        assert_eq!(
            status_of(&response),
            Some(200),
            "reload must succeed: {:?}",
            body_of(&response)
        );
        let healthz = get(daemon.addr, "/healthz");
        assert_eq!(status_of(&healthz), Some(200));
        let health = Json::parse(&body_of(&healthz)).expect("healthz is JSON");
        assert_eq!(metric(&health, "images"), images as u64);
    }

    for handle in chaos {
        handle.join().expect("chaos client thread");
    }
    proxy.stop();

    // Quiescence: the books balance across both epochs, and the final
    // epoch is the last snapshot written.
    let metrics = assert_metrics_balanced(daemon.addr);
    assert!(
        metric(&metrics, "accepted_total") >= 18,
        "chaos + reload traffic must all be accounted for: {}",
        metrics.dump()
    );
    let health = Json::parse(&body_of(&get(daemon.addr, "/healthz"))).expect("healthz is JSON");
    assert_eq!(metric(&health, "images"), 36);
    assert!(metric(&health, "generation") >= 2, "{}", health.dump());
}

#[test]
fn cluster_scatter_survives_chaos_between_coordinator_and_workers() {
    // Distributed serving under fire: a coordinator fans out to two
    // workers *through* fault proxies, so every scatter leg can be
    // truncated, trickled, or reset. The contract is seed-agnostic
    // (the chaos sweep replays this scenario across random seeds):
    //
    // * clients talking directly to the coordinator never see an
    //   error — worst case is a well-formed `"partial": true` page;
    // * the coordinator's shard conservation law balances exactly:
    //   `shards_ranked + shards_missing == rank_total * total_shards`;
    // * bound accounting never invents arrivals: the workers' seeded
    //   count is bounded by the coordinator's forwarded count;
    // * once the coordinator drains, each worker's own connection
    //   books balance at quiescence.
    let seed = chaos_seed().wrapping_add(4);
    let dir = std::env::temp_dir().join(format!("milr_chaos_cluster_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let snapshot = dir.join("db.shards");
    let db = synthetic_database(24, 8, 3);
    let mut store =
        milr::store::ShardedDatabase::from_database(&db, &snapshot, 6).expect("shard the snapshot");
    store.flush().expect("flush the snapshot");
    let total_shards = store.shard_count() as u64;

    let worker_args = |index: &'static str| {
        [
            "--role",
            "worker",
            "--worker-index",
            index,
            "--worker-count",
            "2",
            "--read-timeout-ms",
            "30000",
        ]
    };
    let worker_a = DaemonUnderTest::start_over(dir.clone(), &snapshot, &worker_args("0"));
    let worker_b = DaemonUnderTest::start_over(dir.clone(), &snapshot, &worker_args("1"));
    let proxy_a = ChaosProxy::start(worker_a.addr, seed).expect("proxy a starts");
    let proxy_b = ChaosProxy::start(worker_b.addr, seed.wrapping_add(1)).expect("proxy b starts");
    // A short per-worker deadline bounds trickle faults; the huge
    // health interval keeps probe traffic out of the fault schedule.
    let worker_addrs = format!("{},{}", proxy_a.addr(), proxy_b.addr());
    let coordinator = DaemonUnderTest::start_over(
        dir,
        &snapshot,
        &[
            "--role",
            "coordinator",
            "--worker-addrs",
            &worker_addrs,
            "--worker-deadline-ms",
            "500",
            "--health-interval-ms",
            "600000",
        ],
    );

    let requests = 8u64;
    for index in 0..requests {
        let query = if index % 2 == 0 {
            "positives=0,4&negatives=1&k=12"
        } else {
            "positives=2,9&negatives=5&k=24"
        };
        let response = get(coordinator.addr, &format!("/cluster/rank?{query}"));
        assert_eq!(
            status_of(&response),
            Some(200),
            "request {index} (seed {seed}): chaos between nodes must never reach the client"
        );
        let json = Json::parse(&body_of(&response)).expect("rank response is JSON");
        assert!(
            json.get("partial").and_then(Json::as_bool).is_some(),
            "request {index} (seed {seed}) page is malformed: {}",
            json.dump()
        );
    }

    // The coordinator accounted for every shard of every rank.
    let status = Json::parse(&body_of(&get(coordinator.addr, "/cluster/status")))
        .expect("cluster status is JSON");
    let cluster = status.get("cluster").expect("cluster counters");
    assert_eq!(metric(cluster, "rank_total"), requests);
    assert_eq!(
        metric(cluster, "shards_ranked_total") + metric(cluster, "shards_missing_total"),
        requests * total_shards,
        "shard conservation must balance (seed {seed}): {}",
        status.dump()
    );
    let forwarded = metric(cluster, "bound_forwarded_total");

    // Drain the coordinator BEFORE polling the workers: its pooled
    // keep-alive sockets count as accepted-but-unresolved on a worker
    // until the exiting process closes them.
    let response = raw_roundtrip(
        coordinator.addr,
        b"POST /admin/shutdown HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n",
    )
    .expect("shutdown request");
    assert_eq!(status_of(&response), Some(200));
    let (success, stdout) = coordinator.wait_for_drain();
    assert!(success, "coordinator drain must exit 0; stdout: {stdout:?}");
    proxy_a.stop();
    proxy_b.stop();

    let mut seeded = 0;
    for worker in [&worker_a, &worker_b] {
        let metrics = assert_metrics_balanced(worker.addr);
        seeded += metric(
            metrics.get("worker").expect("worker section"),
            "bound_seeded_total",
        );
    }
    assert!(
        seeded <= forwarded,
        "workers saw {seeded} seeded bounds but the coordinator only forwarded {forwarded} \
         (seed {seed})"
    );
}

#[test]
fn drain_finishes_cleanly_with_chaos_in_flight() {
    let seed = chaos_seed().wrapping_add(2);
    let daemon = DaemonUnderTest::start("drain", &["--workers", "2", "--read-timeout-ms", "1500"]);
    let proxy = ChaosProxy::start(daemon.addr, seed).expect("proxy starts");

    // Launch slow chaos traffic and request the drain while it flies.
    let proxy_addr = proxy.addr();
    let inflight: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let request = format!(
                    "GET /healthz HTTP/1.1\r\nHost: chaos\r\nX-Pad: {i:064}\r\n\
                     Connection: close\r\n\r\n"
                );
                let _ = raw_roundtrip(proxy_addr, request.as_bytes());
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    let response = raw_roundtrip(
        daemon.addr,
        b"POST /admin/shutdown HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n",
    )
    .expect("shutdown request");
    assert_eq!(status_of(&response), Some(200));
    assert!(body_of(&response).contains("draining"));

    for handle in inflight {
        handle.join().expect("in-flight chaos client");
    }
    let (success, stdout) = daemon.wait_for_drain();
    assert!(success, "drain must exit 0; stdout: {stdout:?}");
    assert!(
        stdout.contains("milrd drained"),
        "drain banner missing: {stdout:?}"
    );
    proxy.stop();
}
