//! Integration tests of the colour baseline against the gray pipeline,
//! and of the PNM inspection I/O on generated images.

use milr::baseline::{color_retrieval_database, ColorBagGenerator};
use milr::core::{eval, QuerySession, RetrievalConfig};
use milr::imgproc::pnm;
use milr::mil::WeightPolicy;
use milr::synth::{ObjectDatabase, SceneDatabase};

fn baseline_config() -> RetrievalConfig {
    RetrievalConfig {
        policy: WeightPolicy::OriginalDd,
        feedback_rounds: 2,
        false_positives_per_round: 3,
        initial_positives: 3,
        initial_negatives: 3,
        max_iterations: 30,
        ..RetrievalConfig::default()
    }
}

#[test]
fn sbn_baseline_retrieves_sunsets_by_colour() {
    // Sunsets are the most colour-coded scene category (warm palette) —
    // the baseline's home turf.
    let db = SceneDatabase::builder()
        .images_per_category(10)
        .seed(21)
        .dimensions(64, 48)
        .build();
    let images: Vec<(milr::imgproc::RgbImage, usize)> = db
        .images()
        .iter()
        .cloned()
        .zip(db.labels().iter().copied())
        .collect();
    let retrieval =
        color_retrieval_database(&images, ColorBagGenerator::SingleBlobWithNeighbors).unwrap();
    let config = baseline_config();
    let split = db.split(0.4, 2);
    let target = db.category_index("sunset").unwrap();
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool)
        .test(split.test)
        .build()
        .unwrap();
    let ranking = session.run().unwrap();
    let relevant = eval::relevance(&ranking, retrieval.labels(), target);
    let ap = eval::average_precision(&relevant);
    let base = eval::random_precision_level(&relevant);
    assert!(
        ap > base * 1.5,
        "SBN baseline should beat random on sunsets: {ap} vs {base}"
    );
}

#[test]
fn row_baseline_builds_and_ranks() {
    let db = SceneDatabase::builder()
        .images_per_category(6)
        .seed(22)
        .dimensions(64, 48)
        .build();
    let images: Vec<(milr::imgproc::RgbImage, usize)> = db
        .images()
        .iter()
        .cloned()
        .zip(db.labels().iter().copied())
        .collect();
    let retrieval = color_retrieval_database(&images, ColorBagGenerator::Rows).unwrap();
    assert_eq!(retrieval.len(), 30);
    assert_eq!(retrieval.feature_dim(), 9);
    let config = baseline_config();
    let split = db.split(0.4, 3);
    let target = db.category_index("field").unwrap();
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool)
        .test(split.test)
        .build()
        .unwrap();
    let ranking = session.run().unwrap();
    assert!(!ranking.is_empty());
}

#[test]
fn baseline_object_bags_carry_little_signal_relative_to_gray() {
    // §4.2.4's second half: the colour baseline "would not work with
    // object images". With near-uniform light backgrounds, most SBN
    // instances are background-coloured and nearly identical across
    // categories. We verify the representation-level cause: the mean
    // inter-category SBN instance distance is tiny compared to the gray
    // pipeline's.
    let db = ObjectDatabase::builder()
        .images_per_category(3)
        .seed(23)
        .dimensions(48, 48)
        .build();
    let images: Vec<(milr::imgproc::RgbImage, usize)> = db
        .images()
        .iter()
        .cloned()
        .zip(db.labels().iter().copied())
        .collect();
    let sbn =
        color_retrieval_database(&images, ColorBagGenerator::SingleBlobWithNeighbors).unwrap();
    // Mean pairwise distance between first instances of different
    // categories, in units of feature-space diameter per dimension.
    let spread = |bags: &milr::core::RetrievalDatabase| -> f64 {
        let mut acc = 0.0;
        let mut n = 0;
        for i in 0..bags.len() {
            for j in (i + 1)..bags.len() {
                if bags.labels()[i] != bags.labels()[j] {
                    let a = bags.bag(i).unwrap().instance(0);
                    let b = bags.bag(j).unwrap().instance(0);
                    let d: f64 = a
                        .iter()
                        .zip(b)
                        .map(|(&x, &y)| {
                            let d = f64::from(x) - f64::from(y);
                            d * d
                        })
                        .sum::<f64>()
                        / a.len() as f64;
                    acc += d;
                    n += 1;
                }
            }
        }
        acc / n as f64
    };
    let gray_config = RetrievalConfig {
        resolution: 5,
        layout: milr::imgproc::RegionLayout::Small,
        ..RetrievalConfig::default()
    };
    let gray = milr::core::RetrievalDatabase::from_labelled_images(db.gray_images(), &gray_config)
        .unwrap();
    let sbn_spread = spread(&sbn);
    let gray_spread = spread(&gray);
    assert!(
        gray_spread > sbn_spread * 5.0,
        "gray features should spread object categories far more than colour \
         features: gray {gray_spread:.4} vs SBN {sbn_spread:.4}"
    );
}

#[test]
fn generated_images_survive_pnm_round_trips() {
    let db = SceneDatabase::builder()
        .images_per_category(1)
        .seed(30)
        .dimensions(48, 36)
        .build();
    let dir = std::env::temp_dir().join("milr_integration_pnm");
    std::fs::create_dir_all(&dir).unwrap();

    for (i, image) in db.images().iter().enumerate() {
        let ppm_path = dir.join(format!("scene_{i}.ppm"));
        pnm::save_ppm(image, &ppm_path).unwrap();
        let back = pnm::load_ppm(&ppm_path).unwrap();
        assert_eq!(back.width(), image.width());
        for (a, b) in image.channels().iter().zip(back.channels()) {
            assert!((a - b).abs() < 0.51, "PPM round trip must be 8-bit exact");
        }

        let gray = image.to_gray();
        let pgm_path = dir.join(format!("scene_{i}.pgm"));
        pnm::save_pgm(&gray, &pgm_path).unwrap();
        let gray_back = pnm::load_pgm(&pgm_path).unwrap();
        for (a, b) in gray.pixels().iter().zip(gray_back.pixels()) {
            assert!((a - b).abs() < 0.51);
        }
        std::fs::remove_file(&ppm_path).ok();
        std::fs::remove_file(&pgm_path).ok();
    }
}
