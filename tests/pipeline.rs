//! End-to-end integration: synthetic databases → feature pipeline →
//! Diverse Density training → ranking → evaluation.
//!
//! These tests run in debug mode, so they use reduced settings
//! (low resolution, the 9-region layout, few iterations); the assertions
//! check *relative* quality — retrieval must decisively beat random —
//! rather than absolute levels.

use milr::core::{eval, QuerySession, RetrievalConfig, RetrievalDatabase};
use milr::imgproc::RegionLayout;
use milr::mil::WeightPolicy;
use milr::synth::{ObjectDatabase, SceneDatabase};

fn fast_config(policy: WeightPolicy) -> RetrievalConfig {
    RetrievalConfig {
        resolution: 5,
        layout: RegionLayout::Small,
        policy,
        feedback_rounds: 2,
        false_positives_per_round: 3,
        initial_positives: 3,
        initial_negatives: 3,
        max_iterations: 30,
        ..RetrievalConfig::default()
    }
}

#[test]
fn scene_retrieval_beats_random() {
    let db = SceneDatabase::builder()
        .images_per_category(12)
        .seed(1)
        .dimensions(80, 60)
        .build();
    let config = fast_config(WeightPolicy::Identical);
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
    let split = db.split(0.34, 5);
    let target = db.category_index("waterfall").unwrap();
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool)
        .test(split.test)
        .build()
        .unwrap();
    let ranking = session.run().unwrap();
    let relevant = eval::relevance(&ranking, retrieval.labels(), target);
    let auc = eval::recall_auc(&relevant);
    let base = eval::random_precision_level(&relevant);
    let ap = eval::average_precision(&relevant);
    assert!(auc > 0.6, "recall AUC {auc} barely beats random");
    assert!(
        ap > base * 1.5,
        "average precision {ap} vs base rate {base}"
    );
}

#[test]
fn object_retrieval_beats_random() {
    let db = ObjectDatabase::builder()
        .images_per_category(6)
        .seed(2)
        .dimensions(64, 64)
        .build();
    let config = fast_config(WeightPolicy::SumConstraint { beta: 0.5 });
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
    let split = db.split(0.4, 6);
    let target = db.category_index("car").unwrap();
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool)
        .test(split.test)
        .build()
        .unwrap();
    let ranking = session.run().unwrap();
    let relevant = eval::relevance(&ranking, retrieval.labels(), target);
    let ap = eval::average_precision(&relevant);
    let base = eval::random_precision_level(&relevant);
    assert!(
        ap > base * 2.0,
        "average precision {ap} vs base rate {base}"
    );
}

#[test]
fn feedback_rounds_do_not_hurt() {
    // Feedback adds hard negatives; after the protocol the pool
    // precision should be at least as good as round one's.
    let db = SceneDatabase::builder()
        .images_per_category(10)
        .seed(3)
        .dimensions(80, 60)
        .build();
    let config = fast_config(WeightPolicy::Identical);
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
    let split = db.split(0.4, 9);
    let target = db.category_index("sunset").unwrap();
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool.clone())
        .test(split.test.clone())
        .build()
        .unwrap();

    let precision_at = |ranking: &[(usize, f64)], k: usize| {
        ranking
            .iter()
            .take(k)
            .filter(|&&(i, _)| retrieval.labels()[i] == target)
            .count() as f64
            / k as f64
    };

    let round1 = session.run_round().unwrap();
    let p1 = precision_at(&round1, 5);
    session.add_false_positives(3).unwrap();
    let round2 = session.run_round().unwrap();
    let p2 = precision_at(&round2, 5);
    assert!(
        p2 >= p1 - 0.21,
        "feedback should not collapse pool precision: {p1} -> {p2}"
    );
    assert!(
        session.negatives().len() > 3,
        "feedback must have added negatives"
    );
}

#[test]
fn all_policies_produce_valid_concepts_on_images() {
    let db = SceneDatabase::builder()
        .images_per_category(6)
        .seed(4)
        .dimensions(64, 48)
        .build();
    let target = db.category_index("field").unwrap();
    for policy in [
        WeightPolicy::OriginalDd,
        WeightPolicy::Identical,
        WeightPolicy::AlphaHack { alpha: 50.0 },
        WeightPolicy::SumConstraint { beta: 0.5 },
    ] {
        let config = RetrievalConfig {
            feedback_rounds: 1,
            ..fast_config(policy)
        };
        let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
        let split = db.split(0.5, 8);
        let mut session = QuerySession::builder(&retrieval)
            .config(&config)
            .target(target)
            .pool(split.pool)
            .test(split.test)
            .build()
            .unwrap();
        session.run_round().unwrap();
        let concept = session.concept().expect("trained");
        assert_eq!(concept.dim(), config.feature_dim());
        assert!(concept.weights().iter().all(|&w| w >= 0.0 && w.is_finite()));
        assert!(concept.point().iter().all(|&t| t.is_finite()));
        assert!(
            session.nldd().is_finite(),
            "{policy:?} produced non-finite NLDD"
        );
        // Policy-specific weight structure.
        match policy {
            WeightPolicy::Identical => {
                assert!(concept.weights().iter().all(|&w| w == 1.0));
            }
            WeightPolicy::SumConstraint { beta } => {
                let mean = concept.mean_weight();
                assert!(
                    mean >= beta - 1e-6,
                    "constraint violated: mean weight {mean} < β {beta}"
                );
                assert!(concept.weights().iter().all(|&w| w <= 1.0 + 1e-9));
            }
            _ => {}
        }
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let db = SceneDatabase::builder()
            .images_per_category(6)
            .seed(11)
            .dimensions(64, 48)
            .build();
        let config = fast_config(WeightPolicy::Identical);
        let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
        let split = db.split(0.34, 2);
        let target = db.category_index("lake").unwrap();
        let mut session = QuerySession::builder(&retrieval)
            .config(&config)
            .target(target)
            .pool(split.pool)
            .test(split.test)
            .build()
            .unwrap();
        session.run().unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two identical runs must produce identical rankings");
}

#[test]
fn concept_localises_the_matching_region() {
    // Train on scenes whose signature (the waterfall cascade) sits in a
    // known band; the best-matching instance of a positive test bag
    // should be a real region, not an arbitrary one. We check only that
    // best_instance is in range and its distance is the bag minimum.
    let db = SceneDatabase::builder()
        .images_per_category(8)
        .seed(12)
        .dimensions(80, 60)
        .build();
    let config = fast_config(WeightPolicy::Identical);
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config).unwrap();
    let split = db.split(0.4, 4);
    let target = db.category_index("waterfall").unwrap();
    let mut session = QuerySession::builder(&retrieval)
        .config(&config)
        .target(target)
        .pool(split.pool.clone())
        .test(split.test.clone())
        .build()
        .unwrap();
    session.run_round().unwrap();
    let concept = session.concept().unwrap();
    for &i in &split.test {
        let bag = retrieval.bag(i).unwrap();
        let best = concept.best_instance(bag);
        assert!(best < bag.len());
        let d_best = concept.instance_distance_sq(bag.instance(best));
        assert!((d_best - concept.bag_distance_sq(bag)).abs() < 1e-9);
    }
}
