//! Integration tests of the `milr` command-line tool, driven as a real
//! subprocess via `CARGO_BIN_EXE_milr`.

use std::process::Command;

fn milr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_milr"))
}

#[test]
fn no_arguments_prints_usage_successfully() {
    let out = milr().output().expect("spawn milr");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("usage"),
        "usage text expected, got: {stderr}"
    );
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = milr().arg("frobnicate").output().expect("spawn milr");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("usage"));
}

#[test]
fn generate_writes_images_and_index() {
    let dir = std::env::temp_dir().join("milr_cli_test_generate");
    std::fs::remove_dir_all(&dir).ok();
    let out = milr()
        .args([
            "generate",
            "--kind",
            "objects",
            "--out",
            dir.to_str().unwrap(),
            "--per-category",
            "1",
            "--seed",
            "9",
        ])
        .output()
        .expect("spawn milr");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let index = std::fs::read_to_string(dir.join("index.csv")).expect("index.csv");
    // Header + 19 categories × 1 image.
    assert_eq!(index.lines().count(), 20);
    assert!(index.starts_with("file,label,category"));
    assert!(index.contains("car"));
    assert!(index.contains("bottle"));

    // Every listed file exists and parses as a PPM.
    for line in index.lines().skip(1) {
        let file = line.split(',').next().unwrap();
        let img = milr::imgproc::pnm::load_ppm(dir.join(file)).expect("valid PPM");
        assert_eq!(img.width(), 96);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_requires_kind_and_out() {
    let out = milr()
        .args(["generate", "--kind", "scenes"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out is required"));

    let out = milr()
        .args(["generate", "--out", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--kind is required"));
}

#[test]
fn generate_rejects_unknown_kind() {
    let out = milr()
        .args([
            "generate",
            "--kind",
            "paintings",
            "--out",
            "/tmp/milr_cli_bad_kind",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown database kind"));
}

#[test]
fn inspect_prints_the_sampled_matrix() {
    // Create an image to inspect.
    let dir = std::env::temp_dir().join("milr_cli_test_inspect");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gradient.pgm");
    let img = milr::imgproc::GrayImage::from_fn(64, 48, |x, _| x as f32 * 4.0).unwrap();
    milr::imgproc::pnm::save_pgm(&img, &path).unwrap();

    let out = milr()
        .args([
            "inspect",
            "--image",
            path.to_str().unwrap(),
            "--resolution",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("64x48"));
    assert!(stdout.contains("4x4 matrix"));
    // 4 matrix rows with 4 numbers each, monotone across the gradient.
    let matrix_rows: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("  ") && l.contains('.'))
        .collect();
    assert!(matrix_rows.len() >= 4, "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_rejects_unsupported_formats() {
    let out = milr()
        .args(["inspect", "--image", "photo.jpeg"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported image format"));
}

/// Writes a small valid snapshot for the error-path tests below.
fn valid_snapshot(dir: &std::path::Path) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("db.milr");
    let db = milr::testkit::synthetic_database(12, 6, 5);
    milr::prelude::Store::default().save(&db, &path).unwrap();
    path
}

#[test]
fn preprocess_requires_kind_and_out() {
    let out = milr()
        .args(["preprocess", "--kind", "scenes"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out is required"));

    let out = milr()
        .args(["preprocess", "--out", "/tmp/milr_cli_x.milr"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--kind is required"));
}

#[test]
fn snapshot_of_a_missing_file_fails_cleanly() {
    let out = milr()
        .args(["snapshot", "--in", "/tmp/milr_cli_definitely_missing.milr"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("storage failure") && stderr.contains("definitely_missing"),
        "error must name the file: {stderr}"
    );
}

#[test]
fn snapshot_of_a_corrupt_file_reports_the_checksum() {
    let dir = std::env::temp_dir().join("milr_cli_corrupt_snapshot");
    let path = valid_snapshot(&dir);
    // Flip one payload bit: only the trailing checksum can catch it.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, bytes).unwrap();

    let out = milr()
        .args(["snapshot", "--in", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("corrupt") || stderr.contains("checksum") || stderr.contains("implausible"),
        "corruption must be diagnosed, not mis-loaded: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_with_a_missing_snapshot_fails_cleanly() {
    let out = milr()
        .args([
            "serve",
            "--snapshot",
            "/tmp/milr_cli_no_such_snapshot.milr",
            "--addr",
            "127.0.0.1:0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("storage failure"),
        "missing snapshot must fail before binding: {stderr}"
    );
}

#[test]
fn serve_on_a_busy_port_fails_cleanly() {
    let dir = std::env::temp_dir().join("milr_cli_busy_port");
    let path = valid_snapshot(&dir);
    // Occupy a port, then ask the daemon to bind it.
    let blocker = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = blocker.local_addr().unwrap();
    let out = milr()
        .args([
            "serve",
            "--snapshot",
            path.to_str().unwrap(),
            "--addr",
            &addr.to_string(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "bind conflict must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error:"),
        "bind failure must be reported: {stderr}"
    );
    drop(blocker);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_rejects_bad_option_values() {
    let dir = std::env::temp_dir().join("milr_cli_bad_serve_opts");
    let path = valid_snapshot(&dir);
    for (flag, value) in [
        ("--workers", "many"),
        ("--read-timeout-ms", "-1"),
        ("--session-capacity", "1.5"),
    ] {
        let out = milr()
            .args(["serve", "--snapshot", path.to_str().unwrap(), flag, value])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag} {value} must be rejected"
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(flag),
            "the error must name {flag}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fast_query_runs_end_to_end() {
    let out = milr()
        .args([
            "query",
            "--kind",
            "scenes",
            "--category",
            "waterfall",
            "--per-category",
            "6",
            "--seed",
            "2",
            "--rounds",
            "1",
            "--policy",
            "identical",
            "--fast",
        ])
        .output()
        .expect("spawn milr");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("rank,image,category,hit,distance_sq"));
    assert!(
        stdout.lines().count() > 5,
        "expected a ranking, got: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("average precision"));
}

#[test]
fn fast_query_dumps_concept_maps() {
    let dir = std::env::temp_dir().join("milr_cli_concept_dump");
    std::fs::remove_dir_all(&dir).ok();
    let out = milr()
        .args([
            "query",
            "--kind",
            "scenes",
            "--category",
            "sunset",
            "--per-category",
            "5",
            "--seed",
            "3",
            "--rounds",
            "1",
            "--policy",
            "identical",
            "--fast",
            "--dump-concept",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("spawn milr");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Both maps exist and parse; --fast uses 5x5 features.
    let point = milr::imgproc::pnm::load_pgm(dir.join("concept_point.pgm")).unwrap();
    let weights = milr::imgproc::pnm::load_pgm(dir.join("concept_weights.pgm")).unwrap();
    assert_eq!((point.width(), point.height()), (5, 5));
    assert_eq!((weights.width(), weights.height()), (5, 5));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_migrates_a_monolithic_snapshot() {
    let dir = std::env::temp_dir().join("milr_cli_shard");
    std::fs::remove_dir_all(&dir).ok();
    let path = valid_snapshot(&dir);
    let out_dir = dir.join("db.v3");

    let out = milr()
        .args([
            "shard",
            "--in",
            path.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
            "--shard-bags",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("12 images over 4 shards"),
        "12 bags / 3 per shard = 4 shards: {stdout}"
    );

    // The sharded copy round-trips to the same database, bit for bit.
    let original = milr::prelude::Store::default()
        .open::<milr::prelude::RetrievalDatabase>(&path)
        .unwrap();
    let sharded = milr::store::ShardedDatabase::open(&out_dir).unwrap();
    let rebuilt = sharded.to_database().unwrap();
    assert_eq!(rebuilt.labels(), original.labels());
    for i in 0..original.len() {
        assert_eq!(rebuilt.bag(i).unwrap(), original.bag(i).unwrap());
    }

    // `milr snapshot` understands the directory form too.
    let out = milr()
        .args(["snapshot", "--in", out_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("12 images") && stdout.contains("4 shards"),
        "{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compact_requires_out_for_monolithic_and_rejects_it_for_sharded() {
    let dir = std::env::temp_dir().join("milr_cli_compact_args");
    std::fs::remove_dir_all(&dir).ok();
    let path = valid_snapshot(&dir);

    // Monolithic input without --out: refused with a clear message.
    let out = milr()
        .args(["compact", "--in", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out is required"));

    // Migrate, then compact the sharded form in place; --out now refused.
    let out_dir = dir.join("db.v3");
    let out = milr()
        .args([
            "compact",
            "--in",
            path.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
            "--shard-bags",
            "5",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = milr()
        .args([
            "compact",
            "--in",
            out_dir.to_str().unwrap(),
            "--out",
            dir.join("elsewhere").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("already sharded"));

    let out = milr()
        .args(["compact", "--in", out_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 tombstones dropped"));
    std::fs::remove_dir_all(&dir).ok();
}
