//! Golden-trace regression suite: the committed `tests/golden/*.json`
//! files pin the full DD training trajectory (example sets, per-start
//! evaluation counts, objective values, argmin, concept, final ranking)
//! for a seeded synthetic corpus. Any solver or kernel change that
//! moves a single float shows up here as a path-qualified diff; if the
//! change is intended, regenerate with `milr golden --bless`.

use std::path::{Path, PathBuf};
use std::process::Command;

use milr::serve::Json;
use milr::testkit::{
    compare_traces, record_trace, record_warm_trace, standard_cases, warm_trace_file_name,
};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn committed_traces_match_live_training() {
    for case in standard_cases() {
        let path = golden_dir().join(case.file_name());
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden trace {} ({e}); regenerate with `milr golden --bless`",
                path.display()
            )
        });
        let golden = Json::parse(text.trim()).expect("committed trace parses");
        let actual = record_trace(&case).expect("trace records");
        let diffs = compare_traces(&golden, &actual);
        assert!(
            diffs.is_empty(),
            "golden trace {} diverged — a kernel/solver change moved the \
             trajectory. Review, then `milr golden --bless` if intended:\n  {}",
            case.name,
            diffs.join("\n  ")
        );
    }
}

#[test]
fn committed_warm_trace_matches_live_convergence() {
    let path = golden_dir().join(warm_trace_file_name());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing warm golden trace {} ({e}); regenerate with `milr golden --bless`",
            path.display()
        )
    });
    let golden = Json::parse(text.trim()).expect("committed warm trace parses");
    let actual = record_warm_trace().expect("warm trace records");
    let diffs = compare_traces(&golden, &actual);
    assert!(
        diffs.is_empty(),
        "warm golden trace diverged — warm seeding, start-bag reduction, or \
         the solver changed. Review, then `milr golden --bless` if intended:\n  {}",
        diffs.join("\n  ")
    );
}

#[test]
fn perturbed_kernel_output_fails_with_a_readable_diff() {
    // Simulate the review experience of a DD kernel change: nudge one
    // float of the recorded trace and confirm the comparator names the
    // exact path rather than dumping opaque blobs.
    let case = &standard_cases()[0];
    let path = golden_dir().join(case.file_name());
    let text = std::fs::read_to_string(&path).expect("golden trace exists");
    let golden = Json::parse(text.trim()).expect("parses");
    let mut perturbed = record_trace(case).expect("trace records");
    if let Json::Obj(ref mut fields) = perturbed {
        let rounds = fields
            .iter_mut()
            .find(|(k, _)| k == "rounds")
            .map(|(_, v)| v)
            .expect("trace has rounds");
        if let Json::Arr(ref mut rounds) = rounds {
            if let Json::Obj(ref mut round) = rounds[0] {
                let nldd = round
                    .iter_mut()
                    .find(|(k, _)| k == "nldd")
                    .map(|(_, v)| v)
                    .expect("round has nldd");
                if let Json::Num(ref mut v) = nldd {
                    *v *= 1.0 + 1e-12; // the smallest plausible kernel drift
                }
            }
        }
    }
    let diffs = compare_traces(&golden, &perturbed);
    assert_eq!(diffs.len(), 1, "exactly one leaf moved: {diffs:?}");
    assert!(
        diffs[0].starts_with("trace.rounds[0].nldd: golden "),
        "diff names the path and both values: {}",
        diffs[0]
    );
}

#[test]
fn golden_cli_check_passes_and_bless_round_trips() {
    let bin = env!("CARGO_BIN_EXE_milr");
    // The committed corpus must satisfy `milr golden` as-is.
    let check = Command::new(bin)
        .args(["golden", "--dir"])
        .arg(golden_dir())
        .output()
        .expect("spawn milr golden");
    assert!(
        check.status.success(),
        "committed corpus failed `milr golden`:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&check.stdout),
        String::from_utf8_lossy(&check.stderr)
    );

    // --bless into a scratch dir reproduces the committed bytes.
    let scratch = std::env::temp_dir().join(format!("milr_golden_bless_{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();
    let bless = Command::new(bin)
        .args(["golden", "--bless", "--dir"])
        .arg(&scratch)
        .output()
        .expect("spawn milr golden --bless");
    assert!(
        bless.status.success(),
        "bless failed: {}",
        String::from_utf8_lossy(&bless.stderr)
    );
    for case in standard_cases() {
        let committed = std::fs::read(golden_dir().join(case.file_name())).unwrap();
        let blessed = std::fs::read(scratch.join(case.file_name())).unwrap();
        assert_eq!(
            committed, blessed,
            "--bless must reproduce the committed bytes for {}",
            case.name
        );
    }
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn golden_cli_reports_divergence_with_paths_and_nonzero_exit() {
    let bin = env!("CARGO_BIN_EXE_milr");
    let scratch = std::env::temp_dir().join(format!("milr_golden_diverge_{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();
    for case in standard_cases() {
        let committed = golden_dir().join(case.file_name());
        std::fs::copy(&committed, scratch.join(case.file_name())).unwrap();
    }
    // Corrupt one value of one trace the way a kernel change would.
    let victim = scratch.join(standard_cases()[0].file_name());
    let text = std::fs::read_to_string(&victim).unwrap();
    let corrupted = text.replacen("\"nldd\":", "\"nldd\":1e9,\"was_nldd\":", 1);
    assert_ne!(text, corrupted, "trace must contain an nldd field");
    std::fs::write(&victim, corrupted).unwrap();

    let check = Command::new(bin)
        .args(["golden", "--dir"])
        .arg(&scratch)
        .output()
        .expect("spawn milr golden");
    assert_eq!(
        check.status.code(),
        Some(2),
        "divergence must exit 2: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    let stderr = String::from_utf8_lossy(&check.stderr);
    assert!(
        stderr.contains("trace.rounds[0].nldd"),
        "diff must name the path: {stderr}"
    );
    assert!(
        stderr.contains("--bless"),
        "failure must mention the regeneration path: {stderr}"
    );
    std::fs::remove_dir_all(&scratch).ok();
}
