//! Property-based tests (proptest) of the paper's mathematical claims
//! and the optimisation substrate's invariants.

use milr::imgproc::correlate::weighted_correlation;
use milr::imgproc::normalize::{weighted_sq_distance, NormalizedVector};
use milr::mil::{Bag, BagLabel, DdObjective, MilDataset, Parameterization};
use milr::optim::numdiff::gradient_error;
use milr::optim::{BoxSumProjection, Project};
use milr::prelude::RankRequest;
use proptest::prelude::*;

/// Strategy: a non-flat feature vector of length `n` with values in a
/// sane range.
fn feature_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, n).prop_filter("vector must not be flat", |v| {
        let mean = v.iter().sum::<f32>() / v.len() as f32;
        v.iter().any(|&x| (x - mean).abs() > 1.0)
    })
}

/// Strategy: strictly positive weights (so weighted σ never vanishes).
fn weights(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..2.0, n)
}

proptest! {
    /// §3.4 Lemma: Σ w_k B_k² = n for vectors normalised under the same
    /// weights.
    #[test]
    fn lemma_weighted_norm_is_n(raw in feature_vec(24), w in weights(24)) {
        let nv = NormalizedVector::weighted(&raw, &w).unwrap();
        let norm: f64 = nv
            .values
            .iter()
            .zip(&w)
            .map(|(&b, &wk)| wk * f64::from(b) * f64::from(b))
            .sum();
        prop_assert!((norm - 24.0).abs() < 1e-2, "norm = {norm}");
    }

    /// §3.4 Claim: ‖B₁ − B₂‖²_w = 2n(1 − Corr_w(A₁, A₂)).
    #[test]
    fn claim_distance_correlation_identity(
        a1 in feature_vec(16),
        a2 in feature_vec(16),
        w in weights(16),
    ) {
        let b1 = NormalizedVector::weighted(&a1, &w).unwrap();
        let b2 = NormalizedVector::weighted(&a2, &w).unwrap();
        let dist = weighted_sq_distance(&b1.values, &b2.values, &w);
        let corr = weighted_correlation(&a1, &a2, &w);
        let expected = 2.0 * 16.0 * (1.0 - corr);
        prop_assert!(
            (dist - expected).abs() < 1e-2,
            "dist {dist} vs 2n(1-corr) {expected}"
        );
    }

    /// Correlation is bounded and symmetric under any weights.
    #[test]
    fn correlation_bounded_and_symmetric(
        a in feature_vec(12),
        b in feature_vec(12),
        w in weights(12),
    ) {
        let r_ab = weighted_correlation(&a, &b, &w);
        let r_ba = weighted_correlation(&b, &a, &w);
        prop_assert!((-1.0..=1.0).contains(&r_ab));
        prop_assert!((r_ab - r_ba).abs() < 1e-10);
    }

    /// The projection's output is always feasible and idempotent.
    #[test]
    fn projection_feasible_and_idempotent(
        x in proptest::collection::vec(-3.0f64..3.0, 10),
        beta in 0.0f64..1.0,
    ) {
        let p = BoxSumProjection::for_beta(10, beta);
        let mut y = x.clone();
        p.project(&mut y);
        prop_assert!(p.is_feasible(&y, 1e-7), "projection output infeasible: {y:?}");
        let once = y.clone();
        p.project(&mut y);
        for (a, b) in y.iter().zip(&once) {
            prop_assert!((a - b).abs() < 1e-9, "projection not idempotent");
        }
    }

    /// Projection never moves a feasible point.
    #[test]
    fn projection_fixes_feasible_points(
        x in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        let sum: f64 = x.iter().sum();
        let beta = (sum / 8.0 - 0.05).max(0.0);
        let p = BoxSumProjection::for_beta(8, beta);
        prop_assume!(p.is_feasible(&x, 0.0));
        let mut y = x.clone();
        p.project(&mut y);
        for (a, b) in y.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Projection is a contraction towards the feasible set: the output
    /// is never farther from any feasible point than the input was.
    #[test]
    fn projection_is_non_expansive_to_feasible_points(
        x in proptest::collection::vec(-2.0f64..2.0, 6),
        z_raw in proptest::collection::vec(0.1f64..1.0, 6),
    ) {
        let p = BoxSumProjection::for_beta(6, 0.3);
        // Construct a feasible z.
        let mut z = z_raw;
        p.project(&mut z);
        let mut y = x.clone();
        p.project(&mut y);
        let d = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(&p, &q)| (p - q) * (p - q)).sum()
        };
        prop_assert!(d(&y, &z) <= d(&x, &z) + 1e-9);
    }

    /// The DD analytic gradient agrees with central differences on
    /// random small datasets, for all parameterizations.
    #[test]
    fn dd_gradients_match_numeric(
        pos1 in feature_vec(4),
        pos2 in feature_vec(4),
        neg in feature_vec(4),
        t in proptest::collection::vec(-2.0f64..2.0, 4),
        s in proptest::collection::vec(0.2f64..1.5, 4),
    ) {
        // Scale features down so exp(−d) stays in a numerically
        // interesting range.
        let scale = |v: &[f32]| -> Vec<f32> { v.iter().map(|&x| x / 50.0).collect() };
        let mut ds = MilDataset::new();
        ds.push(Bag::new(vec![scale(&pos1)]).unwrap(), BagLabel::Positive).unwrap();
        ds.push(Bag::new(vec![scale(&pos2)]).unwrap(), BagLabel::Positive).unwrap();
        ds.push(Bag::new(vec![scale(&neg)]).unwrap(), BagLabel::Negative).unwrap();

        // h = 1e-4 sits on the sweet spot between truncation and
        // floating-point noise for this objective (the exp/log chain
        // amplifies rounding at very small steps).
        let fixed = DdObjective::new(&ds, Parameterization::FixedWeights);
        prop_assert!(gradient_error(&fixed, &t, 1e-4) < 1e-3);

        let mut x2 = t.clone();
        x2.extend_from_slice(&s);
        let sqrt = DdObjective::new(&ds, Parameterization::SqrtWeights { alpha: 1.0 });
        prop_assert!(gradient_error(&sqrt, &x2, 1e-4) < 1e-3);

        let direct = DdObjective::new(&ds, Parameterization::DirectWeights);
        prop_assert!(gradient_error(&direct, &x2, 1e-4) < 1e-3);
    }

    /// Smoothing-and-sampling is a weighted average: every output entry
    /// lies within the input's intensity range, and constant images map
    /// to constant matrices.
    #[test]
    fn smooth_sample_respects_intensity_bounds(
        pixels in proptest::collection::vec(0.0f32..255.0, 24 * 18),
        h in 2usize..8,
    ) {
        use milr::imgproc::{smooth_sample, GrayImage};
        let img = GrayImage::from_vec(24, 18, pixels).unwrap();
        let (lo, hi) = img.min_max();
        let sampled = smooth_sample(&img, h).unwrap();
        for &v in sampled.pixels() {
            prop_assert!(v >= lo - 1e-3 && v <= hi + 1e-3, "{v} outside [{lo}, {hi}]");
        }
    }

    /// Every region layout produces the declared number of in-bounds
    /// rectangles for arbitrary image sizes.
    #[test]
    fn region_layouts_fit_arbitrary_sizes(
        w in 16usize..300,
        h in 16usize..300,
    ) {
        use milr::imgproc::RegionLayout;
        for layout in [RegionLayout::Small, RegionLayout::Standard, RegionLayout::Large] {
            let regions = layout.regions(w, h).unwrap();
            prop_assert_eq!(regions.len(), layout.region_count());
            for r in regions {
                prop_assert!(r.fits_within(w, h), "{:?} escapes {}x{}", r, w, h);
            }
        }
    }

    /// PGM round trips are 8-bit exact for arbitrary in-range images.
    #[test]
    fn pgm_round_trip_is_8bit_exact(
        pixels in proptest::collection::vec(0.0f32..255.0, 12 * 9),
    ) {
        use milr::imgproc::{pnm, GrayImage};
        let img = GrayImage::from_vec(12, 9, pixels).unwrap();
        let mut buf = Vec::new();
        pnm::write_pgm(&img, &mut buf).unwrap();
        let back = pnm::read_pgm(std::io::Cursor::new(buf)).unwrap();
        for (a, b) in img.pixels().iter().zip(back.pixels()) {
            prop_assert!((a - b).abs() <= 0.5 + 1e-4);
        }
    }

    /// Mirroring twice is the identity, and mirroring commutes with the
    /// §3.4 normalisation (the pipeline relies on this to mirror after
    /// normalising).
    #[test]
    fn mirror_commutes_with_normalisation(
        pixels in proptest::collection::vec(0.0f32..255.0, 10 * 10)
            .prop_filter("needs contrast", |v| {
                let mean = v.iter().sum::<f32>() / v.len() as f32;
                v.iter().any(|&x| (x - mean).abs() > 1.0)
            }),
    ) {
        use milr::imgproc::mirror::mirror_horizontal;
        use milr::imgproc::GrayImage;
        let img = GrayImage::from_vec(10, 10, pixels).unwrap();
        prop_assert_eq!(mirror_horizontal(&mirror_horizontal(&img)), img.clone());

        let norm_then_mirror = {
            let nv = NormalizedVector::unit(img.pixels()).unwrap();
            let as_img = GrayImage::from_vec(10, 10, nv.values).unwrap();
            mirror_horizontal(&as_img)
        };
        let mirror_then_norm = {
            let m = mirror_horizontal(&img);
            let nv = NormalizedVector::unit(m.pixels()).unwrap();
            GrayImage::from_vec(10, 10, nv.values).unwrap()
        };
        for (a, b) in norm_then_mirror.pixels().iter().zip(mirror_then_norm.pixels()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Convolution is linear: conv(a·f + b·g) = a·conv(f) + b·conv(g).
    #[test]
    fn convolution_is_linear(
        f in proptest::collection::vec(-50.0f32..50.0, 10 * 8),
        g in proptest::collection::vec(-50.0f32..50.0, 10 * 8),
        a in -2.0f32..2.0,
        b in -2.0f32..2.0,
    ) {
        use milr::imgproc::{convolve, GrayImage, Kernel};
        let kernel = Kernel::gaussian(0.8);
        let fi = GrayImage::from_vec(10, 8, f.clone()).unwrap();
        let gi = GrayImage::from_vec(10, 8, g.clone()).unwrap();
        let combo = GrayImage::from_vec(
            10,
            8,
            f.iter().zip(&g).map(|(&x, &y)| a * x + b * y).collect(),
        )
        .unwrap();
        let lhs = convolve(&combo, &kernel);
        let cf = convolve(&fi, &kernel);
        let cg = convolve(&gi, &kernel);
        for ((&l, &x), &y) in lhs.pixels().iter().zip(cf.pixels()).zip(cg.pixels()) {
            prop_assert!((l - (a * x + b * y)).abs() < 1e-2, "{l} vs {}", a * x + b * y);
        }
    }

    /// Histogram intersection is a similarity: symmetric, 1 on self,
    /// within [0, 1].
    #[test]
    fn histogram_intersection_properties(
        f in proptest::collection::vec(0.0f32..255.0, 12 * 12),
        g in proptest::collection::vec(0.0f32..255.0, 12 * 12),
    ) {
        use milr::imgproc::histogram::Histogram;
        use milr::imgproc::GrayImage;
        let hf = Histogram::of(&GrayImage::from_vec(12, 12, f).unwrap(), 16);
        let hg = Histogram::of(&GrayImage::from_vec(12, 12, g).unwrap(), 16);
        let s = hf.intersection(&hg);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        prop_assert!((s - hg.intersection(&hf)).abs() < 1e-12);
        prop_assert!((hf.intersection(&hf) - 1.0).abs() < 1e-12);
    }

    /// Bag distances are permutation-invariant in the instance order and
    /// equal the minimum instance distance.
    #[test]
    fn bag_distance_is_min_of_instances(
        instances in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 3),
            1..6,
        ),
        point in proptest::collection::vec(-5.0f64..5.0, 3),
        w in weights(3),
    ) {
        use milr::mil::Concept;
        let bag = Bag::new(instances.clone()).unwrap();
        let concept = Concept::new(point, w);
        let expected = instances
            .iter()
            .map(|inst| concept.instance_distance_sq(inst))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((concept.bag_distance_sq(&bag) - expected).abs() < 1e-12);

        let mut reversed = instances;
        reversed.reverse();
        let rbag = Bag::new(reversed).unwrap();
        prop_assert!(
            (concept.bag_distance_sq(&rbag) - expected).abs() < 1e-12,
            "instance order must not matter"
        );
    }

    /// Partial-distance pruning is exact: the pruned instance distance is
    /// bit-identical to the sequential fold whenever it survives the
    /// bound, and an abandoned instance really was at or above it. The
    /// dimension count straddles the prune stride so both the strided
    /// middle and the tail are exercised.
    #[test]
    fn pruned_instance_distance_is_bit_exact(
        raw_inst in proptest::collection::vec(-5.0f32..5.0, 40),
        raw_point in proptest::collection::vec(-5.0f64..5.0, 40),
        raw_w in weights(40),
        k in 1usize..40,
        bound_frac in 0.0f64..2.0,
    ) {
        use milr::mil::Concept;
        let inst = &raw_inst[..k];
        let concept = Concept::new(raw_point[..k].to_vec(), raw_w[..k].to_vec());
        // The naive reference spells out the canonical accumulation
        // order `instance_distance_sq` specifies: four strided lanes
        // (dimension i feeds lane i % 4 within full blocks, remainder
        // dimensions feed lanes 0.. in order) combined as
        // (a0 + a1) + (a2 + a3), each term built as (w·d)·d.
        let mut acc = [0.0f64; 4];
        let blocks = k / 4;
        for i in 0..blocks * 4 {
            let d = raw_point[i] - f64::from(raw_inst[i]);
            acc[i % 4] += raw_w[i] * d * d;
        }
        for (l, i) in (blocks * 4..k).enumerate() {
            let d = raw_point[i] - f64::from(raw_inst[i]);
            acc[l] += raw_w[i] * d * d;
        }
        let naive = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        prop_assert_eq!(concept.instance_distance_sq(inst).to_bits(), naive.to_bits());
        let bound = naive * bound_frac;
        match concept.instance_distance_sq_below(inst, bound) {
            Some(d) => {
                prop_assert!(naive < bound, "survived a bound it does not beat");
                prop_assert_eq!(d.to_bits(), naive.to_bits());
            }
            None => prop_assert!(naive >= bound, "abandoned below the bound"),
        }
    }

    /// The bounded bag distance agrees bit-for-bit with the naive
    /// min-fold: `Some` exactly when the min beats the bound, carrying
    /// the identical value.
    #[test]
    fn bounded_bag_distance_is_bit_exact(
        instances in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 11),
            1..6,
        ),
        point in proptest::collection::vec(-5.0f64..5.0, 11),
        w in weights(11),
        bound_frac in 0.0f64..3.0,
    ) {
        use milr::mil::Concept;
        let bag = Bag::new(instances.clone()).unwrap();
        let concept = Concept::new(point, w);
        let naive = instances
            .iter()
            .map(|inst| concept.instance_distance_sq(inst))
            .fold(f64::INFINITY, f64::min);
        prop_assert_eq!(concept.bag_distance_sq(&bag).to_bits(), naive.to_bits());
        let bound = naive * bound_frac;
        match concept.bag_distance_sq_below(&bag, bound) {
            Some(d) => {
                prop_assert!(naive < bound);
                prop_assert_eq!(d.to_bits(), naive.to_bits());
            }
            None => prop_assert!(naive >= bound),
        }
    }
}

// The pooled pipeline checks preprocess a database per case, so they run
// fewer, larger cases than the arithmetic properties above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Preprocessing and ranking are deterministic under any worker
    /// count: every thread setting yields the serial bags, the serial
    /// ranking, and a top-k that is an exact prefix of it.
    #[test]
    fn pooled_pipeline_matches_serial_for_any_thread_count(
        images_px in proptest::collection::vec(
            proptest::collection::vec(0.0f32..255.0, 64 * 48),
            3..7,
        ),
        point in proptest::collection::vec(-2.0f64..2.0, 100),
        w in weights(100),
        threads in 0usize..6,
    ) {
        use milr::core::{RetrievalConfig, RetrievalDatabase};
        use milr::imgproc::GrayImage;
        use milr::mil::Concept;
        let images: Vec<(GrayImage, usize)> = images_px
            .into_iter()
            .enumerate()
            .map(|(i, px)| (GrayImage::from_vec(64, 48, px).unwrap(), i % 3))
            .collect();
        let serial_config = RetrievalConfig { threads: 1, ..RetrievalConfig::default() };
        let pooled_config = RetrievalConfig { threads, ..RetrievalConfig::default() };
        let serial =
            RetrievalDatabase::from_labelled_images(images.clone(), &serial_config).unwrap();
        let pooled = RetrievalDatabase::from_labelled_images(images, &pooled_config).unwrap();
        for i in 0..serial.len() {
            prop_assert_eq!(serial.bag(i).unwrap(), pooled.bag(i).unwrap());
        }

        let concept = Concept::new(point, w);
        let candidates: Vec<usize> = (0..serial.len()).collect();
        let request = RankRequest::over(candidates.clone());
        let reference = serial.rank(&concept, &request).unwrap();
        let ranked = pooled.rank(&concept, &request).unwrap();
        prop_assert_eq!(&ranked, &reference);
        for k in [0, 1, reference.len() / 2, reference.len(), reference.len() + 3] {
            let top = pooled
                .rank(&concept, &RankRequest::over(candidates.clone()).top(k))
                .unwrap();
            prop_assert_eq!(&top[..], &reference[..k.min(reference.len())]);
        }
    }
}

// Batched ranking preprocesses a database per case, so it runs few,
// large cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cross-request batching is bit-identical to per-query ranking: for
    /// any database, any mix of bounded/unbounded queries, any candidate
    /// scope and any thread count, `rank_batch` returns — query for
    /// query, index for index, bit for bit on every distance — exactly
    /// what one `rank` call per query returns.
    #[test]
    fn batched_rank_is_bit_identical_to_per_query_rank(
        raw in proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, 5), 1..4),
            2..20,
        ),
        query_specs in proptest::collection::vec(
            (proptest::collection::vec(-10.0f64..10.0, 5), weights(5), 0usize..10),
            1..7,
        ),
        scope_sel in 0usize..2,
        threads in 0usize..5,
    ) {
        use milr::core::{BatchQuery, RetrievalDatabase};
        use milr::mil::{Bag, Concept};
        use std::sync::Arc;

        let labels: Vec<usize> = (0..raw.len()).map(|n| n % 2).collect();
        let bags: Vec<Bag> = raw.into_iter().map(|b| Bag::new(b).unwrap()).collect();
        let db = RetrievalDatabase::from_bags(bags, labels).unwrap();
        let queries: Vec<BatchQuery> = query_specs
            .into_iter()
            .map(|(point, w, k)| BatchQuery {
                concept: Arc::new(Concept::new(point, w)),
                // k == 9 doubles as "unbounded"; k > len clamps like rank.
                top_k: (k < 9).then_some(k),
            })
            .collect();
        let candidates: Vec<usize> = (0..db.len()).filter(|i| i % 3 != 1).collect();
        let request = if scope_sel == 0 {
            RankRequest::all().threads(threads)
        } else {
            RankRequest::over(candidates).threads(threads)
        };
        let batched = db.rank_batch(&queries, &request).unwrap();
        prop_assert_eq!(batched.len(), queries.len());
        for (query, got) in queries.iter().zip(&batched) {
            let mut single = request.clone();
            single.top_k = query.top_k;
            let want = db.rank(&query.concept, &single).unwrap();
            prop_assert_eq!(got, &want);
            for (a, b) in got.iter().zip(&want) {
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }
}

// Indexed-ranking bit-identity writes a sharded store per case, so it
// also runs few, large cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The coarse-indexed scatter ranking is bit-identical — index for
    /// index, bit for bit on every distance — to the exhaustive exact
    /// scan, crossed over random bags × weights × cell counts (1..=32)
    /// × shard layouts (1..=8) × tombstone subsets, and agrees with the
    /// quantized-only (`index(false)`) and unscreened (`rank_exact`)
    /// paths on every request shape.
    #[test]
    fn indexed_rank_is_bit_identical_to_exhaustive(
        raw in proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, 6), 1..5),
            1..33,
        ),
        point in proptest::collection::vec(-10.0f64..10.0, 6),
        w in weights(6),
        cells in 1usize..33,
        shards in 1usize..9,
        seed in 0u64..1000,
        k in 0usize..12,
    ) {
        use milr::core::RetrievalDatabase;
        use milr::mil::{Bag, Concept};
        use milr::store::ShardedDatabase;
        use milr::synth::corpus;

        let labels: Vec<usize> = (0..raw.len()).map(|n| n % 3).collect();
        let bags: Vec<Bag> = raw.into_iter().map(|b| Bag::new(b).unwrap()).collect();
        let db = RetrievalDatabase::from_bags(bags, labels).unwrap();
        let concept = Concept::new(point, w);

        let dir = std::env::temp_dir()
            .join("milr_facade_proptests")
            .join(format!("indexed_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let capacity = db.len().div_ceil(shards);
        let mut store = ShardedDatabase::from_database(&db, &dir, capacity).unwrap();
        let mut live = Vec::new();
        for i in 0..db.len() {
            if corpus::tombstone_pattern(i, seed, 3) && live.len() + 1 < db.len() {
                store.delete(i).unwrap();
            } else {
                live.push(i);
            }
        }
        // Seal and persist every shard, then force the swept cell count
        // so the skip math is exercised at all granularities.
        store.flush().unwrap();
        store.rebuild_indexes(cells);

        let exhaustive = db.rank(&concept, &RankRequest::over(live)).unwrap();
        for request in [RankRequest::all(), RankRequest::all().top(k)] {
            let want =
                &exhaustive[..request.top_k.map_or(exhaustive.len(), |k| k.min(exhaustive.len()))];
            let indexed = store.rank(&concept, &request).unwrap();
            prop_assert_eq!(&indexed[..], want);
            for (a, b) in indexed.iter().zip(want) {
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
            let unindexed = store.rank(&concept, &request.clone().index(false)).unwrap();
            prop_assert_eq!(&unindexed[..], &indexed[..]);
            let exact = store.rank_exact(&concept, &request).unwrap();
            prop_assert_eq!(&exact[..], &indexed[..]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

// Aggregator cross-path identity also writes a sharded store per case,
// so it runs few, large cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every [`BagAggregator`]'s ranking key is the naive per-bag
    /// reference fold, bit for bit, on **every** path: the monolithic
    /// rank, the sharded scatter (any shard layout, with tombstones,
    /// indexed or not, bounded or not), and the batch API. A request
    /// that never names an aggregator is bit-identical to explicit
    /// min-distance, and every top-k page is an exact prefix of the
    /// full ranking — the wire contract the daemon and cluster rely on.
    #[test]
    fn aggregated_rankings_match_the_naive_fold_on_every_path(
        raw in proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, 5), 1..5),
            2..24,
        ),
        point in proptest::collection::vec(-10.0f64..10.0, 5),
        w in weights(5),
        shards in 1usize..6,
        seed in 0u64..1000,
        k in 1usize..10,
        threads in 0usize..4,
    ) {
        use milr::core::{BatchQuery, RetrievalDatabase};
        use milr::mil::{Bag, BagAggregator, Concept};
        use milr::store::ShardedDatabase;
        use milr::synth::corpus;
        use std::sync::Arc;

        let labels: Vec<usize> = (0..raw.len()).map(|n| n % 3).collect();
        let bags: Vec<Bag> = raw.into_iter().map(|b| Bag::new(b).unwrap()).collect();
        let db = RetrievalDatabase::from_bags(bags, labels).unwrap();
        let concept = Arc::new(Concept::new(point, w));

        let dir = std::env::temp_dir()
            .join("milr_facade_proptests")
            .join(format!("aggregated_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let capacity = db.len().div_ceil(shards);
        let mut store = ShardedDatabase::from_database(&db, &dir, capacity).unwrap();
        let mut live = Vec::new();
        for i in 0..db.len() {
            if corpus::tombstone_pattern(i, seed, 4) && live.len() + 1 < db.len() {
                store.delete(i).unwrap();
            } else {
                live.push(i);
            }
        }
        store.flush().unwrap();

        for aggregator in BagAggregator::ALL {
            let request = RankRequest::over(live.clone())
                .threads(threads)
                .aggregator(aggregator);
            let full = db.rank(&concept, &request).unwrap();

            // 1. Every returned key is the reference fold of that bag's
            // exact instance distances, bit for bit, and the ranking is
            // a sorted permutation of the live set.
            prop_assert_eq!(full.len(), live.len());
            for &(index, key) in &full {
                let distances: Vec<f64> = db
                    .bag(index)
                    .unwrap()
                    .instances()
                    .map(|inst| concept.instance_distance_sq(inst))
                    .collect();
                prop_assert!(
                    key.to_bits() == aggregator.fold(&distances).to_bits(),
                    "{aggregator} key for bag {index} is not the reference fold"
                );
                prop_assert!(key >= 0.0 && key.is_finite(), "{aggregator} key invalid");
            }
            for pair in full.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].1, "{aggregator} ranking unsorted");
            }

            // 2. The sharded scatter agrees bit for bit, indexed or not,
            // bounded or not, and pages are exact prefixes.
            for request in [
                RankRequest::all().aggregator(aggregator),
                RankRequest::all().top(k).aggregator(aggregator),
                RankRequest::all().top(k).aggregator(aggregator).index(false),
            ] {
                let want = &full[..request.top_k.map_or(full.len(), |k| k.min(full.len()))];
                let scattered = store.rank(&concept, &request).unwrap();
                prop_assert_eq!(&scattered[..], want);
                for (a, b) in scattered.iter().zip(want) {
                    prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }

            // 3. The batch path carries the aggregator too.
            let batched = db
                .rank_batch(
                    &[BatchQuery { concept: Arc::clone(&concept), top_k: Some(k) }],
                    &RankRequest::over(live.clone()).threads(threads).aggregator(aggregator),
                )
                .unwrap();
            prop_assert_eq!(&batched[0][..], &full[..k.min(full.len())]);

            // 4. Never naming an aggregator is exactly min-distance.
            if aggregator.is_min() {
                let implicit = db
                    .rank(&concept, &RankRequest::over(live.clone()).threads(threads))
                    .unwrap();
                prop_assert_eq!(&implicit, &full);
                for (a, b) in implicit.iter().zip(&full) {
                    prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
