//! Property tests for the daemon's hand-rolled wire codecs: base64
//! (`milr::serve::base64`) and JSON (`milr::serve::Json`). The contract
//! under attack: round-trips are exact, adversarial input never panics,
//! and every rejection is an error value — the codecs sit directly on
//! the network boundary.

use milr::serve::{base64, Json};
use proptest::collection::vec;
use proptest::prelude::*;

/// Arbitrary bytes (the vendored proptest has no `u8` range strategy;
/// go through `u32`).
fn bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    vec((0u32..256).prop_map(|b| b as u8), 0..max_len)
}

/// Arbitrary printable-ish ASCII text, the adversarial alphabet for
/// base64: mostly-valid symbols with invalid ones mixed in.
fn ascii_text(max_len: usize) -> impl Strategy<Value = String> {
    vec(
        (32u32..127).prop_map(|c| char::from_u32(c).unwrap()),
        0..max_len,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Arbitrary unicode strings, including controls, quotes, backslashes
/// and astral-plane characters — the JSON string escaper's worst case.
fn unicode_text(max_len: usize) -> impl Strategy<Value = String> {
    vec(
        (0u32..0x11_0000).prop_map(|c| char::from_u32(c).unwrap_or('\u{FFFD}')),
        0..max_len,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// A self-contained SplitMix64, so arbitrary JSON documents can be a
/// pure function of one generated seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds an arbitrary JSON document from a seed: every value kind,
/// nested arrays/objects, escaped keys, and finite numbers spanning
/// magnitudes (non-finite ones dump as `null` by design, so they cannot
/// round-trip and are excluded).
fn arbitrary_json(state: &mut u64, depth: usize) -> Json {
    let kinds = if depth == 0 { 4 } else { 6 };
    match splitmix(state) % kinds {
        0 => Json::Null,
        1 => Json::Bool(splitmix(state).is_multiple_of(2)),
        2 => {
            let magnitude = [1.0, 1e-7, 1e3, 1e17][(splitmix(state) % 4) as usize];
            let v = (splitmix(state) as i64 as f64 / (1u64 << 40) as f64) * magnitude;
            Json::Num(v)
        }
        3 => {
            let text: String = (0..splitmix(state) % 8)
                .map(|_| char::from_u32((splitmix(state) % 0xD7FF) as u32).unwrap_or('\u{FFFD}'))
                .collect();
            Json::Str(text)
        }
        4 => Json::Arr(
            (0..splitmix(state) % 4)
                .map(|_| arbitrary_json(state, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..splitmix(state) % 4)
                .map(|i| {
                    let key = format!("k{}\"\\\n{}", i, splitmix(state) % 10);
                    (key, arbitrary_json(state, depth - 1))
                })
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn base64_round_trips_any_bytes(data in bytes(300)) {
        let encoded = base64::encode(&data);
        prop_assert_eq!(encoded.len(), data.len().div_ceil(3) * 4);
        prop_assert!(encoded.bytes().all(|b| b.is_ascii_alphanumeric()
            || matches!(b, b'+' | b'/' | b'=')));
        prop_assert_eq!(base64::decode(&encoded), Ok(data.clone()));
        // Unpadded form decodes to the same bytes.
        prop_assert_eq!(base64::decode(encoded.trim_end_matches('=')), Ok(data));
    }

    #[test]
    fn base64_decode_is_total_and_canonical(text in ascii_text(120)) {
        // Adversarial input: never panic, and anything accepted must be
        // canonical — re-encoding reproduces the input up to padding.
        if let Ok(decoded) = base64::decode(&text) {
            prop_assert!(
                base64::encode(&decoded).trim_end_matches('=') == text.trim_end_matches('='),
                "accepted base64 {text:?} must be canonical"
            );
        }
    }

    #[test]
    fn base64_rejects_any_corrupted_symbol(data in bytes(60), at in 0usize..1000, bad in 0u32..32) {
        // Replace one symbol with a byte outside the alphabet.
        let mut encoded = base64::encode(&data).into_bytes();
        prop_assume!(!encoded.is_empty());
        let at = at % encoded.len();
        encoded[at] = bad as u8; // control bytes: never valid base64
        let corrupted = String::from_utf8(encoded).unwrap();
        prop_assert!(
            base64::decode(&corrupted).is_err(),
            "corrupted input {corrupted:?} must be rejected"
        );
    }

    #[test]
    fn json_documents_round_trip_exactly(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let doc = arbitrary_json(&mut state, 4);
        let dumped = doc.dump();
        let parsed = Json::parse(&dumped)
            .unwrap_or_else(|e| panic!("own dump must parse: {e}\n{dumped}"));
        prop_assert!(parsed == doc, "parse(dump(x)) must equal x: {dumped}");
        // Byte stability: a second hop changes nothing.
        prop_assert_eq!(parsed.dump(), dumped);
    }

    #[test]
    fn json_strings_survive_any_unicode(text in unicode_text(60)) {
        let doc = Json::Str(text.clone());
        let parsed = Json::parse(&doc.dump()).expect("escaped string parses");
        prop_assert_eq!(parsed.as_str(), Some(text.as_str()));
    }

    #[test]
    fn json_parse_never_panics_on_garbage(text in unicode_text(100)) {
        // Totality: any input yields Ok or Err, never a panic.
        let _ = Json::parse(&text);
    }

    #[test]
    fn json_parse_never_panics_on_truncated_documents(seed in 0u64..u64::MAX, cut in 0usize..1000) {
        let mut state = seed;
        let dumped = arbitrary_json(&mut state, 4).dump();
        prop_assume!(!dumped.is_empty());
        let mut cut = cut % dumped.len();
        while !dumped.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = Json::parse(&dumped[..cut]);
    }
}

// Committed regression cases: inputs that historically trip hand-rolled
// parsers. Kept explicit (not generated) so a failure names its input.

#[test]
fn json_rejects_hostile_nesting_without_overflow() {
    let deep = "[".repeat(5000) + &"]".repeat(5000);
    let err = Json::parse(&deep).expect_err("hostile nesting must be rejected");
    assert!(err.contains("nesting"), "diagnostic names the cause: {err}");
    // A depth well under the limit still parses.
    let ok = "[".repeat(20) + "0" + &"]".repeat(20);
    assert!(Json::parse(&ok).is_ok());
}

#[test]
fn json_classic_adversarial_inputs_error_cleanly() {
    for input in [
        "",
        "{",
        "[",
        "\"",
        "\"\\",
        "\"\\u",
        "\"\\u12",
        "\"\\ud800\"",        // lone high surrogate
        "\"\\udc00\"",        // lone low surrogate
        "\"\\ud800\\u0041\"", // high surrogate + non-surrogate
        "{\"a\"}",
        "{\"a\":}",
        "[1,]",
        "[1 2]",
        "+1",
        "-",
        ".5",
        "1e",
        "truely",
        "nul",
        "{\"a\":1}x",
        "\u{FEFF}{}", // BOM is not whitespace
    ] {
        let result = Json::parse(input);
        assert!(
            result.is_err(),
            "{input:?} must be rejected, got {result:?}"
        );
    }
}

#[test]
fn json_accepts_standard_edge_cases() {
    for (input, expected) in [
        ("null", Json::Null),
        (" [ ] ", Json::Arr(vec![])),
        ("{ }", Json::Obj(vec![])),
        ("-0", Json::Num(0.0)),
        ("1e3", Json::Num(1000.0)),
        ("1E-2", Json::Num(0.01)),
        ("\"\\ud83d\\ude00\"", Json::Str("😀".into())), // surrogate pair
        ("\"\\u0000\"", Json::Str("\0".into())),
    ] {
        assert_eq!(Json::parse(input), Ok(expected), "input {input:?}");
    }
}

#[test]
fn base64_committed_regressions() {
    // Padding abuse and dangling units.
    for bad in ["=", "==", "A", "A===", "AB=C", "Zg=", "Zg===", "Zh=="] {
        assert!(base64::decode(bad).is_err(), "{bad:?} must be rejected");
    }
    // Whitespace is not silently skipped (strict codec).
    assert!(base64::decode("Zm 9v").is_err());
    // Canonical pair survives.
    assert_eq!(base64::decode("AA==").unwrap(), vec![0]);
    assert_eq!(base64::encode(&[0]), "AA==");
}
