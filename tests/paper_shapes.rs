//! Micro-scale regression tests of the paper's qualitative *shapes* —
//! the claims the experiment harness reproduces at full scale, pinned
//! here at a size that runs in debug mode.

use milr::core::{eval, QuerySession, RetrievalConfig, RetrievalDatabase};
use milr::imgproc::RegionLayout;
use milr::mil::{train, StartBags, TrainOptions, WeightPolicy};
use milr::synth::SceneDatabase;

fn micro_config(policy: WeightPolicy) -> RetrievalConfig {
    RetrievalConfig {
        resolution: 5,
        layout: RegionLayout::Small,
        policy,
        feedback_rounds: 1,
        initial_positives: 3,
        initial_negatives: 3,
        max_iterations: 30,
        ..RetrievalConfig::default()
    }
}

fn scene_setup() -> (RetrievalDatabase, Vec<usize>, Vec<usize>, usize) {
    let db = SceneDatabase::builder()
        .images_per_category(10)
        .seed(23)
        .dimensions(80, 60)
        .build();
    let retrieval = RetrievalDatabase::from_labelled_images(
        db.gray_images(),
        &micro_config(WeightPolicy::Identical),
    )
    .unwrap();
    let split = db.split(0.3, 5);
    let target = db.category_index("waterfall").unwrap();
    (retrieval, split.pool, split.test, target)
}

fn train_concept(
    db: &RetrievalDatabase,
    pool: &[usize],
    test: &[usize],
    target: usize,
    policy: WeightPolicy,
) -> (milr::mil::Concept, f64) {
    let cfg = micro_config(policy);
    let mut session = QuerySession::builder(db)
        .config(&cfg)
        .target(target)
        .pool(pool.to_vec())
        .test(test.to_vec())
        .build()
        .unwrap();
    let ranking = session.run().unwrap();
    let relevant = eval::relevance(&ranking, db.labels(), target);
    let ap = eval::average_precision(&relevant);
    (session.concept().unwrap().clone(), ap)
}

/// §3.6 / Figs 3-7..3-9: unconstrained DD concentrates weight mass far
/// more than the β constraint allows, and identical weights are uniform.
#[test]
fn weight_sparsity_ordering() {
    let (db, pool, test, target) = scene_setup();
    let (original, _) = train_concept(&db, &pool, &test, target, WeightPolicy::OriginalDd);
    let (identical, _) = train_concept(&db, &pool, &test, target, WeightPolicy::Identical);
    let (constrained, _) = train_concept(
        &db,
        &pool,
        &test,
        target,
        WeightPolicy::SumConstraint { beta: 0.5 },
    );

    let top_fraction =
        |c: &milr::mil::Concept| c.weight_concentration((c.weights().len() / 5).max(1));
    let orig_mass = top_fraction(&original);
    let ident_mass = top_fraction(&identical);
    let constr_mass = top_fraction(&constrained);
    assert!(
        orig_mass > constr_mass,
        "original DD ({orig_mass:.2}) must be sparser than the constraint ({constr_mass:.2})"
    );
    assert!(
        (ident_mass - 0.2).abs() < 1e-9,
        "identical weights carry exactly uniform mass"
    );
    // The constraint keeps the average weight at or above β.
    assert!(constrained.mean_weight() >= 0.5 - 1e-6);
}

/// Figs 4-15..4-17 endpoint: β = 1 trains the same concept as forcing
/// identical weights.
#[test]
fn beta_one_is_identical_weights() {
    let (db, pool, test, target) = scene_setup();
    let (beta_one, ap_beta) = train_concept(
        &db,
        &pool,
        &test,
        target,
        WeightPolicy::SumConstraint { beta: 1.0 },
    );
    let (identical, ap_ident) = train_concept(&db, &pool, &test, target, WeightPolicy::Identical);
    assert!(beta_one.weights().iter().all(|&w| (w - 1.0).abs() < 1e-6));
    let t_gap: f64 = beta_one
        .point()
        .iter()
        .zip(identical.point())
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(
        t_gap < 0.2,
        "β=1 concept should track identical weights (gap {t_gap})"
    );
    assert!(
        (ap_beta - ap_ident).abs() < 0.15,
        "APs: {ap_beta} vs {ap_ident}"
    );
}

/// §4.3 / Fig 4-22: a subset of positive bags preserves retrieval
/// quality.
#[test]
fn start_subset_preserves_quality() {
    let (db, pool, test, target) = scene_setup();
    let run_with = |bags: StartBags| {
        let cfg = RetrievalConfig {
            start_bags: bags,
            ..micro_config(WeightPolicy::Identical)
        };
        let mut session = QuerySession::builder(&db)
            .config(&cfg)
            .target(target)
            .pool(pool.clone())
            .test(test.clone())
            .build()
            .unwrap();
        let ranking = session.run().unwrap();
        let relevant = eval::relevance(&ranking, db.labels(), target);
        eval::average_precision(&relevant)
    };
    let full = run_with(StartBags::All);
    let subset = run_with(StartBags::First(2));
    assert!(
        subset >= full * 0.85,
        "2-of-3-bag subset should retain ≥85% of quality: {subset} vs {full}"
    );
}

/// §2.2 "diverse": support from several bags beats support from one.
#[test]
fn diverse_density_prefers_cross_bag_support() {
    use milr::mil::{Bag, BagLabel, MilDataset};
    let bag = |v: Vec<Vec<f32>>| Bag::new(v).unwrap();
    let mut ds = MilDataset::new();
    // Three positive bags share an instance near (1, 1); bag 0 also has
    // a dense same-bag pair near (4, 4).
    ds.push(
        bag(vec![vec![1.0, 1.0], vec![4.0, 4.0], vec![4.05, 4.0]]),
        BagLabel::Positive,
    )
    .unwrap();
    ds.push(
        bag(vec![vec![1.05, 0.95], vec![-3.0, 2.0]]),
        BagLabel::Positive,
    )
    .unwrap();
    ds.push(
        bag(vec![vec![0.95, 1.05], vec![5.0, -2.0]]),
        BagLabel::Positive,
    )
    .unwrap();
    let result = train(
        &ds,
        &TrainOptions {
            policy: WeightPolicy::Identical,
            ..Default::default()
        },
    )
    .unwrap();
    let t = result.concept.point();
    assert!(
        (t[0] - 1.0).abs() < 0.3 && (t[1] - 1.0).abs() < 0.3,
        "the concept must sit at the cross-bag cluster, got {t:?}"
    );
}
