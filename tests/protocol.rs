//! Invariants of the §4.1 evaluation protocol, including determinism of
//! the parallel multi-start across thread counts.

use milr::core::{QuerySession, RankRequest, RetrievalConfig, RetrievalDatabase};
use milr::imgproc::RegionLayout;
use milr::mil::WeightPolicy;
use milr::synth::SceneDatabase;

fn config(threads: usize) -> RetrievalConfig {
    RetrievalConfig {
        resolution: 5,
        layout: RegionLayout::Small,
        policy: WeightPolicy::SumConstraint { beta: 0.5 },
        feedback_rounds: 3,
        false_positives_per_round: 2,
        initial_positives: 2,
        initial_negatives: 2,
        max_iterations: 25,
        threads,
        ..RetrievalConfig::default()
    }
}

fn scenario() -> (RetrievalDatabase, Vec<usize>, Vec<usize>, usize) {
    let db = SceneDatabase::builder()
        .images_per_category(9)
        .seed(41)
        .dimensions(80, 60)
        .build();
    let retrieval = RetrievalDatabase::from_labelled_images(db.gray_images(), &config(1)).unwrap();
    let split = db.split(0.34, 3);
    let target = db.category_index("waterfall").unwrap();
    (retrieval, split.pool, split.test, target)
}

#[test]
fn protocol_runs_the_configured_rounds_and_grows_negatives() {
    let (db, pool, test, target) = scenario();
    let cfg = config(1);
    let mut session = QuerySession::builder(&db)
        .config(&cfg)
        .target(target)
        .pool(pool)
        .test(test)
        .build()
        .unwrap();
    let initial_negatives = session.negatives().len();
    session.run().unwrap();
    assert_eq!(session.rounds_run(), 3);
    // Two rounds of feedback at 2 FPs each (when available).
    let grown = session.negatives().len() - initial_negatives;
    assert!(
        (2..=4).contains(&grown),
        "expected 2-4 promoted negatives, got {grown}"
    );
    // Positives are untouched by FP promotion.
    assert_eq!(session.positives().len(), 2);
}

#[test]
fn ranking_is_a_permutation_of_the_test_set() {
    let (db, pool, test, target) = scenario();
    let cfg = config(1);
    let mut session = QuerySession::builder(&db)
        .config(&cfg)
        .target(target)
        .pool(pool)
        .test(test.clone())
        .build()
        .unwrap();
    let ranking = session.run().unwrap();
    let mut ranked: Vec<usize> = ranking.iter().map(|&(i, _)| i).collect();
    ranked.sort_unstable();
    let mut expected = test;
    expected.sort_unstable();
    assert_eq!(ranked, expected, "every test image appears exactly once");
    // Distances ascend.
    for w in ranking.windows(2) {
        assert!(w[0].1 <= w[1].1);
    }
}

#[test]
fn results_are_identical_across_thread_counts() {
    let (db, pool, test, target) = scenario();
    let run_with = |threads: usize| {
        let cfg = config(threads);
        let mut session = QuerySession::builder(&db)
            .config(&cfg)
            .target(target)
            .pool(pool.clone())
            .test(test.clone())
            .build()
            .unwrap();
        let ranking = session.run().unwrap();
        (ranking, session.nldd())
    };
    let (r1, nldd1) = run_with(1);
    let (r4, nldd4) = run_with(4);
    assert_eq!(
        r1, r4,
        "multi-start must be deterministic across thread counts"
    );
    assert_eq!(nldd1, nldd4);
}

#[test]
fn pool_and_test_rankings_use_the_same_concept() {
    let (db, pool, test, target) = scenario();
    let cfg = config(1);
    let mut session = QuerySession::builder(&db)
        .config(&cfg)
        .target(target)
        .pool(pool.clone())
        .test(test)
        .build()
        .unwrap();
    session.run_round().unwrap();
    // rank_pool must agree with manually ranking the pool through the
    // concept accessor.
    let via_session = session.rank(&RankRequest::pool()).unwrap();
    let via_concept = db
        .rank(session.concept().unwrap(), &RankRequest::over(pool.clone()))
        .unwrap();
    assert_eq!(via_session, via_concept);
}

#[test]
fn later_rounds_never_lose_examples() {
    let (db, pool, test, target) = scenario();
    let cfg = config(1);
    let mut session = QuerySession::builder(&db)
        .config(&cfg)
        .target(target)
        .pool(pool)
        .test(test)
        .build()
        .unwrap();
    let mut last_negatives = session.negatives().len();
    for _ in 0..3 {
        session.run_round().unwrap();
        session.add_false_positives(2).unwrap();
        assert!(session.negatives().len() >= last_negatives);
        last_negatives = session.negatives().len();
    }
}
